"""Tests for the entity state containers."""

import numpy as np
import pytest

from repro.env import ChargingStations, PoiField, WorkerFleet


def make_fleet(count=2, energy=10.0, capacity=10.0):
    return WorkerFleet(
        positions=np.tile([1.0, 1.0], (count, 1)),
        energy=np.full(count, energy),
        capacity=capacity,
    )


class TestWorkerFleet:
    def test_counters_default_to_zero(self):
        fleet = make_fleet(3)
        assert len(fleet) == 3
        np.testing.assert_array_equal(fleet.collected, np.zeros(3))
        np.testing.assert_array_equal(fleet.consumed, np.zeros(3))
        np.testing.assert_array_equal(fleet.charged_total, np.zeros(3))

    def test_rejects_bad_positions_shape(self):
        with pytest.raises(ValueError, match="positions"):
            WorkerFleet(positions=np.zeros(4), energy=np.zeros(2), capacity=1.0)

    def test_rejects_energy_shape_mismatch(self):
        with pytest.raises(ValueError, match="energy"):
            WorkerFleet(positions=np.zeros((2, 2)), energy=np.zeros(3), capacity=1.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            make_fleet(capacity=0.0)

    def test_rejects_energy_above_capacity(self):
        with pytest.raises(ValueError, match="energy"):
            make_fleet(energy=11.0, capacity=10.0)

    def test_alive_mask(self):
        fleet = make_fleet(2)
        fleet.energy[1] = 0.0
        np.testing.assert_array_equal(fleet.alive, [True, False])

    def test_copy_is_deep(self):
        fleet = make_fleet(2)
        clone = fleet.copy()
        clone.energy[0] = 0.0
        clone.positions[0, 0] = 99.0
        assert fleet.energy[0] == 10.0
        assert fleet.positions[0, 0] == 1.0

    def test_input_arrays_not_aliased(self):
        positions = np.ones((2, 2))
        fleet = WorkerFleet(positions=positions, energy=np.full(2, 5.0), capacity=5.0)
        positions[0, 0] = 99.0
        assert fleet.positions[0, 0] == 1.0


class TestPoiField:
    def make(self, count=3):
        return PoiField(
            positions=np.arange(count * 2, dtype=float).reshape(count, 2),
            initial_values=np.full(count, 0.5),
        )

    def test_values_default_to_initial(self):
        field = self.make()
        np.testing.assert_array_equal(field.values, field.initial_values)
        np.testing.assert_array_equal(field.access_time, np.zeros(3, dtype=np.int64))

    def test_rejects_nonpositive_initial_values(self):
        with pytest.raises(ValueError, match="positive"):
            PoiField(positions=np.zeros((1, 2)), initial_values=np.zeros(1))

    def test_total_initial(self):
        assert self.make(4).total_initial == pytest.approx(2.0)

    def test_remaining_fraction(self):
        field = self.make()
        field.values[0] = 0.25
        np.testing.assert_allclose(field.remaining_fraction, [0.5, 1.0, 1.0])

    def test_copy_independent(self):
        field = self.make()
        clone = field.copy()
        clone.values[0] = 0.0
        clone.access_time[0] = 5
        assert field.values[0] == 0.5
        assert field.access_time[0] == 0

    def test_len(self):
        assert len(self.make(7)) == 7


class TestChargingStations:
    def test_nearest_distance(self):
        stations = ChargingStations(np.array([[0.0, 0.0], [10.0, 0.0]]))
        points = np.array([[1.0, 0.0], [9.0, 0.0]])
        np.testing.assert_allclose(stations.nearest_distance(points), [1.0, 1.0])

    def test_empty_stations_inf(self):
        stations = ChargingStations(np.zeros((0, 2)))
        assert len(stations) == 0
        dist = stations.nearest_distance(np.array([[1.0, 1.0]]))
        assert np.all(np.isinf(dist))

    def test_single_point_query(self):
        stations = ChargingStations(np.array([[3.0, 4.0]]))
        assert stations.nearest_distance(np.array([0.0, 0.0])) == pytest.approx(5.0)

    def test_copy(self):
        stations = ChargingStations(np.array([[1.0, 1.0]]))
        clone = stations.copy()
        clone.positions[0, 0] = 9.0
        assert stations.positions[0, 0] == 1.0
