"""Episode-level bitwise parity for the vectorized environment step.

PR 4 vectorized three env hot paths — move validation (one batched
obstacle query), data collection (a worker-PoI distance matrix hoisted out
of the competitive loop) and state encoding (cached PoI/station cells).
The optimization contract is *bitwise* equivalence, not approximate: the
same scenario driven by the same action sequence must produce identical
states, rewards and info arrays to the seed implementation, which this
module re-creates verbatim as ``reference_step``.
"""

import numpy as np
import pytest

from repro.env import CrowdsensingEnv, smoke_config
from repro.env.actions import (
    MOVE_OFFSETS,
    NUM_MOVES,
    STAY,
    Action,
    can_charge,
    move_targets,
)
from repro.env.rewards import StepOutcome
from repro.env.space import euclidean
from repro.env.state import StateEncoder, encode_state


# ---------------------------------------------------------------------------
# The seed implementation, re-created as the parity oracle
# ---------------------------------------------------------------------------
def legacy_segment_blocked(space, start, end, samples=8):
    start = np.asarray(start, dtype=np.float64)
    end = np.asarray(end, dtype=np.float64)
    ts = np.linspace(0.0, 1.0, samples + 1)[1:]
    blocked = np.zeros(start.shape[:-1], dtype=bool)
    for t in ts:
        point = start + t * (end - start)
        blocked |= space.is_blocked(point)
    return blocked


def legacy_valid_move_mask(space, positions, energy, move_step):
    positions = np.asarray(positions, dtype=np.float64)
    num_workers = len(positions)
    targets = move_targets(positions, move_step)

    flat_targets = targets.reshape(-1, 2)
    flat_starts = np.repeat(positions, NUM_MOVES, axis=0)
    blocked = space.is_blocked(flat_targets) | legacy_segment_blocked(
        space, flat_starts, flat_targets, samples=4
    )
    mask = ~blocked.reshape(num_workers, NUM_MOVES)

    for move in range(NUM_MOVES):
        dx, dy = MOVE_OFFSETS[move]
        if dx == 0.0 or dy == 0.0:
            continue
        side_a = positions + np.array([dx, 0.0]) * move_step
        side_b = positions + np.array([0.0, dy]) * move_step
        mask[:, move] &= ~space.is_blocked(side_a) & ~space.is_blocked(side_b)

    mask[:, STAY] = True

    exhausted = np.asarray(energy) <= 1e-12
    if np.any(exhausted):
        mask[exhausted] = False
        mask[exhausted, STAY] = True
    return mask


def reference_step(env, action):
    """The seed ``CrowdsensingEnv.step`` body, byte for byte."""
    config = env.config
    workers = env.workers
    old_positions = workers.positions.copy()

    move_mask = legacy_valid_move_mask(
        env.space, workers.positions, workers.energy, config.move_step
    )
    chosen = action.move.copy()
    bumped = ~move_mask[np.arange(env.num_workers), chosen]
    chosen[bumped] = STAY

    near_station = can_charge(env.stations, workers.positions, config.charging_range)
    charging = (action.charge == 1) & near_station
    chosen[charging] = STAY

    offsets = MOVE_OFFSETS[chosen] * config.move_step
    new_positions = workers.positions + offsets
    distances = euclidean(workers.positions, new_positions)
    workers.positions = new_positions

    collected = np.zeros(env.num_workers)
    sensed_any = np.zeros(len(env.pois), dtype=bool)
    for w in range(env.num_workers):
        if charging[w] or workers.energy[w] <= 1e-12:
            continue
        in_range = (
            euclidean(env.pois.positions, new_positions[w]) <= env._sensing_ranges[w]
        )
        if not np.any(in_range):
            continue
        take = np.minimum(
            config.collect_rate * env.pois.initial_values[in_range],
            env.pois.values[in_range],
        )
        env.pois.values[in_range] -= take
        collected[w] = float(take.sum())
        sensed_any |= in_range
    env.pois.access_time[sensed_any] += 1

    consumed = config.beta * distances + config.alpha * collected
    overdraw = consumed > workers.energy
    if np.any(overdraw):
        consumed = np.minimum(consumed, workers.energy)
    workers.energy = workers.energy - consumed

    charged = np.zeros(env.num_workers)
    if np.any(charging):
        room = workers.capacity - workers.energy
        charged[charging] = np.minimum(config.charge_per_slot, room[charging])
        workers.energy = workers.energy + charged

    workers.collected += collected
    workers.consumed += consumed
    workers.charged_total += charged

    outcome = StepOutcome(
        collected=collected,
        consumed=consumed,
        charged=charged,
        bumped=bumped,
        collected_cumulative=workers.collected.copy(),
    )
    if env.reward_mode == "sparse":
        reward_per_worker = env._sparse.per_worker(outcome)
    else:
        reward_per_worker = env._dense.per_worker(outcome)
    reward = float(reward_per_worker.mean())

    env.t += 1
    done = env.t >= config.horizon
    if done:
        env._needs_reset = True

    state = encode_state(env.space, env.workers, env.pois, env.stations, config.horizon)
    info = {
        "reward_per_worker": reward_per_worker,
        "positions": new_positions.copy(),
        "previous_positions": old_positions,
        "moves": chosen.copy(),
        "charging": charging.copy(),
        "bumped": bumped.copy(),
        "t": env.t,
    }
    return state, reward, done, info


def random_actions(rng, num_workers, steps):
    return [
        Action(
            charge=rng.integers(0, 2, num_workers),
            move=rng.integers(0, NUM_MOVES, num_workers),
        )
        for _ in range(steps)
    ]


_INFO_ARRAYS = (
    "reward_per_worker",
    "positions",
    "previous_positions",
    "moves",
    "charging",
    "bumped",
)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("reward_mode", ["sparse", "dense"])
def test_episode_bitwise_parity_with_seed_implementation(seed, reward_mode):
    config = smoke_config(seed=seed, horizon=25)
    fast = CrowdsensingEnv(config, reward_mode=reward_mode)
    ref = CrowdsensingEnv(config, reward_mode=reward_mode)

    state_fast = fast.reset()
    state_ref = ref.reset()
    assert state_fast.tobytes() == state_ref.tobytes()

    actions = random_actions(np.random.default_rng(seed + 100), config.num_workers,
                             config.horizon)
    for step_idx, action in enumerate(actions):
        s_fast, r_fast, d_fast, i_fast = fast.step(action)
        s_ref, r_ref, d_ref, i_ref = reference_step(ref, action)
        assert s_fast.tobytes() == s_ref.tobytes(), f"state diverged at t={step_idx}"
        assert r_fast == r_ref, f"reward diverged at t={step_idx}"
        assert d_fast == d_ref
        for key in _INFO_ARRAYS:
            assert i_fast[key].tobytes() == i_ref[key].tobytes(), (
                f"info[{key!r}] diverged at t={step_idx}"
            )
        # Internal world state must also track exactly.
        assert fast.workers.energy.tobytes() == ref.workers.energy.tobytes()
        assert fast.pois.values.tobytes() == ref.pois.values.tobytes()
        assert np.array_equal(fast.pois.access_time, ref.pois.access_time)

    metrics_fast = fast.metrics()
    metrics_ref = ref.metrics()
    assert metrics_fast == metrics_ref


@pytest.mark.parametrize("seed", [0, 3])
def test_state_encoder_matches_encode_state(seed):
    config = smoke_config(seed=seed, horizon=10)
    env = CrowdsensingEnv(config)
    env.reset()
    encoder = StateEncoder(env.space, env.pois, env.stations, config.horizon)
    rng = np.random.default_rng(seed)
    for action in random_actions(rng, config.num_workers, 10):
        env.step(action)
        cached = encoder.encode(env.workers, env.pois)
        reference = encode_state(
            env.space, env.workers, env.pois, env.stations, config.horizon
        )
        assert cached.tobytes() == reference.tobytes()


def test_valid_move_mask_matches_legacy_on_random_positions():
    config = smoke_config(seed=9)
    env = CrowdsensingEnv(config)
    env.reset()
    rng = np.random.default_rng(17)
    from repro.env.actions import valid_move_mask

    for _ in range(25):
        positions = rng.uniform(-0.5, config.size + 0.5, size=(config.num_workers, 2))
        energy = rng.uniform(0.0, 1.0, size=config.num_workers)
        energy[rng.random(config.num_workers) < 0.2] = 0.0
        new = valid_move_mask(env.space, positions, energy, config.move_step)
        old = legacy_valid_move_mask(env.space, positions, energy, config.move_step)
        assert np.array_equal(new, old)
