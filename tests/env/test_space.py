"""Tests for the crowdsensing space geometry and obstacle grid."""

import numpy as np
import pytest

from repro.env import CrowdsensingSpace, euclidean


def make_space_with_wall():
    """4x4 space with an obstacle wall at column 2 (cells [*, 2])."""
    mask = np.zeros((4, 4), dtype=bool)
    mask[:, 2] = True
    return CrowdsensingSpace(4.0, 4, mask)


class TestEuclidean:
    def test_basic(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_vectorized(self):
        a = np.zeros((3, 2))
        b = np.tile([1.0, 0.0], (3, 1))
        np.testing.assert_array_equal(euclidean(a, b), np.ones(3))

    def test_zero_distance(self):
        p = np.array([1.5, 2.5])
        assert euclidean(p, p) == 0.0


class TestConstruction:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            CrowdsensingSpace(0.0, 4)

    def test_rejects_mask_shape_mismatch(self):
        with pytest.raises(ValueError, match="mask"):
            CrowdsensingSpace(4.0, 4, np.zeros((3, 3), dtype=bool))

    def test_default_mask_is_free(self):
        space = CrowdsensingSpace(4.0, 4)
        assert space.obstacle_fraction() == 0.0


class TestCoordinates:
    def test_contains_boundary_is_open(self):
        space = CrowdsensingSpace(4.0, 4)
        assert not space.contains(np.array([0.0, 2.0]))
        assert not space.contains(np.array([4.0, 2.0]))
        assert space.contains(np.array([0.1, 3.9]))

    def test_cell_of(self):
        space = CrowdsensingSpace(4.0, 4)
        row, col = space.cell_of(np.array([2.5, 0.5]))
        assert (row, col) == (0, 2)

    def test_cell_of_clips_outside(self):
        space = CrowdsensingSpace(4.0, 4)
        row, col = space.cell_of(np.array([9.0, -1.0]))
        assert (row, col) == (0, 3)

    def test_cell_center_round_trip(self):
        space = CrowdsensingSpace(8.0, 8)
        center = space.cell_center(np.array(3), np.array(5))
        row, col = space.cell_of(center)
        assert (row, col) == (3, 5)

    def test_flat_index(self):
        space = CrowdsensingSpace(4.0, 4)
        idx = space.flat_index(np.array([2.5, 1.5]))  # col 2, row 1
        assert idx == 1 * 4 + 2


class TestObstacles:
    def test_is_blocked_in_obstacle(self):
        space = make_space_with_wall()
        assert space.is_blocked(np.array([2.5, 1.5]))  # inside wall column
        assert not space.is_blocked(np.array([1.5, 1.5]))

    def test_outside_is_blocked(self):
        space = make_space_with_wall()
        assert space.is_blocked(np.array([-0.5, 1.0]))
        assert space.is_blocked(np.array([1.0, 5.0]))

    def test_segment_blocked_crossing_wall(self):
        space = make_space_with_wall()
        start = np.array([1.5, 1.5])
        end = np.array([3.5, 1.5])  # crosses column 2
        assert space.segment_blocked(start, end)

    def test_segment_free(self):
        space = make_space_with_wall()
        start = np.array([0.5, 0.5])
        end = np.array([1.5, 3.5])
        assert not space.segment_blocked(start, end)

    def test_segment_blocked_vectorized(self):
        space = make_space_with_wall()
        starts = np.array([[1.5, 1.5], [0.5, 0.5]])
        ends = np.array([[3.5, 1.5], [1.5, 0.5]])
        blocked = space.segment_blocked(starts, ends)
        np.testing.assert_array_equal(blocked, [True, False])

    def test_free_cells_excludes_obstacles(self):
        space = make_space_with_wall()
        free = space.free_cells()
        assert len(free) == 12
        assert not any(col == 2 for __, col in free)

    def test_random_free_positions_avoid_obstacles(self, rng):
        space = make_space_with_wall()
        positions = space.random_free_positions(50, rng)
        assert not np.any(space.is_blocked(positions))

    def test_random_free_positions_margin(self, rng):
        space = CrowdsensingSpace(4.0, 4)
        positions = space.random_free_positions(100, rng, margin=0.4)
        # With margin 0.4 in cell size 1.0, fractional parts are in [.4, .6].
        frac = positions % 1.0
        assert np.all(frac >= 0.4 - 1e-9)
        assert np.all(frac <= 0.6 + 1e-9)

    def test_random_free_positions_all_blocked_raises(self, rng):
        mask = np.ones((4, 4), dtype=bool)
        space = CrowdsensingSpace(4.0, 4, mask)
        with pytest.raises(RuntimeError, match="free"):
            space.random_free_positions(1, rng)

    def test_obstacle_fraction(self):
        assert make_space_with_wall().obstacle_fraction() == 0.25
