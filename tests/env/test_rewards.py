"""Tests for the sparse (Eqns. 18-19) and dense (Eqn. 20) rewards."""

import numpy as np
import pytest

from repro.env import DenseReward, SparseRewardTracker, StepOutcome


def outcome(
    collected=(0.0, 0.0),
    consumed=(0.0, 0.0),
    charged=(0.0, 0.0),
    bumped=(False, False),
    cumulative=(0.0, 0.0),
):
    return StepOutcome(
        collected=np.asarray(collected, dtype=float),
        consumed=np.asarray(consumed, dtype=float),
        charged=np.asarray(charged, dtype=float),
        bumped=np.asarray(bumped, dtype=bool),
        collected_cumulative=np.asarray(cumulative, dtype=float),
    )


def make_tracker(**overrides):
    defaults = dict(
        num_workers=2,
        total_initial_data=100.0,
        energy_budget=40.0,
        epsilon1=0.05,
        epsilon2=0.4,
        obstacle_penalty=0.5,
    )
    defaults.update(overrides)
    return SparseRewardTracker(**defaults)


class TestSparseMilestones:
    def test_first_milestone_pays_once(self):
        tracker = make_tracker()
        # Worker 0 reaches 5% of 100 = 5.0 collected.
        r1 = tracker.per_worker(outcome(cumulative=(5.0, 0.0)))
        np.testing.assert_array_equal(r1, [1.0, 0.0])
        # Same cumulative value again: no new milestone.
        r2 = tracker.per_worker(outcome(cumulative=(5.0, 0.0)))
        np.testing.assert_array_equal(r2, [0.0, 0.0])

    def test_skipping_multiple_milestones_pays_once_per_slot(self):
        # Υ¹ is 1 "whenever κ increases ε1" — a binary event per slot.
        tracker = make_tracker()
        r = tracker.per_worker(outcome(cumulative=(20.0, 0.0)))
        np.testing.assert_array_equal(r, [1.0, 0.0])

    def test_below_threshold_no_reward(self):
        tracker = make_tracker()
        r = tracker.per_worker(outcome(cumulative=(4.9, 0.0)))
        np.testing.assert_array_equal(r, [0.0, 0.0])

    def test_per_worker_milestones_independent(self):
        tracker = make_tracker()
        tracker.per_worker(outcome(cumulative=(5.0, 0.0)))
        r = tracker.per_worker(outcome(cumulative=(5.0, 5.0)))
        np.testing.assert_array_equal(r, [0.0, 1.0])

    def test_reset_clears_milestones(self):
        tracker = make_tracker()
        tracker.per_worker(outcome(cumulative=(5.0, 0.0)))
        tracker.reset()
        r = tracker.per_worker(outcome(cumulative=(5.0, 0.0)))
        np.testing.assert_array_equal(r, [1.0, 0.0])


class TestSparseCharging:
    def test_substantial_charge_rewarded(self):
        tracker = make_tracker()
        # 40% of 40 = 16 energy units.
        r = tracker.per_worker(outcome(charged=(16.0, 15.9)))
        np.testing.assert_array_equal(r, [1.0, 0.0])

    def test_charge_reward_repeats(self):
        # Υ² is per-slot, not once-per-episode.
        tracker = make_tracker()
        tracker.per_worker(outcome(charged=(20.0, 0.0)))
        r = tracker.per_worker(outcome(charged=(20.0, 0.0)))
        np.testing.assert_array_equal(r, [1.0, 0.0])


class TestSparsePenalty:
    def test_bump_penalty(self):
        tracker = make_tracker()
        r = tracker.per_worker(outcome(bumped=(True, False)))
        np.testing.assert_array_equal(r, [-0.5, 0.0])

    def test_combined_terms(self):
        tracker = make_tracker()
        r = tracker.per_worker(
            outcome(cumulative=(6.0, 0.0), charged=(16.0, 0.0), bumped=(True, True))
        )
        np.testing.assert_allclose(r, [1.0 + 1.0 - 0.5, -0.5])

    def test_fleet_reward_is_mean(self):
        tracker = make_tracker()
        fleet = tracker.fleet(outcome(cumulative=(6.0, 0.0)))
        assert fleet == pytest.approx(0.5)


class TestSparseValidation:
    def test_rejects_zero_total_data(self):
        with pytest.raises(ValueError):
            make_tracker(total_initial_data=0.0)


class TestDenseReward:
    def make(self):
        return DenseReward(energy_budget=40.0, obstacle_penalty=0.5)

    def test_formula(self):
        dense = self.make()
        r = dense.per_worker(
            outcome(collected=(2.0, 0.0), consumed=(4.0, 0.0), charged=(8.0, 0.0))
        )
        np.testing.assert_allclose(r, [2.0 / 4.0 + 8.0 / 40.0, 0.0])

    def test_zero_consumption_safe(self):
        dense = self.make()
        r = dense.per_worker(outcome(collected=(0.0, 0.0), consumed=(0.0, 0.0)))
        assert np.all(np.isfinite(r))
        np.testing.assert_array_equal(r, [0.0, 0.0])

    def test_bump_penalty(self):
        dense = self.make()
        r = dense.per_worker(outcome(bumped=(True, False)))
        np.testing.assert_allclose(r, [-0.5, 0.0])

    def test_fleet_is_mean(self):
        dense = self.make()
        fleet = dense.fleet(
            outcome(collected=(2.0, 0.0), consumed=(2.0, 1.0), bumped=(False, True))
        )
        assert fleet == pytest.approx((1.0 - 0.5) / 2)

    def test_stateless_across_calls(self):
        dense = self.make()
        o = outcome(collected=(1.0, 1.0), consumed=(2.0, 2.0))
        np.testing.assert_array_equal(dense.per_worker(o), dense.per_worker(o))
