"""Tests for scenario generation (map, PoIs, stations, workers)."""

import numpy as np
import pytest

from repro.env import (
    ScenarioConfig,
    build_obstacle_mask,
    corner_room_bounds,
    generate_scenario,
    smoke_config,
)


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = smoke_config(seed=7)
        a = generate_scenario(config)
        b = generate_scenario(config)
        np.testing.assert_array_equal(a.pois.positions, b.pois.positions)
        np.testing.assert_array_equal(a.pois.initial_values, b.pois.initial_values)
        np.testing.assert_array_equal(a.stations.positions, b.stations.positions)
        np.testing.assert_array_equal(a.workers.positions, b.workers.positions)
        np.testing.assert_array_equal(a.space.obstacles, b.space.obstacles)

    def test_different_seed_different_world(self):
        a = generate_scenario(smoke_config(seed=1))
        b = generate_scenario(smoke_config(seed=2))
        assert not np.array_equal(a.pois.positions, b.pois.positions)


class TestObstacleMask:
    def test_corner_room_structure(self):
        config = ScenarioConfig(grid=16, seed=0)
        rng = np.random.default_rng(0)
        mask = build_obstacle_mask(config, rng)
        row0, row1, col0, col1 = corner_room_bounds(config)
        # Top wall and left wall mostly blocked, with exactly one passage
        # in the left wall.
        assert mask[row0, col0:col1].all()
        left_wall = mask[row0:row1, col0]
        assert left_wall.sum() == len(left_wall) - 1  # one passage cell
        # Interior is free.
        assert not mask[row0 + 1 : row1, col0 + 1 : col1].any()

    def test_map_mostly_free(self):
        config = smoke_config(seed=0)
        mask = build_obstacle_mask(config, np.random.default_rng(0))
        assert mask.mean() < 0.5

    def test_corner_room_disabled(self):
        config = smoke_config(seed=0, corner_room=False)
        scenario = generate_scenario(config)
        # No guarantee on specific cells, just a valid scenario.
        assert scenario.space.obstacles.shape == (config.grid, config.grid)


class TestEntityPlacement:
    def test_poi_count_and_values(self):
        config = smoke_config(seed=4, num_pois=30)
        scenario = generate_scenario(config)
        assert len(scenario.pois) == 30
        assert np.all(scenario.pois.initial_values > 0)
        assert np.all(scenario.pois.initial_values <= 1.0)

    def test_pois_not_in_obstacles(self):
        scenario = generate_scenario(smoke_config(seed=5))
        blocked = scenario.space.is_blocked(scenario.pois.positions)
        assert not np.any(blocked)

    def test_corner_room_holds_requested_fraction(self):
        config = ScenarioConfig(grid=16, num_pois=100, corner_room_fraction=0.2, seed=1)
        scenario = generate_scenario(config)
        row0, row1, col0, col1 = corner_room_bounds(config)
        rows, cols = scenario.space.cell_of(scenario.pois.positions)
        inside = (
            (rows >= row0) & (rows < row1) & (cols >= col0) & (cols < col1)
        ).sum()
        assert inside == 20

    def test_stations_outside_corner_room(self):
        config = ScenarioConfig(grid=16, num_stations=6, seed=2)
        scenario = generate_scenario(config)
        row0, row1, col0, col1 = corner_room_bounds(config)
        rows, cols = scenario.space.cell_of(scenario.stations.positions)
        inside = (rows >= row0) & (rows < row1) & (cols >= col0) & (cols < col1)
        assert not np.any(inside)

    def test_workers_at_cell_centers(self):
        scenario = generate_scenario(smoke_config(seed=6))
        cell = scenario.space.cell
        frac = (scenario.workers.positions / cell) % 1.0
        np.testing.assert_allclose(frac, 0.5)

    def test_workers_full_energy(self):
        config = smoke_config(seed=6)
        scenario = generate_scenario(config)
        np.testing.assert_array_equal(
            scenario.workers.energy, np.full(config.num_workers, config.energy_budget)
        )

    def test_zero_stations_allowed(self):
        scenario = generate_scenario(smoke_config(seed=1, num_stations=0))
        assert len(scenario.stations) == 0


class TestFreshWorld:
    def test_fresh_world_returns_copies(self):
        scenario = generate_scenario(smoke_config(seed=0))
        pois, workers = scenario.fresh_world()
        pois.values[:] = 0.0
        workers.energy[:] = 0.0
        pois2, workers2 = scenario.fresh_world()
        assert np.all(pois2.values > 0)
        assert np.all(workers2.energy > 0)
