"""Tests for the κ / ξ / ρ metrics and Jain's fairness index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env import PoiField, WorkerFleet, compute_metrics, jain_fairness


def make_world(collected, consumed, initial, remaining, capacity=40.0):
    count = len(collected)
    workers = WorkerFleet(
        positions=np.zeros((count, 2)) + 1.0,
        energy=np.full(count, capacity),
        capacity=capacity,
        collected=np.asarray(collected, dtype=float),
        consumed=np.asarray(consumed, dtype=float),
    )
    pois = PoiField(
        positions=np.zeros((len(initial), 2)) + 1.0,
        initial_values=np.asarray(initial, dtype=float),
        values=np.asarray(remaining, dtype=float),
    )
    return workers, pois


class TestJainFairness:
    def test_equal_values_are_fair(self):
        assert jain_fairness(np.full(10, 3.0)) == pytest.approx(1.0)

    def test_single_nonzero_is_1_over_n(self):
        values = np.zeros(4)
        values[0] = 5.0
        assert jain_fairness(values) == pytest.approx(0.25)

    def test_all_zero_returns_zero(self):
        assert jain_fairness(np.zeros(5)) == 0.0

    def test_empty_returns_zero(self):
        assert jain_fairness(np.array([])) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=20)
    )
    def test_bounds_property(self, values):
        index = jain_fairness(np.array(values))
        assert 0.0 <= index <= 1.0 + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0.01, 100.0, allow_nan=False), min_size=2, max_size=20),
        st.floats(0.1, 10.0, allow_nan=False),
    )
    def test_scale_invariance(self, values, scale):
        arr = np.array(values)
        assert jain_fairness(arr) == pytest.approx(jain_fairness(arr * scale))


class TestKappa:
    def test_full_collection_is_one(self):
        workers, pois = make_world([5.0, 5.0], [5.0, 5.0], [5.0, 5.0], [0.0, 0.0])
        metrics = compute_metrics(workers, pois, collect_rate=0.2)
        assert metrics.kappa == pytest.approx(1.0)

    def test_half_collection(self):
        workers, pois = make_world([2.0, 3.0], [4.0, 4.0], [10.0], [5.0])
        metrics = compute_metrics(workers, pois, collect_rate=0.2)
        assert metrics.kappa == pytest.approx(0.5)

    def test_kappa_per_worker_divides_by_w(self):
        workers, pois = make_world([2.0, 3.0], [4.0, 4.0], [10.0], [5.0])
        metrics = compute_metrics(workers, pois, collect_rate=0.2)
        assert metrics.kappa_per_worker == pytest.approx(0.25)


class TestXi:
    def test_untouched_pois_give_one(self):
        workers, pois = make_world([0.0], [0.0], [1.0, 0.5], [1.0, 0.5])
        metrics = compute_metrics(workers, pois, collect_rate=0.2)
        assert metrics.xi == pytest.approx(1.0)

    def test_xi_is_mean_of_per_poi_ratios(self):
        workers, pois = make_world([0.75], [1.0], [1.0, 0.5], [0.5, 0.25])
        metrics = compute_metrics(workers, pois, collect_rate=0.2)
        assert metrics.xi == pytest.approx(0.5)


class TestRho:
    def test_fair_collection_rho_is_data_per_energy(self):
        # Both PoIs collected the same number of times -> fairness 1.
        workers, pois = make_world([4.0], [8.0], [1.0, 1.0], [0.6, 0.6])
        metrics = compute_metrics(workers, pois, collect_rate=0.2)
        assert metrics.fairness == pytest.approx(1.0)
        assert metrics.rho == pytest.approx(0.5)

    def test_unfair_collection_discounts_rho(self):
        # Only the first PoI was ever collected -> fairness 1/2.
        workers, pois = make_world([0.4], [1.0], [1.0, 1.0], [0.6, 1.0])
        metrics = compute_metrics(workers, pois, collect_rate=0.2)
        assert metrics.fairness == pytest.approx(0.5)
        assert metrics.rho == pytest.approx(0.5 * 0.4)

    def test_zero_consumption_is_zero_not_nan(self):
        workers, pois = make_world([0.0], [0.0], [1.0], [1.0])
        metrics = compute_metrics(workers, pois, collect_rate=0.2)
        assert metrics.rho == 0.0
        assert not np.isnan(metrics.data_per_energy)

    def test_mixed_worker_ratios_averaged(self):
        workers, pois = make_world(
            [2.0, 0.0], [4.0, 0.0], [1.0, 1.0], [0.6, 0.6]
        )
        metrics = compute_metrics(workers, pois, collect_rate=0.2)
        # Worker 0: 0.5, worker 1 consumed nothing: 0. Mean 0.25.
        assert metrics.data_per_energy == pytest.approx(0.25)


class TestMetricsContainer:
    def test_as_dict_keys(self):
        workers, pois = make_world([1.0], [2.0], [1.0], [0.8])
        metrics = compute_metrics(workers, pois, collect_rate=0.2)
        d = metrics.as_dict()
        assert {"kappa", "xi", "rho", "fairness", "data_per_energy"} <= set(d)
        assert d["total_collected"] == pytest.approx(1.0)
        assert d["total_consumed"] == pytest.approx(2.0)
