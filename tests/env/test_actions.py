"""Tests for the action space and validity rules."""

import numpy as np
import pytest

from repro.env import (
    Action,
    ChargingStations,
    CrowdsensingSpace,
    MOVE_NAMES,
    MOVE_OFFSETS,
    NUM_MOVES,
    STAY,
)
from repro.env.actions import can_charge, move_targets, valid_move_mask


class TestMoveSet:
    def test_nine_moves(self):
        assert NUM_MOVES == 9
        assert len(MOVE_NAMES) == 9

    def test_stay_is_zero_offset(self):
        np.testing.assert_array_equal(MOVE_OFFSETS[STAY], [0.0, 0.0])

    def test_max_travel_distance_is_sqrt2(self):
        lengths = np.linalg.norm(MOVE_OFFSETS, axis=1)
        assert lengths.max() == pytest.approx(np.sqrt(2))

    def test_all_offsets_distinct(self):
        assert len({tuple(o) for o in MOVE_OFFSETS.tolist()}) == 9

    def test_move_targets_shape(self):
        targets = move_targets(np.zeros((3, 2)), move_step=1.0)
        assert targets.shape == (3, NUM_MOVES, 2)
        np.testing.assert_array_equal(targets[0], MOVE_OFFSETS)

    def test_move_targets_scaled(self):
        targets = move_targets(np.zeros((1, 2)), move_step=0.5)
        np.testing.assert_array_equal(targets[0], MOVE_OFFSETS * 0.5)


class TestAction:
    def test_valid_action(self):
        action = Action(charge=np.array([0, 1]), move=np.array([0, 8]))
        assert action.charge.dtype == np.int64

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            Action(charge=np.zeros(2, int), move=np.zeros(3, int))

    def test_rejects_bad_charge(self):
        with pytest.raises(ValueError, match="charge"):
            Action(charge=np.array([2]), move=np.array([0]))

    def test_rejects_bad_move(self):
        with pytest.raises(ValueError, match="move"):
            Action(charge=np.array([0]), move=np.array([9]))

    def test_stay_helper(self):
        action = Action.stay(3)
        np.testing.assert_array_equal(action.move, [0, 0, 0])
        np.testing.assert_array_equal(action.charge, [0, 0, 0])


class TestValidMoveMask:
    def make_space(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 1] = True  # obstacle at cell (row 1, col 1)
        return CrowdsensingSpace(4.0, 4, mask)

    def test_stay_always_valid(self):
        space = self.make_space()
        positions = np.array([[0.5, 0.5]])
        mask = valid_move_mask(space, positions, np.array([5.0]), move_step=1.0)
        assert mask[0, STAY]

    def test_boundary_moves_invalid(self):
        space = self.make_space()
        positions = np.array([[0.5, 0.5]])  # bottom-left corner cell
        mask = valid_move_mask(space, positions, np.array([5.0]), move_step=1.0)
        names_valid = {MOVE_NAMES[i] for i in np.nonzero(mask[0])[0]}
        # South/west moves leave the space.
        assert "S" not in names_valid
        assert "W" not in names_valid
        assert "SW" not in names_valid
        assert "N" in names_valid
        assert "E" in names_valid

    def test_obstacle_target_invalid(self):
        space = self.make_space()
        positions = np.array([[1.5, 0.5]])  # just south of the obstacle
        mask = valid_move_mask(space, positions, np.array([5.0]), move_step=1.0)
        north = MOVE_NAMES.index("N")
        assert not mask[0, north]

    def test_diagonal_cannot_cut_obstacle_corner(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 0] = True
        mask[0, 1] = True
        space = CrowdsensingSpace(4.0, 4, mask)
        positions = np.array([[0.5, 0.5]])  # NE diagonal passes between them
        valid = valid_move_mask(space, positions, np.array([5.0]), move_step=1.0)
        ne = MOVE_NAMES.index("NE")
        assert not valid[0, ne]

    def test_exhausted_worker_can_only_stay(self):
        space = self.make_space()
        positions = np.array([[2.5, 2.5]])
        mask = valid_move_mask(space, positions, np.array([0.0]), move_step=1.0)
        assert mask[0, STAY]
        assert mask[0].sum() == 1

    def test_multiple_workers_independent(self):
        space = self.make_space()
        positions = np.array([[2.5, 2.5], [0.5, 0.5]])
        mask = valid_move_mask(space, positions, np.array([5.0, 0.0]), move_step=1.0)
        assert mask[0].sum() > 1
        assert mask[1].sum() == 1


class TestCanCharge:
    def test_within_range(self):
        stations = ChargingStations(np.array([[2.0, 2.0]]))
        positions = np.array([[2.5, 2.0], [3.5, 2.0]])
        np.testing.assert_array_equal(
            can_charge(stations, positions, charging_range=0.8), [True, False]
        )

    def test_no_stations(self):
        stations = ChargingStations(np.zeros((0, 2)))
        assert not can_charge(stations, np.array([[1.0, 1.0]]), 0.8).any()
