"""Tests for scenario JSON serialization."""

import json

import numpy as np
import pytest

from repro.env import (
    Action,
    CrowdsensingEnv,
    generate_scenario,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
    smoke_config,
)


@pytest.fixture
def scenario():
    return generate_scenario(smoke_config(seed=9))


class TestRoundTrip:
    def test_dict_round_trip_exact(self, scenario):
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt.config == scenario.config
        np.testing.assert_array_equal(rebuilt.space.obstacles, scenario.space.obstacles)
        np.testing.assert_array_equal(rebuilt.pois.positions, scenario.pois.positions)
        np.testing.assert_array_equal(
            rebuilt.pois.initial_values, scenario.pois.initial_values
        )
        np.testing.assert_array_equal(
            rebuilt.stations.positions, scenario.stations.positions
        )
        np.testing.assert_array_equal(
            rebuilt.workers.positions, scenario.workers.positions
        )

    def test_file_round_trip(self, scenario, tmp_path):
        path = tmp_path / "maps" / "world.json"
        save_scenario(scenario, path)
        rebuilt = load_scenario(path)
        assert rebuilt.config == scenario.config

    def test_json_is_human_editable(self, scenario, tmp_path):
        path = tmp_path / "world.json"
        save_scenario(scenario, path)
        payload = json.loads(path.read_text())
        assert "config" in payload and "pois" in payload

    def test_heterogeneous_ranges_survive(self, tmp_path):
        config = smoke_config(seed=1, worker_sensing_ranges=(0.5, 1.5))
        scenario = generate_scenario(config)
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt.config.worker_sensing_ranges == (0.5, 1.5)

    def test_loaded_scenario_playable_identically(self, scenario):
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        outcomes = []
        for world in (scenario, rebuilt):
            env = CrowdsensingEnv(world.config, scenario=world)
            env.reset()
            rng = np.random.default_rng(0)
            total = 0.0
            for __ in range(10):
                mask = env.valid_moves()
                moves = np.array([rng.choice(np.nonzero(m)[0]) for m in mask])
                __, r, __, __ = env.step(
                    Action(charge=np.zeros(env.num_workers, int), move=moves)
                )
                total += r
            outcomes.append(total)
        assert outcomes[0] == outcomes[1]


class TestValidation:
    def test_poi_count_mismatch(self, scenario):
        payload = scenario_to_dict(scenario)
        payload["pois"]["positions"] = payload["pois"]["positions"][:-1]
        payload["pois"]["initial_values"] = payload["pois"]["initial_values"][:-1]
        payload["pois"]["values"] = payload["pois"]["values"][:-1]
        payload["pois"]["access_time"] = payload["pois"]["access_time"][:-1]
        with pytest.raises(ValueError, match="PoIs"):
            scenario_from_dict(payload)

    def test_station_count_mismatch(self, scenario):
        payload = scenario_to_dict(scenario)
        payload["stations"] = payload["stations"][:-1]
        with pytest.raises(ValueError, match="stations"):
            scenario_from_dict(payload)

    def test_worker_count_mismatch(self, scenario):
        payload = scenario_to_dict(scenario)
        payload["workers"]["positions"] = payload["workers"]["positions"][:1]
        payload["workers"]["energy"] = payload["workers"]["energy"][:1]
        with pytest.raises(ValueError, match="workers"):
            scenario_from_dict(payload)

    def test_worker_in_obstacle_rejected(self, scenario):
        payload = scenario_to_dict(scenario)
        rows, cols = np.nonzero(np.asarray(payload["obstacles"]))
        cell = scenario.space.cell
        payload["workers"]["positions"][0] = [
            (cols[0] + 0.5) * cell,
            (rows[0] + 0.5) * cell,
        ]
        with pytest.raises(ValueError, match="obstacle"):
            scenario_from_dict(payload)

    def test_default_values_filled(self, scenario):
        payload = scenario_to_dict(scenario)
        del payload["pois"]["values"]
        del payload["pois"]["access_time"]
        rebuilt = scenario_from_dict(payload)
        np.testing.assert_array_equal(rebuilt.pois.values, rebuilt.pois.initial_values)
