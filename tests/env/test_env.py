"""Integration tests for the CrowdsensingEnv step semantics."""

import numpy as np
import pytest

from repro.env import (
    Action,
    CrowdsensingEnv,
    MOVE_NAMES,
    ScenarioConfig,
    generate_scenario,
    smoke_config,
)


def obstacle_free_config(**overrides):
    base = dict(
        size=8.0,
        grid=8,
        num_workers=1,
        num_pois=5,
        num_stations=1,
        horizon=10,
        energy_budget=10.0,
        corner_room=False,
        seed=11,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def move_index(name):
    return MOVE_NAMES.index(name)


class TestLifecycle:
    def test_step_before_reset_raises(self, tiny_config):
        env = CrowdsensingEnv(tiny_config)
        with pytest.raises(RuntimeError, match="reset"):
            env.step(Action.stay(tiny_config.num_workers))

    def test_reset_returns_state(self, tiny_env):
        state = tiny_env.reset()
        assert state.shape == tiny_env.state_shape

    def test_done_after_horizon(self, tiny_env):
        tiny_env.reset()
        done = False
        for t in range(tiny_env.config.horizon):
            __, __, done, __ = tiny_env.step(Action.stay(tiny_env.num_workers))
        assert done
        with pytest.raises(RuntimeError):
            tiny_env.step(Action.stay(tiny_env.num_workers))

    def test_reset_restores_world(self, tiny_env):
        tiny_env.reset()
        initial_values = tiny_env.pois.values.copy()
        rng = np.random.default_rng(0)
        for __ in range(5):
            mask = tiny_env.valid_moves()
            moves = np.array([rng.choice(np.nonzero(m)[0]) for m in mask])
            tiny_env.step(Action(charge=np.zeros(2, int), move=moves))
        tiny_env.reset()
        np.testing.assert_array_equal(tiny_env.pois.values, initial_values)
        assert tiny_env.t == 0

    def test_wrong_worker_count_rejected(self, tiny_env):
        tiny_env.reset()
        with pytest.raises(ValueError, match="workers"):
            tiny_env.step(Action.stay(5))

    def test_invalid_reward_mode(self, tiny_config):
        with pytest.raises(ValueError, match="reward_mode"):
            CrowdsensingEnv(tiny_config, reward_mode="bogus")

    def test_scenario_config_mismatch(self, tiny_config):
        other = generate_scenario(tiny_config.replace(seed=99))
        with pytest.raises(ValueError, match="different config"):
            CrowdsensingEnv(tiny_config, scenario=other)


class TestMovement:
    def test_valid_move_changes_position(self):
        env = CrowdsensingEnv(obstacle_free_config())
        env.reset()
        start = env.workers.positions[0].copy()
        mask = env.valid_moves()
        choice = next(
            i for i in range(1, 9) if mask[0, i]
        )
        __, __, __, info = env.step(Action(charge=np.zeros(1, int), move=np.array([choice])))
        moved = np.linalg.norm(info["positions"][0] - start)
        assert moved == pytest.approx(
            np.linalg.norm(env.config.move_step * np.array([1, 1]))
            if MOVE_NAMES[choice] in ("NE", "SE", "SW", "NW")
            else env.config.move_step
        )

    def test_invalid_move_bumps_and_stays(self):
        env = CrowdsensingEnv(obstacle_free_config())
        env.reset()
        mask = env.valid_moves()
        invalid = [i for i in range(9) if not mask[0, i]]
        if not invalid:
            # Move the worker to a corner first: walk west until blocked.
            west = move_index("W")
            for __ in range(10):
                env.step(Action(charge=np.zeros(1, int), move=np.array([west])))
                if not env.valid_moves()[0, west]:
                    break
            invalid = [west]
        start = env.workers.positions[0].copy()
        __, __, __, info = env.step(
            Action(charge=np.zeros(1, int), move=np.array([invalid[0]]))
        )
        assert info["bumped"][0]
        np.testing.assert_array_equal(info["positions"][0], start)

    def test_bump_incurs_sparse_penalty(self):
        config = obstacle_free_config()
        env = CrowdsensingEnv(config, reward_mode="sparse")
        env.reset()
        west = move_index("W")
        reward = 0.0
        for __ in range(10):
            __, reward, __, info = env.step(
                Action(charge=np.zeros(1, int), move=np.array([west]))
            )
            if info["bumped"][0]:
                break
        assert info["bumped"][0]
        assert reward <= -config.obstacle_penalty + 1e-9


class TestCollection:
    def make_env_with_poi_under_worker(self):
        config = obstacle_free_config(num_pois=1)
        scenario = generate_scenario(config)
        # Move the PoI onto the worker's cell.
        scenario.pois.positions[0] = scenario.workers.positions[0]
        env = CrowdsensingEnv(config, scenario=scenario)
        return env, config

    def test_collects_lambda_delta0_per_slot(self):
        env, config = self.make_env_with_poi_under_worker()
        env.reset()
        delta0 = env.pois.initial_values[0]
        __, __, __, info = env.step(Action.stay(1))
        expected = config.collect_rate * delta0
        assert info["outcome"].collected[0] == pytest.approx(expected)
        assert env.pois.values[0] == pytest.approx(delta0 - expected)

    def test_collection_capped_at_remaining(self):
        env, config = self.make_env_with_poi_under_worker()
        env.reset()
        env.pois.values[0] = 1e-4
        __, __, __, info = env.step(Action.stay(1))
        assert info["outcome"].collected[0] == pytest.approx(1e-4)
        assert env.pois.values[0] == pytest.approx(0.0)

    def test_access_time_increments_when_sensed(self):
        env, __ = self.make_env_with_poi_under_worker()
        env.reset()
        env.step(Action.stay(1))
        assert env.pois.access_time[0] == 1
        env.step(Action.stay(1))
        assert env.pois.access_time[0] == 2

    def test_workers_compete_for_same_poi(self):
        config = obstacle_free_config(num_workers=2, num_pois=1)
        scenario = generate_scenario(config)
        scenario.pois.positions[0] = scenario.workers.positions[0]
        scenario.workers.positions[1] = scenario.workers.positions[0]
        scenario.pois.initial_values[0] = 1.0
        scenario.pois.values[0] = 0.25  # less than 2 * lambda * delta0 = 0.4
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        __, __, __, info = env.step(Action.stay(2))
        collected = info["outcome"].collected
        # Worker 0 takes its full rate (0.2), worker 1 gets the remainder.
        assert collected[0] == pytest.approx(0.2)
        assert collected[1] == pytest.approx(0.05)
        assert env.pois.values[0] == pytest.approx(0.0)


class TestEnergy:
    def test_travel_cost(self):
        env = CrowdsensingEnv(obstacle_free_config(num_pois=1, seed=12))
        env.reset()
        env.pois.values[:] = 0.0  # no collection cost
        before = env.workers.energy[0]
        mask = env.valid_moves()
        cardinal = next(i for i in (1, 3, 5, 7) if mask[0, i])
        env.step(Action(charge=np.zeros(1, int), move=np.array([cardinal])))
        cost = env.config.beta * env.config.move_step
        assert env.workers.energy[0] == pytest.approx(before - cost)

    def test_collection_cost_alpha(self):
        config = obstacle_free_config(num_pois=1)
        scenario = generate_scenario(config)
        scenario.pois.positions[0] = scenario.workers.positions[0]
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        before = env.workers.energy[0]
        __, __, __, info = env.step(Action.stay(1))
        q = info["outcome"].collected[0]
        assert env.workers.energy[0] == pytest.approx(before - config.alpha * q)

    def test_energy_never_negative(self):
        config = obstacle_free_config(energy_budget=0.05)
        env = CrowdsensingEnv(config)
        env.reset()
        rng = np.random.default_rng(0)
        for __ in range(config.horizon):
            mask = env.valid_moves()
            moves = np.array([rng.choice(np.nonzero(m)[0]) for m in mask])
            env.step(Action(charge=np.zeros(1, int), move=moves))
        assert np.all(env.workers.energy >= 0.0)

    def test_drained_worker_cannot_move(self):
        config = obstacle_free_config()
        env = CrowdsensingEnv(config)
        env.reset()
        env.workers.energy[0] = 0.0
        mask = env.valid_moves()
        assert mask[0].sum() == 1  # only stay


class TestCharging:
    def make_env_at_station(self, energy=2.0):
        config = obstacle_free_config()
        scenario = generate_scenario(config)
        scenario.workers.positions[0] = scenario.stations.positions[0]
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        env.workers.energy[0] = energy
        return env, config

    def test_charging_at_station(self):
        env, config = self.make_env_at_station(energy=2.0)
        __, __, __, info = env.step(Action(charge=np.ones(1, int), move=np.array([3])))
        assert info["charging"][0]
        expected = min(config.charge_per_slot, config.energy_budget - 2.0)
        assert info["outcome"].charged[0] == pytest.approx(expected)
        # Charging worker stays in place.
        np.testing.assert_array_equal(
            info["positions"][0], info["previous_positions"][0]
        )

    def test_charge_capped_at_remaining_room(self):
        env, config = self.make_env_at_station(energy=config_nearly_full_energy())
        __, __, __, info = env.step(Action(charge=np.ones(1, int), move=np.array([0])))
        room = config.energy_budget - config_nearly_full_energy()
        assert info["outcome"].charged[0] == pytest.approx(room)
        assert env.workers.energy[0] == pytest.approx(config.energy_budget)

    def test_charging_worker_does_not_collect(self):
        config = obstacle_free_config(num_pois=1)
        scenario = generate_scenario(config)
        scenario.workers.positions[0] = scenario.stations.positions[0]
        scenario.pois.positions[0] = scenario.workers.positions[0]
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        env.workers.energy[0] = 1.0
        __, __, __, info = env.step(Action(charge=np.ones(1, int), move=np.array([0])))
        assert info["outcome"].collected[0] == 0.0

    def test_charge_away_from_station_ignored(self):
        config = obstacle_free_config()
        scenario = generate_scenario(config)
        # Put the worker far from every station.
        station = scenario.stations.positions[0]
        far = np.array([station[0] + 4.0, station[1]]) % (config.size - 1) + 0.5
        scenario.workers.positions[0] = far
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        if env.charge_possible()[0]:
            pytest.skip("random placement happened to be near a station")
        __, __, __, info = env.step(Action(charge=np.ones(1, int), move=np.array([0])))
        assert not info["charging"][0]
        assert info["outcome"].charged[0] == 0.0

    def test_dead_worker_can_be_recharged(self):
        env, config = self.make_env_at_station(energy=0.0)
        __, __, __, info = env.step(Action(charge=np.ones(1, int), move=np.array([0])))
        assert info["outcome"].charged[0] > 0
        assert env.workers.energy[0] > 0


def config_nearly_full_energy() -> float:
    """Energy one unit below the obstacle-free config's budget."""
    return obstacle_free_config().energy_budget - 1.0


class TestRewardsAndInfo:
    def test_dense_and_sparse_modes_differ(self):
        config = obstacle_free_config(num_pois=8, horizon=8)
        rng = np.random.default_rng(1)
        totals = {}
        for mode in ("sparse", "dense"):
            env = CrowdsensingEnv(config, reward_mode=mode)
            env.reset()
            rng_local = np.random.default_rng(1)
            total = 0.0
            for __ in range(config.horizon):
                mask = env.valid_moves()
                moves = np.array([rng_local.choice(np.nonzero(m)[0]) for m in mask])
                __, r, __, __ = env.step(Action(charge=np.zeros(1, int), move=moves))
                total += r
            totals[mode] = total
        assert totals["sparse"] != pytest.approx(totals["dense"])

    def test_info_contents(self, tiny_env):
        tiny_env.reset()
        __, __, __, info = tiny_env.step(Action.stay(tiny_env.num_workers))
        for key in (
            "outcome",
            "reward_per_worker",
            "positions",
            "previous_positions",
            "moves",
            "charging",
            "bumped",
            "t",
        ):
            assert key in info
        assert info["t"] == 1
        assert info["reward_per_worker"].shape == (tiny_env.num_workers,)

    def test_reward_is_mean_of_per_worker(self, tiny_env):
        tiny_env.reset()
        __, reward, __, info = tiny_env.step(Action.stay(tiny_env.num_workers))
        assert reward == pytest.approx(float(info["reward_per_worker"].mean()))

    def test_deterministic_given_actions(self, tiny_config):
        results = []
        for __ in range(2):
            env = CrowdsensingEnv(tiny_config)
            env.reset()
            rng = np.random.default_rng(3)
            rewards = []
            for __ in range(tiny_config.horizon):
                mask = env.valid_moves()
                moves = np.array([rng.choice(np.nonzero(m)[0]) for m in mask])
                charge = (rng.random(tiny_config.num_workers) < 0.3).astype(int)
                __, r, __, __ = env.step(Action(charge=charge, move=moves))
                rewards.append(r)
            results.append((rewards, env.metrics().kappa))
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]

    def test_metrics_snapshot_available_anytime(self, tiny_env):
        tiny_env.reset()
        metrics = tiny_env.metrics()
        assert metrics.kappa == 0.0
        assert metrics.xi == pytest.approx(1.0)
