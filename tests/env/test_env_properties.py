"""Property-based invariants of the environment under random play."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env import Action, CrowdsensingEnv, ScenarioConfig


def play_random_episode(config: ScenarioConfig, action_seed: int):
    env = CrowdsensingEnv(config, reward_mode="dense")
    env.reset()
    rng = np.random.default_rng(action_seed)
    done = False
    while not done:
        mask = env.valid_moves()
        moves = np.array([rng.choice(np.nonzero(m)[0]) for m in mask])
        charge = (rng.random(config.num_workers) < 0.3).astype(int)
        __, __, done, __ = env.step(Action(charge=charge, move=moves))
    return env


configs = st.builds(
    ScenarioConfig,
    size=st.just(6.0),
    grid=st.just(6),
    num_workers=st.integers(1, 3),
    num_pois=st.integers(3, 15),
    num_stations=st.integers(0, 2),
    horizon=st.integers(3, 15),
    energy_budget=st.floats(1.0, 20.0),
    seed=st.integers(0, 5),
    corner_room=st.booleans(),
)


@settings(max_examples=20, deadline=None)
@given(configs, st.integers(0, 3))
def test_poi_values_bounded(config, action_seed):
    """0 <= δ_t <= δ_0 always."""
    env = play_random_episode(config, action_seed)
    assert np.all(env.pois.values >= -1e-12)
    assert np.all(env.pois.values <= env.pois.initial_values + 1e-12)


@settings(max_examples=20, deadline=None)
@given(configs, st.integers(0, 3))
def test_data_conservation(config, action_seed):
    """Collected data equals depleted PoI data exactly."""
    env = play_random_episode(config, action_seed)
    collected = env.workers.collected.sum()
    depleted = (env.pois.initial_values - env.pois.values).sum()
    assert collected == pytest.approx(depleted, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(configs, st.integers(0, 3))
def test_energy_balance(config, action_seed):
    """b_T = b_0 - E_T + charged, and 0 <= b_T <= capacity."""
    env = play_random_episode(config, action_seed)
    workers = env.workers
    expected = (
        config.energy_budget - workers.consumed + workers.charged_total
    )
    np.testing.assert_allclose(workers.energy, expected, atol=1e-9)
    assert np.all(workers.energy >= -1e-12)
    assert np.all(workers.energy <= workers.capacity + 1e-9)


@settings(max_examples=20, deadline=None)
@given(configs, st.integers(0, 3))
def test_workers_never_inside_obstacles(config, action_seed):
    env = play_random_episode(config, action_seed)
    assert not np.any(env.space.is_blocked(env.workers.positions))


@settings(max_examples=20, deadline=None)
@given(configs, st.integers(0, 3))
def test_metrics_in_valid_ranges(config, action_seed):
    env = play_random_episode(config, action_seed)
    metrics = env.metrics()
    assert 0.0 <= metrics.kappa <= 1.0 + 1e-9
    assert 0.0 <= metrics.xi <= 1.0 + 1e-9
    assert metrics.rho >= 0.0
    assert 0.0 <= metrics.fairness <= 1.0 + 1e-9


@settings(max_examples=15, deadline=None)
@given(configs)
def test_state_encoding_finite_and_shaped(config):
    env = CrowdsensingEnv(config)
    state = env.reset()
    assert state.shape == (3, config.grid, config.grid)
    assert np.all(np.isfinite(state))
    # Energy channel bounded by worker count (all workers in one cell, full).
    assert state[0].max() <= config.num_workers + 1e-9


@settings(max_examples=10, deadline=None)
@given(configs, st.integers(0, 3))
def test_access_time_monotonic(config, action_seed):
    env = CrowdsensingEnv(config, reward_mode="dense")
    env.reset()
    rng = np.random.default_rng(action_seed)
    previous = env.pois.access_time.copy()
    done = False
    while not done:
        mask = env.valid_moves()
        moves = np.array([rng.choice(np.nonzero(m)[0]) for m in mask])
        __, __, done, __ = env.step(
            Action(charge=np.zeros(config.num_workers, int), move=moves)
        )
        assert np.all(env.pois.access_time >= previous)
        previous = env.pois.access_time.copy()
