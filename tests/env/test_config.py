"""Tests for scenario configuration validation and presets."""

import pytest

from repro.env import ScenarioConfig, paper_config, smoke_config


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("size", 0.0),
            ("size", -1.0),
            ("grid", 3),
            ("num_workers", 0),
            ("num_pois", 0),
            ("num_stations", -1),
            ("horizon", 0),
            ("energy_budget", 0.0),
            ("collect_rate", 0.0),
            ("collect_rate", 1.5),
            ("alpha", -0.1),
            ("beta", -0.1),
            ("epsilon1", 0.0),
            ("epsilon1", 1.5),
            ("epsilon2", 0.0),
            ("poi_uniform_fraction", 1.1),
            ("corner_room_fraction", 1.0),
        ],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ValueError):
            ScenarioConfig(**{field: value})

    def test_defaults_are_paper_section_7a(self):
        config = ScenarioConfig()
        assert config.energy_budget == 40.0
        assert config.sensing_range == 0.8
        assert config.charging_range == 0.8
        assert config.collect_rate == 0.2
        assert config.alpha == 1.0
        assert config.beta == 0.1
        assert config.epsilon1 == 0.05
        assert config.epsilon2 == 0.4
        assert config.num_workers == 2
        assert config.num_pois == 300
        assert config.num_stations == 4


class TestHelpers:
    def test_cell_size(self):
        config = ScenarioConfig(size=16.0, grid=8)
        assert config.cell_size == 2.0

    def test_replace_returns_new(self):
        config = ScenarioConfig()
        changed = config.replace(num_pois=100)
        assert changed.num_pois == 100
        assert config.num_pois == 300
        assert changed is not config

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            ScenarioConfig().replace(num_pois=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            ScenarioConfig().num_pois = 5

    def test_paper_config_overrides(self):
        config = paper_config(num_workers=5)
        assert config.num_workers == 5
        assert config.num_pois == 300

    def test_smoke_config_is_small(self):
        config = smoke_config()
        assert config.grid <= 10
        assert config.num_pois <= 60

    def test_smoke_config_overrides(self):
        config = smoke_config(horizon=7)
        assert config.horizon == 7

    def test_equal_configs_compare_equal(self):
        assert ScenarioConfig() == ScenarioConfig()
        assert ScenarioConfig(seed=1) != ScenarioConfig(seed=2)
