"""Tests for the 3-channel state encoding."""

import numpy as np
import pytest

from repro.env import (
    ChargingStations,
    CrowdsensingSpace,
    OBSTACLE_CODE,
    PoiField,
    STATE_CHANNELS,
    STATION_CODE,
    WorkerFleet,
    encode_state,
)


@pytest.fixture
def world():
    mask = np.zeros((4, 4), dtype=bool)
    mask[3, 3] = True
    space = CrowdsensingSpace(4.0, 4, mask)
    workers = WorkerFleet(
        positions=np.array([[0.5, 0.5], [2.5, 1.5]]),
        energy=np.array([10.0, 5.0]),
        capacity=10.0,
    )
    pois = PoiField(
        positions=np.array([[1.5, 2.5], [1.6, 2.6], [0.5, 3.5]]),
        initial_values=np.array([0.5, 0.3, 0.8]),
    )
    stations = ChargingStations(np.array([[3.5, 0.5]]))
    return space, workers, pois, stations


class TestStateEncoding:
    def test_shape(self, world):
        state = encode_state(*world, horizon=10)
        assert state.shape == (STATE_CHANNELS, 4, 4)

    def test_worker_channel_normalized_energy(self, world):
        state = encode_state(*world, horizon=10)
        # Worker 0 at cell (row 0, col 0) with full battery.
        assert state[0, 0, 0] == pytest.approx(1.0)
        # Worker 1 at cell (row 1, col 2) with half battery.
        assert state[0, 1, 2] == pytest.approx(0.5)
        assert state[0].sum() == pytest.approx(1.5)

    def test_workers_sharing_cell_sum(self, world):
        space, workers, pois, stations = world
        workers.positions[1] = workers.positions[0]
        state = encode_state(space, workers, pois, stations, horizon=10)
        assert state[0, 0, 0] == pytest.approx(1.5)

    def test_poi_values_summed_per_cell(self, world):
        state = encode_state(*world, horizon=10)
        # Two PoIs share cell (row 2, col 1): 0.5 + 0.3.
        assert state[1, 2, 1] == pytest.approx(0.8)
        assert state[1, 3, 0] == pytest.approx(0.8)

    def test_station_and_obstacle_codes(self, world):
        state = encode_state(*world, horizon=10)
        assert state[1, 0, 3] == STATION_CODE
        assert state[1, 3, 3] == OBSTACLE_CODE

    def test_access_time_channel(self, world):
        space, workers, pois, stations = world
        pois.access_time[:] = [5, 2, 0]
        state = encode_state(space, workers, pois, stations, horizon=10)
        # Max-pooled per cell, normalized by horizon.
        assert state[2, 2, 1] == pytest.approx(0.5)
        assert state[2, 3, 0] == pytest.approx(0.0)

    def test_depleted_poi_leaves_zero(self, world):
        space, workers, pois, stations = world
        pois.values[:] = 0.0
        state = encode_state(space, workers, pois, stations, horizon=10)
        assert state[1, 2, 1] == pytest.approx(0.0)

    def test_no_stations(self, world):
        space, workers, pois, __ = world
        state = encode_state(
            space, workers, pois, ChargingStations(np.zeros((0, 2))), horizon=10
        )
        assert not np.any(state[1] == STATION_CODE)
