"""Tests for heterogeneous per-worker sensing ranges (Definition 2's g^w)."""

import numpy as np
import pytest

from repro.env import Action, CrowdsensingEnv, ScenarioConfig, generate_scenario


def hetero_config(ranges=(0.5, 2.0), **overrides):
    base = dict(
        size=8.0,
        grid=8,
        num_workers=len(ranges),
        num_pois=1,
        num_stations=1,
        horizon=6,
        energy_budget=10.0,
        corner_room=False,
        worker_sensing_ranges=ranges,
        seed=17,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestConfig:
    def test_default_is_uniform(self):
        config = ScenarioConfig(num_workers=3)
        assert config.sensing_ranges() == (0.8, 0.8, 0.8)

    def test_override_preserved_as_tuple(self):
        config = hetero_config()
        assert config.sensing_ranges() == (0.5, 2.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="entries"):
            ScenarioConfig(num_workers=3, worker_sensing_ranges=(0.5, 2.0))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ScenarioConfig(num_workers=2, worker_sensing_ranges=(0.5, 0.0))

    def test_env_exposes_per_worker_range(self):
        env = CrowdsensingEnv(hetero_config())
        assert env.sensing_range_of(0) == 0.5
        assert env.sensing_range_of(1) == 2.0


class TestCollection:
    def test_only_long_range_worker_reaches_distant_poi(self):
        config = hetero_config(ranges=(0.5, 2.0))
        scenario = generate_scenario(config)
        # Both workers at the same spot; PoI 1.5 units away: inside g=2.0,
        # outside g=0.5.
        anchor = np.array([4.5, 4.5])
        scenario.workers.positions[0] = anchor
        scenario.workers.positions[1] = anchor
        scenario.pois.positions[0] = anchor + np.array([1.5, 0.0])
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        __, __, __, info = env.step(Action.stay(2))
        collected = info["outcome"].collected
        assert collected[0] == 0.0
        assert collected[1] > 0.0

    def test_greedy_plans_with_own_range(self, rng):
        """The long-range worker sees (and moves toward) data the
        short-range worker cannot."""
        from repro.agents import GreedyAgent
        from repro.env.actions import MOVE_NAMES

        config = hetero_config(ranges=(0.3, 1.7))
        scenario = generate_scenario(config)
        scenario.space.obstacles[:] = False  # clear random blocks off the path
        scenario.workers.positions[0] = np.array([2.5, 2.5])
        scenario.workers.positions[1] = np.array([2.5, 4.5])
        # PoI east of both rows, within 1.7 of worker 1's *next* cell only.
        scenario.pois.positions[0] = np.array([5.0, 4.5])
        scenario.pois.initial_values[0] = 1.0
        scenario.pois.values[0] = 1.0
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        action = GreedyAgent(charge_threshold=0.0).act(env, rng)
        assert MOVE_NAMES[action.move[1]] == "E"

    def test_uniform_fleet_unchanged(self):
        """Heterogeneous machinery reduces to the old behaviour when all
        ranges equal the global default."""
        base = ScenarioConfig(
            size=8.0, grid=8, num_workers=2, num_pois=10, num_stations=1,
            horizon=6, energy_budget=10.0, corner_room=False, seed=3,
        )
        explicit = base.replace(worker_sensing_ranges=(0.8, 0.8))
        results = []
        for config in (base, explicit):
            env = CrowdsensingEnv(config)
            env.reset()
            rng = np.random.default_rng(0)
            total = 0.0
            for __ in range(config.horizon):
                mask = env.valid_moves()
                moves = np.array([rng.choice(np.nonzero(m)[0]) for m in mask])
                __, r, __, __ = env.step(Action(charge=np.zeros(2, int), move=moves))
                total += r
            results.append((total, env.metrics().kappa))
        assert results[0] == results[1]
