"""Tests for the environment wrappers."""

import numpy as np
import pytest

from repro.env import Action, CrowdsensingEnv
from repro.env.wrappers import EpisodeStats, EnvWrapper, FrameStack, NormalizeReward


def random_episode(env, seed=0):
    env.reset()
    rng = np.random.default_rng(seed)
    rewards = []
    done = False
    while not done:
        mask = env.valid_moves()
        moves = np.array([rng.choice(np.nonzero(m)[0]) for m in mask])
        __, reward, done, info = env.step(
            Action(charge=np.zeros(env.num_workers, int), move=moves)
        )
        rewards.append(reward)
    return rewards


class TestEnvWrapper:
    def test_attribute_forwarding(self, tiny_config):
        env = EnvWrapper(CrowdsensingEnv(tiny_config))
        env.reset()
        assert env.num_workers == tiny_config.num_workers
        assert env.valid_moves().shape == (tiny_config.num_workers, 9)
        assert env.workers.energy.shape == (tiny_config.num_workers,)

    def test_unwrapped_through_stack(self, tiny_config):
        base = CrowdsensingEnv(tiny_config)
        stacked = EpisodeStats(FrameStack(NormalizeReward(base), k=2))
        assert stacked.unwrapped is base


class TestNormalizeReward:
    def test_rewards_rescaled_and_raw_kept(self, tiny_config):
        env = NormalizeReward(CrowdsensingEnv(tiny_config, reward_mode="dense"))
        env.reset()
        rng = np.random.default_rng(0)
        mask = env.valid_moves()
        moves = np.array([rng.choice(np.nonzero(m)[0]) for m in mask])
        __, reward, __, info = env.step(
            Action(charge=np.zeros(env.num_workers, int), move=moves)
        )
        assert "raw_reward" in info
        assert np.isfinite(reward)

    def test_scale_stabilizes_large_rewards(self, tiny_config):
        """After enough steps, normalized rewards have ~unit-return scale."""
        env = NormalizeReward(CrowdsensingEnv(tiny_config, reward_mode="dense"))
        all_rewards = []
        for seed in range(4):
            all_rewards.extend(random_episode(env, seed))
        tail = np.array(all_rewards[len(all_rewards) // 2 :])
        assert np.abs(tail).max() < 50.0

    def test_gamma_validation(self, tiny_config):
        with pytest.raises(ValueError):
            NormalizeReward(CrowdsensingEnv(tiny_config), gamma=0.0)


class TestFrameStack:
    def test_state_shape(self, tiny_config):
        env = FrameStack(CrowdsensingEnv(tiny_config), k=3)
        state = env.reset()
        assert state.shape == (9, tiny_config.grid, tiny_config.grid)
        assert env.state_shape == (9, tiny_config.grid, tiny_config.grid)

    def test_first_frame_repeated(self, tiny_config):
        env = FrameStack(CrowdsensingEnv(tiny_config), k=2)
        state = env.reset()
        np.testing.assert_array_equal(state[:3], state[3:])

    def test_frames_shift(self, tiny_config):
        env = FrameStack(CrowdsensingEnv(tiny_config), k=2)
        first = env.reset()
        next_state, __, __, __ = env.step(Action.stay(env.num_workers))
        # Oldest slot of the new stack is the newest slot of the old one.
        np.testing.assert_array_equal(next_state[:3], first[3:])

    def test_k_validation(self, tiny_config):
        with pytest.raises(ValueError):
            FrameStack(CrowdsensingEnv(tiny_config), k=0)


class TestEpisodeStats:
    def test_history_recorded(self, tiny_config):
        env = EpisodeStats(CrowdsensingEnv(tiny_config, reward_mode="dense"))
        rewards = random_episode(env, seed=1)
        assert len(env.history) == 1
        entry = env.history[0]
        assert entry["length"] == tiny_config.horizon
        assert entry["reward"] == pytest.approx(sum(rewards))
        assert 0.0 <= entry["kappa"] <= 1.0

    def test_multiple_episodes_accumulate(self, tiny_config):
        env = EpisodeStats(CrowdsensingEnv(tiny_config, reward_mode="dense"))
        random_episode(env, seed=1)
        random_episode(env, seed=2)
        assert len(env.history) == 2

    def test_works_through_stack(self, tiny_config):
        env = EpisodeStats(
            NormalizeReward(CrowdsensingEnv(tiny_config, reward_mode="dense"))
        )
        random_episode(env, seed=3)
        assert len(env.history) == 1
