"""Tests for the CNN actor-critic network."""

import numpy as np
import pytest

from repro import nn
from repro.agents import CNNActorCritic
from repro.agents.networks import MASKED_LOGIT
from repro.env.actions import NUM_MOVES


@pytest.fixture
def network(rng):
    return CNNActorCritic(
        channels=3, grid=8, num_workers=2, feature_dim=32,
        rng=np.random.default_rng(0),
    )


class TestShapes:
    def test_output_shapes(self, network, rng):
        states = rng.normal(size=(4, 3, 8, 8))
        out = network.forward(states)
        assert out.move_logits.shape == (4, 2, NUM_MOVES)
        assert out.charge_logits.shape == (4, 2)
        assert out.value.shape == (4,)

    def test_single_state_auto_batched(self, network, rng):
        out = network.forward(rng.normal(size=(3, 8, 8)))
        assert out.move_logits.shape == (1, 2, NUM_MOVES)

    def test_features_dim(self, network, rng):
        phi = network.features(nn.Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert phi.shape == (2, 32)

    def test_layer_norm_toggle(self, rng):
        plain = CNNActorCritic(3, 8, 2, rng=np.random.default_rng(0), layer_norm=False)
        assert not hasattr(plain, "norm1")
        out = plain.forward(rng.normal(size=(1, 3, 8, 8)))
        assert out.value.shape == (1,)

    def test_odd_grid_size(self, rng):
        network = CNNActorCritic(3, 7, 1, rng=np.random.default_rng(0))
        out = network.forward(rng.normal(size=(1, 3, 7, 7)))
        assert out.move_logits.shape == (1, 1, NUM_MOVES)


class TestMasking:
    def test_invalid_moves_get_masked_logit(self, network, rng):
        states = rng.normal(size=(1, 3, 8, 8))
        mask = np.ones((1, 2, NUM_MOVES), dtype=bool)
        mask[0, 0, 3] = False
        out = network.forward(states, move_mask=mask)
        assert out.move_logits.data[0, 0, 3] <= MASKED_LOGIT / 2
        assert out.move_logits.data[0, 1, 3] > MASKED_LOGIT / 2

    def test_masked_moves_never_sampled(self, network, rng):
        states = rng.normal(size=(1, 3, 8, 8))
        mask = np.zeros((1, 2, NUM_MOVES), dtype=bool)
        mask[:, :, 0] = True
        mask[:, :, 5] = True
        out = network.forward(states, move_mask=mask)
        dist = out.move_distribution()
        samples = np.concatenate([dist.sample(rng).ravel() for __ in range(50)])
        assert set(samples.tolist()) <= {0, 5}

    def test_2d_mask_auto_batched(self, network, rng):
        mask = np.ones((2, NUM_MOVES), dtype=bool)
        out = network.forward(rng.normal(size=(3, 8, 8)), move_mask=mask)
        assert out.move_logits.shape == (1, 2, NUM_MOVES)

    def test_bad_mask_shape_rejected(self, network, rng):
        with pytest.raises(ValueError, match="move_mask"):
            network.forward(
                rng.normal(size=(1, 3, 8, 8)),
                move_mask=np.ones((1, 3, NUM_MOVES), dtype=bool),
            )


class TestPolicyOutput:
    def test_log_prob_factorizes(self, network, rng):
        states = rng.normal(size=(2, 3, 8, 8))
        out = network.forward(states)
        moves = rng.integers(0, NUM_MOVES, size=(2, 2))
        charges = rng.integers(0, 2, size=(2, 2))
        joint = out.log_prob(moves, charges).data
        move_lp = out.move_distribution().log_prob(moves).data.sum(axis=-1)
        charge_lp = (
            out.charge_distribution().log_prob(charges.astype(float)).data.sum(axis=-1)
        )
        np.testing.assert_allclose(joint, move_lp + charge_lp)

    def test_entropy_positive_at_init(self, network, rng):
        out = network.forward(rng.normal(size=(2, 3, 8, 8)))
        assert np.all(out.entropy().data > 0)

    def test_log_prob_differentiable(self, network, rng):
        out = network.forward(rng.normal(size=(1, 3, 8, 8)))
        moves = np.zeros((1, 2), dtype=int)
        charges = np.zeros((1, 2), dtype=int)
        out.log_prob(moves, charges).sum().backward()
        assert network.move_head.weight.grad is not None
        assert network.charge_head.weight.grad is not None

    def test_charge_bias_starts_low(self, network):
        """Untrained charge probability should be well below 0.5."""
        probs = 1 / (1 + np.exp(-network.charge_head.bias.data))
        assert np.all(probs < 0.2)

    def test_value_head_gradient(self, network, rng):
        out = network.forward(rng.normal(size=(2, 3, 8, 8)))
        (out.value * out.value).sum().backward()
        assert network.value_head.weight.grad is not None


class TestWorkerFeatures:
    def test_features_change_output(self, network, rng):
        states = rng.normal(size=(1, 3, 8, 8))
        plain = network.forward(states)
        featured = network.forward(
            states, worker_features=rng.normal(size=(1, 2, 3))
        )
        assert not np.array_equal(
            plain.move_logits.data, featured.move_logits.data
        )

    def test_zero_features_match_default(self, network, rng):
        states = rng.normal(size=(1, 3, 8, 8))
        plain = network.forward(states)
        zeroed = network.forward(states, worker_features=np.zeros((1, 2, 3)))
        np.testing.assert_array_equal(plain.move_logits.data, zeroed.move_logits.data)
        np.testing.assert_array_equal(plain.value.data, zeroed.value.data)

    def test_2d_features_auto_batched(self, network, rng):
        out = network.forward(
            rng.normal(size=(3, 8, 8)), worker_features=np.zeros((2, 3))
        )
        assert out.value.shape == (1,)

    def test_bad_feature_shape_rejected(self, network, rng):
        with pytest.raises(ValueError, match="worker_features"):
            network.forward(
                rng.normal(size=(1, 3, 8, 8)),
                worker_features=np.zeros((1, 3, 3)),
            )

    def test_gradients_flow_from_features(self, network, rng):
        states = rng.normal(size=(2, 3, 8, 8))
        out = network.forward(
            states, worker_features=rng.normal(size=(2, 2, 3))
        )
        out.value.sum().backward()
        assert network.head_trunk.weight.grad is not None
