"""Tests for the agent-side episode helpers (run_episode, EpisodeResult)."""

import numpy as np
import pytest

from repro.agents import EpisodeResult, RandomAgent, run_episode
from repro.env import CrowdsensingEnv


class TestRunEpisode:
    def test_basic_rollout(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        result = run_episode(RandomAgent(), env, rng)
        assert result.steps == tiny_config.horizon
        assert result.trajectory is None
        assert result.kappa_curve == []

    def test_record_trajectory_includes_start(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        result = run_episode(RandomAgent(), env, rng, record_trajectory=True)
        assert len(result.trajectory) == tiny_config.horizon + 1
        assert result.trajectory[0].shape == (tiny_config.num_workers, 2)

    def test_record_kappa_curve_monotone(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        result = run_episode(RandomAgent(), env, rng, record_kappa=True)
        curve = result.kappa_curve
        assert len(curve) == tiny_config.horizon
        # Collected data never decreases.
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_resets_environment_first(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        run_episode(RandomAgent(), env, rng)
        # Second run starts cleanly even though the env just finished.
        result = run_episode(RandomAgent(), env, rng)
        assert result.steps == tiny_config.horizon


class TestEpisodeResult:
    def test_total_reward(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        result = run_episode(RandomAgent(), env, rng)
        assert result.total_reward == result.extrinsic_reward
        result.intrinsic_reward = 2.5
        assert result.total_reward == pytest.approx(result.extrinsic_reward + 2.5)
