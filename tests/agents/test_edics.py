"""Tests for the Edics multi-agent baseline."""

import numpy as np
import pytest

from repro.agents import EdicsAgent, PPOConfig
from repro.env import CrowdsensingEnv


@pytest.fixture
def ppo():
    return PPOConfig(batch_size=6, epochs=1, learning_rate=1e-3)


@pytest.fixture
def edics(tiny_config, ppo):
    return EdicsAgent(tiny_config, ppo=ppo, seed=2)


@pytest.fixture
def env(tiny_config):
    return CrowdsensingEnv(tiny_config, reward_mode="dense")


class TestStructure:
    def test_one_network_per_worker(self, edics, tiny_config):
        assert len(edics.networks) == tiny_config.num_workers

    def test_networks_take_identity_channel(self, edics):
        assert all(net.channels == 4 for net in edics.networks)

    def test_networks_are_single_worker(self, edics):
        assert all(net.num_workers == 1 for net in edics.networks)

    def test_no_curiosity_parameters(self, edics):
        assert edics.curiosity_parameters() == []

    def test_policy_parameters_concatenated(self, edics):
        per_net = len(edics.networks[0].parameters())
        assert len(edics.policy_parameters()) == per_net * len(edics.networks)


class TestActing:
    def test_actions_valid(self, edics, env, rng):
        env.reset()
        for __ in range(5):
            mask = env.valid_moves()
            action = edics.act(env, rng)
            for w in range(env.num_workers):
                assert mask[w, action.move[w]]
            env.step(action)

    def test_greedy_deterministic(self, edics, env):
        env.reset()
        a = edics.act(env, np.random.default_rng(0), greedy=True)
        b = edics.act(env, np.random.default_rng(9), greedy=True)
        np.testing.assert_array_equal(a.move, b.move)


class TestRollout:
    def test_buffers_aligned(self, edics, env, rng):
        rollout, result = edics.collect_episode(env, rng)
        assert len(rollout) == env.config.horizon
        assert len(rollout.buffers) == env.num_workers
        assert result.steps == env.config.horizon

    def test_per_worker_rewards_stored(self, edics, env, rng):
        rollout, __ = edics.collect_episode(env, rng)
        rewards = [
            [tr.reward for tr in buffer._transitions] for buffer in rollout.buffers
        ]
        # Workers see different reward streams in general.
        assert rewards[0] != rewards[1] or len(set(rewards[0])) > 1

    def test_minibatches_yield_lists(self, edics, env, rng):
        rollout, __ = edics.collect_episode(env, rng)
        batch_list = next(iter(rollout.minibatches(4, rng)))
        assert len(batch_list) == env.num_workers
        assert all(len(batch) == 4 for batch in batch_list)

    def test_full_batch(self, edics, env, rng):
        rollout, __ = edics.collect_episode(env, rng)
        batches = rollout.full_batch()
        assert all(len(batch) == env.config.horizon for batch in batches)


class TestGradients:
    def test_gradient_pack(self, edics, env, rng):
        rollout, __ = edics.collect_episode(env, rng)
        pack = edics.compute_gradients(rollout.full_batch())
        assert len(pack.policy) == len(edics.policy_parameters())
        assert pack.curiosity == []

    def test_batch_count_mismatch(self, edics, env, rng):
        rollout, __ = edics.collect_episode(env, rng)
        with pytest.raises(ValueError, match="batches"):
            edics.compute_gradients(rollout.full_batch()[:1])


class TestTrainingAndSync:
    def test_standalone_train(self, edics, env, rng):
        results = edics.train(env, episodes=2, rng=rng)
        assert len(results) == 2

    def test_copy_parameters(self, tiny_config, ppo):
        a = EdicsAgent(tiny_config, ppo=ppo, seed=1)
        b = EdicsAgent(tiny_config, ppo=ppo, seed=2)
        b.copy_parameters_from(a)
        np.testing.assert_array_equal(
            a.networks[0].fc.weight.data, b.networks[0].fc.weight.data
        )

    def test_state_dict_round_trip(self, tiny_config, ppo):
        a = EdicsAgent(tiny_config, ppo=ppo, seed=1)
        b = EdicsAgent(tiny_config, ppo=ppo, seed=2)
        b.load_state_dict(a.state_dict())
        for na, nb in zip(a.networks, b.networks):
            for (ka, va), (kb, vb) in zip(
                na.state_dict().items(), nb.state_dict().items()
            ):
                np.testing.assert_array_equal(va, vb)
