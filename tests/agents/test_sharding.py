"""Unit gates for the intra-minibatch sharding math (DESIGN § 6i).

The contract: shard boundaries and the gradient recombination depend
only on ``(B, S)`` — never on which worker computed which shard or in
what order replies arrived — and the 1-way "sharded" update is bitwise
the unsharded update.
"""

import dataclasses

import numpy as np
import pytest

from repro.agents import CEWSAgent, PPOConfig
from repro.agents.policy import GradientPack
from repro.agents.ppo import PPOStats, _ppo_arrays
from repro.agents.sharding import (
    combine_shard_packs,
    combine_shard_stats,
    compute_sharded_update,
    normalize_minibatch,
    shard_sizes,
    split_minibatch,
)
from repro.env import CrowdsensingEnv, smoke_config


@pytest.fixture(scope="module")
def workload():
    config = smoke_config(seed=3, horizon=40)
    agent = CEWSAgent(config, ppo=PPOConfig(batch_size=16, epochs=1), seed=0)
    env = CrowdsensingEnv(config, reward_mode="sparse", scenario=agent.scenario)
    buffer, __ = agent.collect_episode(env, np.random.default_rng(0))
    batch = next(iter(buffer.minibatches(16, np.random.default_rng(0))))
    return agent, batch


def make_pack(rng, scale=1.0):
    return GradientPack(
        policy=[rng.standard_normal((3, 2)) * scale, rng.standard_normal(4) * scale],
        curiosity=[rng.standard_normal(5) * scale],
        stats=PPOStats(
            policy_loss=float(rng.normal()),
            value_loss=float(rng.normal()),
            entropy=float(rng.normal()),
            clip_fraction=float(rng.uniform()),
            approx_kl=float(rng.normal()),
        ),
    )


class TestShardSizes:
    def test_uneven_split_front_loads_remainder(self):
        assert shard_sizes(10, 4) == [3, 3, 2, 2]
        assert shard_sizes(16, 2) == [8, 8]
        assert shard_sizes(7, 3) == [3, 2, 2]

    def test_clamped_to_total_so_no_shard_is_empty(self):
        assert shard_sizes(2, 4) == [1, 1]
        assert shard_sizes(1, 8) == [1]

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            shard_sizes(0, 2)
        with pytest.raises(ValueError):
            shard_sizes(8, 0)


class TestSplitMinibatch:
    def test_contiguous_rows_reassemble_exactly(self, workload):
        __, batch = workload
        shards = split_minibatch(batch, 3)
        assert [len(s) for s in shards] == shard_sizes(len(batch), 3)
        for field in dataclasses.fields(batch):
            rebuilt = np.concatenate(
                [getattr(shard, field.name) for shard in shards]
            )
            original = getattr(batch, field.name)
            assert rebuilt.dtype == original.dtype, field.name
            assert np.array_equal(rebuilt, original), field.name


class TestCombine:
    def test_tree_reduce_bracketing_is_fixed(self):
        """4 shards fold as (0+1)+(2+3) — checked against the explicit
        bracketing, which differs in bits from left-to-right summation
        for generic floats."""
        rng = np.random.default_rng(0)
        packs = [make_pack(rng) for _ in range(4)]
        sizes = [4, 4, 4, 4]
        combined = combine_shard_packs(packs, sizes)
        w = [n / 16.0 for n in sizes]
        scaled = [
            [g * w[k] for g in packs[k].policy] for k in range(4)
        ]
        expected = [
            (a + b) + (c + d)
            for a, b, c, d in zip(scaled[0], scaled[1], scaled[2], scaled[3])
        ]
        for got, want in zip(combined.policy, expected):
            assert got.tobytes() == want.tobytes()

    def test_combine_is_a_pure_function_of_shard_order(self):
        """Same packs, same bytes — and swapped shard order gives the
        *intended different* result (order is part of the contract, so a
        backend delivering replies out of shard order must re-sort)."""
        rng = np.random.default_rng(1)
        packs = [make_pack(rng) for _ in range(3)]
        sizes = [6, 5, 5]
        once = combine_shard_packs(packs, sizes)
        again = combine_shard_packs(packs, sizes)
        for a, b in zip(once.policy + once.curiosity, again.policy + again.curiosity):
            assert a.tobytes() == b.tobytes()
        swapped = combine_shard_packs(packs[::-1], sizes[::-1])
        assert any(
            a.tobytes() != b.tobytes()
            for a, b in zip(once.policy, swapped.policy)
        )

    def test_mismatched_lengths_rejected(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            combine_shard_packs([make_pack(rng)], [4, 4])

    def test_combine_stats_row_weighted(self):
        stats = [
            PPOStats(1.0, 2.0, 3.0, 0.5, 0.1),
            PPOStats(3.0, 6.0, 9.0, 1.0, 0.3),
        ]
        combined = combine_shard_stats(stats, [3, 1])
        assert combined.policy_loss == pytest.approx(1.5)
        assert combined.value_loss == pytest.approx(3.0)
        assert combined.entropy == pytest.approx(4.5)
        assert combined.clip_fraction == pytest.approx(0.625)
        assert combined.approx_kl == pytest.approx(0.15)


class TestNormalizeMinibatch:
    def test_matches_ppo_arrays_expression(self, workload):
        agent, batch = workload
        normalized = normalize_minibatch(batch, agent.ppo)
        want = _ppo_arrays(batch, agent.ppo)["advantages"]
        assert normalized.advantages.tobytes() == want.tobytes()
        # Every other field rides along untouched.
        assert normalized.states is batch.states

    def test_normalization_off_is_a_passthrough_copy(self, workload):
        agent, batch = workload
        config = dataclasses.replace(agent.ppo, normalize_advantages=False)
        normalized = normalize_minibatch(batch, config)
        assert normalized.advantages.tobytes() == batch.advantages.tobytes()


class TestShardedUpdate:
    def test_one_way_shard_is_bitwise_the_unsharded_update(self, workload):
        agent, batch = workload
        direct = agent.compute_gradients(batch)
        sharded = compute_sharded_update(agent, batch, 1)
        for got, want in zip(
            sharded.policy + sharded.curiosity, direct.policy + direct.curiosity
        ):
            assert got.tobytes() == want.tobytes()
        assert sharded.stats == direct.stats

    def test_sharded_update_is_deterministic(self, workload):
        agent, batch = workload
        once = compute_sharded_update(agent, batch, 4)
        again = compute_sharded_update(agent, batch, 4)
        for a, b in zip(once.policy + once.curiosity, again.policy + again.curiosity):
            assert a.tobytes() == b.tobytes()
        assert once.stats == again.stats

    def test_sharded_differs_from_unsharded_as_documented(self, workload):
        """Float addition is not associative: S>1 legitimately produces
        different bits, which is why shard_minibatch is opt-in."""
        agent, batch = workload
        direct = agent.compute_gradients(batch)
        sharded = compute_sharded_update(agent, batch, 4)
        assert any(
            a.tobytes() != b.tobytes()
            for a, b in zip(sharded.policy, direct.policy)
        )
