"""Tests for PPOWorkerAgent (the CEWS / DPPO machinery)."""

import numpy as np
import pytest

from repro import nn
from repro.agents import CEWSAgent, DPPOAgent, PPOConfig, PPOWorkerAgent
from repro.curiosity import NullCuriosity
from repro.env import CrowdsensingEnv


@pytest.fixture
def ppo():
    return PPOConfig(batch_size=8, epochs=1, learning_rate=1e-3)


@pytest.fixture
def cews(tiny_config, ppo):
    return CEWSAgent(tiny_config, ppo=ppo, seed=1)


@pytest.fixture
def cews_env(cews, tiny_config):
    return CrowdsensingEnv(tiny_config, reward_mode="sparse", scenario=cews.scenario)


class TestActing:
    def test_actions_always_valid(self, cews, cews_env, rng):
        cews_env.reset()
        for __ in range(tiny_steps := 8):
            mask = cews_env.valid_moves()
            action = cews.act(cews_env, rng)
            for w in range(cews_env.num_workers):
                assert mask[w, action.move[w]]
            cews_env.step(action)

    def test_greedy_act_deterministic(self, cews, cews_env):
        cews_env.reset()
        a = cews.act(cews_env, np.random.default_rng(0), greedy=True)
        b = cews.act(cews_env, np.random.default_rng(99), greedy=True)
        np.testing.assert_array_equal(a.move, b.move)
        np.testing.assert_array_equal(a.charge, b.charge)

    def test_act_full_bookkeeping(self, cews, cews_env, rng):
        cews_env.reset()
        action, log_prob, value, mask, features = cews.act_full(cews_env, rng)
        assert log_prob < 0  # a log-probability
        assert np.isfinite(value)
        assert mask.shape == (cews_env.num_workers, 9)
        assert features.shape == (cews_env.num_workers, 3)
        # Positions normalized to (0, 1); full batteries give 1.0.
        assert np.all(features[:, :2] > 0) and np.all(features[:, :2] < 1)
        np.testing.assert_allclose(features[:, 2], 1.0)


class TestCollect:
    def test_collect_episode_fills_buffer(self, cews, cews_env, rng):
        buffer, result = cews.collect_episode(cews_env, rng)
        assert len(buffer) == cews_env.config.horizon
        assert result.steps == cews_env.config.horizon
        assert result.intrinsic_reward > 0  # curiosity active

    def test_rewards_include_intrinsic(self, cews, cews_env, rng):
        buffer, result = cews.collect_episode(cews_env, rng)
        batch = buffer.full_batch()
        # Total stored reward equals ext + int totals.
        stored_total = sum(tr.reward for tr in buffer._transitions)
        assert stored_total == pytest.approx(
            result.extrinsic_reward + result.intrinsic_reward
        )

    def test_record_trajectory(self, cews, cews_env, rng):
        __, result = cews.collect_episode(cews_env, rng, record_trajectory=True)
        assert len(result.trajectory) == cews_env.config.horizon + 1

    def test_dppo_has_zero_intrinsic(self, tiny_config, ppo, rng):
        agent = DPPOAgent(tiny_config, ppo=ppo, seed=1)
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        __, result = agent.collect_episode(env, rng)
        assert result.intrinsic_reward == 0.0


class TestGradients:
    def test_gradient_pack_alignment(self, cews, cews_env, rng):
        buffer, __ = cews.collect_episode(cews_env, rng)
        pack = cews.compute_gradients(buffer.full_batch())
        assert len(pack.policy) == len(cews.network.parameters())
        assert len(pack.curiosity) == len(cews.curiosity.parameters())
        for grad, param in zip(pack.policy, cews.network.parameters()):
            assert grad.shape == param.data.shape

    def test_gradients_do_not_mutate_params(self, cews, cews_env, rng):
        buffer, __ = cews.collect_episode(cews_env, rng)
        before = {k: v.copy() for k, v in cews.network.state_dict().items()}
        cews.compute_gradients(buffer.full_batch())
        for key, value in cews.network.state_dict().items():
            np.testing.assert_array_equal(value, before[key])

    def test_null_curiosity_no_curiosity_grads(self, tiny_config, ppo, rng):
        agent = DPPOAgent(tiny_config, ppo=ppo)
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        buffer, __ = agent.collect_episode(env, rng)
        pack = agent.compute_gradients(buffer.full_batch())
        assert pack.curiosity == []


class TestStandaloneTraining:
    def test_train_runs_and_returns_results(self, cews, cews_env, rng):
        results = cews.train(cews_env, episodes=2, rng=rng)
        assert len(results) == 2
        assert all(r.steps == cews_env.config.horizon for r in results)

    def test_train_episode_changes_parameters(self, cews, cews_env, rng):
        before = {k: v.copy() for k, v in cews.network.state_dict().items()}
        optimizer = nn.Adam(cews.network.parameters(), lr=1e-2)
        curiosity_opt = nn.Adam(cews.curiosity.parameters(), lr=1e-2)
        cews.train_episode(cews_env, rng, optimizer, curiosity_opt)
        changed = any(
            not np.array_equal(v, before[k])
            for k, v in cews.network.state_dict().items()
        )
        assert changed


class TestSync:
    def test_copy_parameters_from(self, tiny_config, ppo, rng):
        a = CEWSAgent(tiny_config, ppo=ppo, seed=1)
        b = CEWSAgent(tiny_config, scenario=a.scenario, ppo=ppo, seed=2)
        b.copy_parameters_from(a)
        for (ka, va), (kb, vb) in zip(
            a.state_dict().items(), b.state_dict().items()
        ):
            np.testing.assert_array_equal(va, vb)

    def test_copy_structural_mismatch(self, tiny_config, ppo):
        a = CEWSAgent(tiny_config, ppo=ppo, seed=1)
        b = DPPOAgent(tiny_config, ppo=ppo, seed=1)
        with pytest.raises(ValueError):
            b.copy_parameters_from(a)

    def test_parameter_split(self, cews):
        policy = cews.policy_parameters()
        curiosity = cews.curiosity_parameters()
        assert len(policy) > 0 and len(curiosity) > 0
        assert not ({id(p) for p in policy} & {id(p) for p in curiosity})


class TestDefaults:
    def test_cews_defaults(self, tiny_config):
        agent = CEWSAgent(tiny_config)
        assert agent.name == "DRL-CEWS"
        assert agent.reward_mode == "sparse"
        assert agent.curiosity.eta == 0.3
        assert agent.curiosity.structure == "shared"
        assert agent.curiosity.feature_kind == "embedding"

    def test_dppo_defaults(self, tiny_config):
        agent = DPPOAgent(tiny_config)
        assert agent.name == "DPPO"
        assert agent.reward_mode == "dense"
        assert isinstance(agent.curiosity, NullCuriosity)
        assert agent.ppo.normalize_advantages

    def test_cews_scenario_mismatch_rejected(self, tiny_config):
        from repro.env import generate_scenario

        other = generate_scenario(tiny_config.replace(seed=123))
        with pytest.raises(ValueError, match="different config"):
            CEWSAgent(tiny_config, scenario=other)
