"""Tests for the rollout buffer and return/advantage computation."""

import numpy as np
import pytest

from repro.agents import RolloutBuffer, Transition, discounted_returns, gae_advantages


def make_transition(reward=1.0, value=0.5, done=False):
    return Transition(
        state=np.zeros((3, 4, 4)),
        move_mask=np.ones((2, 9), dtype=bool),
        moves=np.zeros(2, dtype=int),
        charges=np.zeros(2, dtype=int),
        log_prob=-1.0,
        value=value,
        reward=reward,
        done=done,
        positions=np.zeros((2, 2)),
        next_positions=np.ones((2, 2)),
        next_state=np.zeros((3, 4, 4)),
    )


class TestDiscountedReturns:
    def test_undiscounted_sum(self):
        returns = discounted_returns(
            np.array([1.0, 1.0, 1.0]), np.array([False, False, True]), 1.0, 0.0
        )
        np.testing.assert_allclose(returns, [3.0, 2.0, 1.0])

    def test_gamma_discounting(self):
        returns = discounted_returns(
            np.array([1.0, 1.0]), np.array([False, True]), 0.5, 0.0
        )
        np.testing.assert_allclose(returns, [1.5, 1.0])

    def test_bootstrap_when_not_done(self):
        returns = discounted_returns(
            np.array([1.0]), np.array([False]), 0.9, 10.0
        )
        np.testing.assert_allclose(returns, [1.0 + 0.9 * 10.0])

    def test_done_blocks_bootstrap(self):
        returns = discounted_returns(np.array([1.0]), np.array([True]), 0.9, 10.0)
        np.testing.assert_allclose(returns, [1.0])

    def test_episode_boundary_resets(self):
        rewards = np.array([1.0, 1.0, 1.0, 1.0])
        dones = np.array([False, True, False, True])
        returns = discounted_returns(rewards, dones, 1.0, 0.0)
        np.testing.assert_allclose(returns, [2.0, 1.0, 2.0, 1.0])


class TestGAE:
    def test_lambda_one_equals_mc_advantage(self):
        rewards = np.array([1.0, 2.0, 3.0])
        values = np.array([0.5, 0.5, 0.5])
        dones = np.array([False, False, True])
        gae = gae_advantages(rewards, values, dones, 0.99, 1.0, 0.0)
        returns = discounted_returns(rewards, dones, 0.99, 0.0)
        np.testing.assert_allclose(gae, returns - values)

    def test_lambda_zero_is_td_error(self):
        rewards = np.array([1.0, 2.0])
        values = np.array([0.5, 1.5])
        dones = np.array([False, True])
        gae = gae_advantages(rewards, values, dones, 0.9, 0.0, 0.0)
        np.testing.assert_allclose(
            gae, [1.0 + 0.9 * 1.5 - 0.5, 2.0 - 1.5]
        )

    def test_done_resets_accumulator(self):
        rewards = np.array([1.0, 1.0])
        values = np.array([0.0, 0.0])
        dones = np.array([True, True])
        gae = gae_advantages(rewards, values, dones, 0.9, 0.95, 5.0)
        np.testing.assert_allclose(gae, [1.0, 1.0])


class TestRolloutBuffer:
    def test_validation(self):
        with pytest.raises(ValueError):
            RolloutBuffer(gamma=0.0)
        with pytest.raises(ValueError):
            RolloutBuffer(gae_lambda=1.5)

    def test_finalize_empty_raises(self):
        with pytest.raises(RuntimeError, match="empty"):
            RolloutBuffer().finalize()

    def test_sample_before_finalize_raises(self):
        buffer = RolloutBuffer()
        buffer.add(make_transition())
        with pytest.raises(RuntimeError, match="finalize"):
            buffer.full_batch()

    def test_full_batch_contents(self):
        buffer = RolloutBuffer(gamma=1.0, gae_lambda=None)
        for reward in (1.0, 2.0, 3.0):
            buffer.add(make_transition(reward=reward, done=reward == 3.0))
        buffer.finalize()
        batch = buffer.full_batch()
        assert len(batch) == 3
        np.testing.assert_allclose(batch.returns, [6.0, 5.0, 3.0])
        np.testing.assert_allclose(batch.advantages, batch.returns - 0.5)
        assert batch.states.shape == (3, 3, 4, 4)
        assert batch.positions.shape == (3, 2, 2)

    def test_mc_advantages_when_lambda_none(self):
        buffer = RolloutBuffer(gamma=0.9, gae_lambda=None)
        buffer.add(make_transition(reward=1.0, value=0.3, done=True))
        buffer.finalize()
        batch = buffer.full_batch()
        np.testing.assert_allclose(batch.advantages, [0.7])

    def test_minibatches_cover_everything_once_per_epoch(self, rng):
        buffer = RolloutBuffer()
        for i in range(10):
            buffer.add(make_transition(reward=float(i), done=i == 9))
        buffer.finalize()
        seen = []
        for batch in buffer.minibatches(3, rng, epochs=2):
            assert len(batch) <= 3
            seen.extend(batch.states[:, 0, 0, 0].tolist())
        assert len(seen) == 20

    def test_minibatch_size_validation(self, rng):
        buffer = RolloutBuffer()
        buffer.add(make_transition(done=True))
        buffer.finalize()
        with pytest.raises(ValueError):
            list(buffer.minibatches(0, rng))

    def test_clear_resets(self):
        buffer = RolloutBuffer()
        buffer.add(make_transition(done=True))
        buffer.finalize()
        buffer.clear()
        assert len(buffer) == 0
        with pytest.raises(RuntimeError):
            buffer.full_batch()

    def test_add_after_finalize_invalidates(self):
        buffer = RolloutBuffer()
        buffer.add(make_transition(done=True))
        buffer.finalize()
        buffer.add(make_transition(done=True))
        with pytest.raises(RuntimeError, match="finalize"):
            buffer.full_batch()

    def test_bootstrap_value_flows_into_returns(self):
        buffer = RolloutBuffer(gamma=0.5, gae_lambda=None)
        buffer.add(make_transition(reward=1.0, done=False))
        buffer.finalize(bootstrap_value=4.0)
        batch = buffer.full_batch()
        np.testing.assert_allclose(batch.returns, [3.0])
