"""Tests for the scripted baselines: Greedy, D&C, Random."""

import numpy as np
import pytest

from repro.agents import DnCAgent, GreedyAgent, RandomAgent, evaluate_policy, run_episode
from repro.env import Action, CrowdsensingEnv, ScenarioConfig, generate_scenario
from repro.env.actions import MOVE_NAMES


def line_world(num_pois=1, **overrides):
    """Obstacle-free 8x8 world for hand-placed scenarios."""
    base = dict(
        size=8.0,
        grid=8,
        num_workers=1,
        num_pois=num_pois,
        num_stations=1,
        horizon=10,
        energy_budget=10.0,
        corner_room=False,
        seed=21,
    )
    base.update(overrides)
    config = ScenarioConfig(**base)
    return config, generate_scenario(config)


class TestGreedy:
    def test_moves_toward_adjacent_data(self, rng):
        config, scenario = line_world()
        # Worker at a known cell; PoI one cell east.
        scenario.workers.positions[0] = np.array([3.5, 3.5])
        scenario.pois.positions[0] = np.array([4.5, 3.5])
        scenario.pois.initial_values[0] = 1.0
        scenario.pois.values[0] = 1.0
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        action = GreedyAgent().act(env, rng)
        assert MOVE_NAMES[action.move[0]] == "E"

    def test_charges_when_low_and_near_station(self, rng):
        config, scenario = line_world()
        scenario.workers.positions[0] = scenario.stations.positions[0]
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        env.workers.energy[0] = 1.0  # 10% battery
        action = GreedyAgent(charge_threshold=0.5).act(env, rng)
        assert action.charge[0] == 1

    def test_does_not_charge_when_full(self, rng):
        config, scenario = line_world()
        scenario.workers.positions[0] = scenario.stations.positions[0]
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        action = GreedyAgent(charge_threshold=0.5).act(env, rng)
        assert action.charge[0] == 0

    def test_wanders_when_no_data_visible(self, rng):
        config, scenario = line_world()
        scenario.pois.positions[0] = np.array([7.5, 7.5])
        scenario.workers.positions[0] = np.array([0.5, 0.5])
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        action = GreedyAgent().act(env, rng)
        # Some valid move is chosen (possibly stay) without error.
        assert 0 <= action.move[0] < 9

    def test_actions_valid_through_episode(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        result = run_episode(GreedyAgent(), env, rng)
        assert result.steps == tiny_config.horizon

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            GreedyAgent(charge_threshold=1.5)

    def test_workers_claim_sequentially(self, rng):
        """Two workers adjacent to the same small PoI: the second should
        not chase data the first has already claimed this slot."""
        config, scenario = line_world(num_pois=2, num_workers=2)
        scenario.workers.positions[0] = np.array([3.5, 3.5])
        scenario.workers.positions[1] = np.array([3.5, 3.5])
        # PoI A east (tiny remaining value), PoI B west (full).
        scenario.pois.positions[0] = np.array([4.5, 3.5])
        scenario.pois.positions[1] = np.array([2.5, 3.5])
        scenario.pois.initial_values[:] = [1.0, 0.4]
        scenario.pois.values[:] = [0.2, 0.4]
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        action = GreedyAgent().act(env, rng)
        # Worker 0 takes the bigger prize east (min(0.2, 0.2)=0.2 vs west
        # min(0.08,0.4)=0.08 -> east). Worker 1 sees east exhausted and
        # goes west.
        assert MOVE_NAMES[action.move[0]] == "E"
        assert MOVE_NAMES[action.move[1]] == "W"


class TestDnC:
    def test_two_step_lookahead_beats_one_step_trap(self, rng):
        """A small immediate prize one way, a large 2-step prize the other:
        Greedy goes for the immediate, D&C for the larger total."""
        config, scenario = line_world(num_pois=3)
        scenario.workers.positions[0] = np.array([3.5, 3.5])
        # Immediate small PoI to the west.
        scenario.pois.positions[0] = np.array([2.5, 3.5])
        scenario.pois.initial_values[0] = 0.1
        scenario.pois.values[0] = 0.1
        # Two big PoIs: one at distance 1 east and one at distance 2 east.
        scenario.pois.positions[1] = np.array([4.7, 3.5])
        scenario.pois.positions[2] = np.array([5.5, 3.5])
        scenario.pois.initial_values[1:] = 1.0
        scenario.pois.values[1:] = 1.0
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        dnc_action = DnCAgent().act(env, rng)
        assert MOVE_NAMES[dnc_action.move[0]] == "E"

    def test_charges_when_low(self, rng):
        config, scenario = line_world()
        scenario.workers.positions[0] = scenario.stations.positions[0]
        env = CrowdsensingEnv(config, scenario=scenario)
        env.reset()
        env.workers.energy[0] = 1.0
        action = DnCAgent().act(env, rng)
        assert action.charge[0] == 1

    def test_full_episode_runs(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        result = run_episode(DnCAgent(), env, rng)
        assert result.steps == tiny_config.horizon

    def test_dnc_at_least_matches_greedy_on_average(self, rng):
        """Across seeds, two-step lookahead should collect at least as
        much as one-step (allowing small noise)."""
        greedy_scores, dnc_scores = [], []
        for seed in range(3):
            config = ScenarioConfig(
                size=8.0, grid=8, num_workers=1, num_pois=20, num_stations=1,
                horizon=20, energy_budget=10.0, corner_room=False, seed=seed,
            )
            for agent, scores in ((GreedyAgent(), greedy_scores), (DnCAgent(), dnc_scores)):
                env = CrowdsensingEnv(config, reward_mode="dense")
                scores.append(
                    run_episode(agent, env, np.random.default_rng(seed)).metrics.kappa
                )
        assert np.mean(dnc_scores) >= np.mean(greedy_scores) - 0.05

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DnCAgent(charge_threshold=-0.1)


class TestRandom:
    def test_only_valid_moves(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        env.reset()
        agent = RandomAgent()
        for __ in range(10):
            mask = env.valid_moves()
            action = agent.act(env, rng)
            for w in range(env.num_workers):
                assert mask[w, action.move[w]]
            env.step(action)

    def test_charge_probability_zero(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        env.reset()
        agent = RandomAgent(charge_probability=0.0)
        for __ in range(5):
            assert agent.act(env, rng).charge.sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomAgent(charge_probability=2.0)


class TestEvaluatePolicy:
    def test_single_episode(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        metrics = evaluate_policy(GreedyAgent(), env, rng)
        assert 0.0 <= metrics.kappa <= 1.0

    def test_multi_episode_mean(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        metrics = evaluate_policy(RandomAgent(), env, rng, episodes=3)
        assert 0.0 <= metrics.kappa <= 1.0

    def test_episodes_validation(self, tiny_config, rng):
        env = CrowdsensingEnv(tiny_config, reward_mode="dense")
        with pytest.raises(ValueError):
            evaluate_policy(GreedyAgent(), env, rng, episodes=0)
