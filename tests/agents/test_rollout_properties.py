"""Property-based invariants of return/advantage computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.agents import discounted_returns, gae_advantages

reward_arrays = arrays(
    np.float64, st.integers(1, 12), elements=st.floats(-5.0, 5.0, allow_nan=False)
)


def terminal_dones(length: int) -> np.ndarray:
    dones = np.zeros(length, dtype=bool)
    dones[-1] = True
    return dones


@settings(max_examples=40, deadline=None)
@given(reward_arrays, st.floats(0.1, 1.0))
def test_returns_satisfy_bellman_recursion(rewards, gamma):
    dones = terminal_dones(len(rewards))
    returns = discounted_returns(rewards, dones, gamma, 0.0)
    for t in range(len(rewards) - 1):
        assert returns[t] == pytest.approx(rewards[t] + gamma * returns[t + 1])
    assert returns[-1] == pytest.approx(rewards[-1])


@settings(max_examples=40, deadline=None)
@given(reward_arrays, st.floats(0.1, 1.0), st.floats(0.5, 3.0))
def test_returns_are_linear_in_rewards(rewards, gamma, scale):
    dones = terminal_dones(len(rewards))
    base = discounted_returns(rewards, dones, gamma, 0.0)
    scaled = discounted_returns(rewards * scale, dones, gamma, 0.0)
    np.testing.assert_allclose(scaled, base * scale, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(reward_arrays, st.floats(0.1, 0.99))
def test_nonnegative_rewards_give_monotone_returns_in_gamma(rewards, gamma):
    rewards = np.abs(rewards)
    dones = terminal_dones(len(rewards))
    low = discounted_returns(rewards, dones, gamma, 0.0)
    high = discounted_returns(rewards, dones, min(gamma + 0.01, 1.0), 0.0)
    assert np.all(high >= low - 1e-9)


@settings(max_examples=40, deadline=None)
@given(
    reward_arrays,
    st.floats(0.1, 1.0),
    st.floats(0.0, 1.0),
)
def test_gae_zero_for_perfect_value_function(rewards, gamma, lam):
    """If V(s_t) equals the true return, every TD error — hence every GAE
    advantage — is zero."""
    dones = terminal_dones(len(rewards))
    values = discounted_returns(rewards, dones, gamma, 0.0)
    advantages = gae_advantages(rewards, values, dones, gamma, lam, 0.0)
    np.testing.assert_allclose(advantages, 0.0, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(reward_arrays, st.floats(0.1, 1.0))
def test_gae_lambda_one_equals_mc_advantage(rewards, gamma):
    dones = terminal_dones(len(rewards))
    values = np.linspace(-1, 1, len(rewards))
    gae = gae_advantages(rewards, values, dones, gamma, 1.0, 0.0)
    mc = discounted_returns(rewards, dones, gamma, 0.0) - values
    np.testing.assert_allclose(gae, mc, atol=1e-9)
