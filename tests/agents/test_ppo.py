"""Tests for the PPO loss (Eqns. 11-12)."""

import numpy as np
import pytest

from repro.agents import CNNActorCritic, MiniBatch, PPOConfig
from repro.agents.ppo import ppo_loss
from repro.env.actions import NUM_MOVES


def make_batch(rng, network, size=6, advantages=None, log_prob_shift=0.0):
    states = rng.normal(size=(size, 3, 8, 8))
    masks = np.ones((size, 2, NUM_MOVES), dtype=bool)
    moves = rng.integers(0, NUM_MOVES, size=(size, 2))
    charges = rng.integers(0, 2, size=(size, 2))
    out = network.forward(states, move_mask=masks)
    log_probs = out.log_prob(moves, charges).data + log_prob_shift
    values = out.value.data.copy()
    returns = values + rng.normal(size=size)
    if advantages is None:
        advantages = returns - values
    return MiniBatch(
        states=states,
        move_masks=masks,
        moves=moves,
        charges=charges,
        log_probs=log_probs,
        values=values,
        returns=returns,
        advantages=np.asarray(advantages, dtype=float),
        positions=rng.uniform(0, 8, size=(size, 2, 2)),
        next_positions=rng.uniform(0, 8, size=(size, 2, 2)),
        next_states=rng.normal(size=(size, 3, 8, 8)),
        worker_features=np.zeros((size, 2, 3)),
    )


@pytest.fixture
def network():
    return CNNActorCritic(3, 8, 2, feature_dim=16, rng=np.random.default_rng(0))


class TestPPOConfig:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("clip_epsilon", 0.0),
            ("clip_epsilon", 1.0),
            ("epochs", 0),
            ("batch_size", 0),
            ("learning_rate", 0.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            PPOConfig(**{field: value})

    def test_defaults_match_paper(self):
        config = PPOConfig()
        assert config.clip_epsilon == 0.2
        assert config.batch_size == 250


class TestPPOLoss:
    def test_loss_is_finite_scalar(self, network, rng):
        batch = make_batch(rng, network)
        loss, stats = ppo_loss(network, batch, PPOConfig(batch_size=6))
        assert loss.size == 1
        assert np.isfinite(loss.item())
        assert np.isfinite(stats.value_loss)

    def test_zero_kl_at_collection_policy(self, network, rng):
        """With unchanged policy, ratio = 1 and approx_kl ~ 0."""
        batch = make_batch(rng, network)
        __, stats = ppo_loss(network, batch, PPOConfig())
        assert stats.approx_kl == pytest.approx(0.0, abs=1e-9)
        assert stats.clip_fraction == 0.0

    def test_policy_gradient_direction(self, network, rng):
        """Positive advantage on an action raises its probability."""
        batch = make_batch(rng, network, size=1, advantages=[1.0])
        config = PPOConfig(
            normalize_advantages=False, value_coef=0.0, entropy_coef=0.0
        )
        before = network.forward(batch.states, move_mask=batch.move_masks).log_prob(
            batch.moves, batch.charges
        ).item()
        loss, __ = ppo_loss(network, batch, config)
        network.zero_grad()
        loss.backward()
        for param in network.parameters():
            if param.grad is not None:
                param.data -= 0.01 * param.grad
        after = network.forward(batch.states, move_mask=batch.move_masks).log_prob(
            batch.moves, batch.charges
        ).item()
        assert after > before

    def test_clipping_kills_gradient_when_ratio_too_high(self, network, rng):
        """If the new policy is already far above the old (ratio >> 1+eps)
        with positive advantage, the clipped objective's gradient vanishes."""
        # Shift stored log-probs down so ratio = exp(+shift) is large.
        batch = make_batch(rng, network, size=4, advantages=[1.0] * 4,
                           log_prob_shift=-2.0)
        config = PPOConfig(
            normalize_advantages=False, value_coef=0.0, entropy_coef=0.0
        )
        loss, stats = ppo_loss(network, batch, config)
        network.zero_grad()
        loss.backward()
        grads = [p.grad for p in network.parameters() if p.grad is not None]
        total = sum(np.abs(g).sum() for g in grads)
        assert stats.clip_fraction == 1.0
        assert total == pytest.approx(0.0, abs=1e-12)

    def test_no_clipping_means_gradient_flows(self, network, rng):
        batch = make_batch(rng, network, size=4, advantages=[1.0] * 4)
        config = PPOConfig(
            normalize_advantages=False, value_coef=0.0, entropy_coef=0.0
        )
        loss, __ = ppo_loss(network, batch, config)
        network.zero_grad()
        loss.backward()
        total = sum(
            np.abs(p.grad).sum()
            for p in network.parameters()
            if p.grad is not None
        )
        assert total > 0

    def test_value_loss_is_squared_error(self, network, rng):
        batch = make_batch(rng, network)
        __, stats = ppo_loss(network, batch, PPOConfig())
        expected = np.mean((batch.values - batch.returns) ** 2)
        assert stats.value_loss == pytest.approx(expected, rel=1e-6)

    def test_advantage_normalization_changes_loss(self, network, rng):
        batch = make_batch(rng, network, advantages=[5.0, -3.0, 2.0, 0.5, 1.0, -2.0])
        loss_norm, __ = ppo_loss(
            network, batch, PPOConfig(normalize_advantages=True, entropy_coef=0.0)
        )
        loss_raw, __ = ppo_loss(
            network, batch, PPOConfig(normalize_advantages=False, entropy_coef=0.0)
        )
        assert loss_norm.item() != pytest.approx(loss_raw.item())

    def test_entropy_bonus_lowers_loss(self, network, rng):
        batch = make_batch(rng, network)
        low, __ = ppo_loss(network, batch, PPOConfig(entropy_coef=0.0))
        high, __ = ppo_loss(network, batch, PPOConfig(entropy_coef=0.1))
        assert high.item() < low.item()
