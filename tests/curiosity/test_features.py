"""Tests for the position feature extractors."""

import numpy as np
import pytest

from repro.curiosity import DirectFeature, EmbeddingFeature, make_feature
from repro.env import CrowdsensingSpace


@pytest.fixture
def space():
    return CrowdsensingSpace(8.0, 8)


class TestDirectFeature:
    def test_scales_into_unit_square(self, space, rng):
        feature = DirectFeature(space)
        positions = rng.uniform(0.0, 8.0, size=(20, 2))
        out = feature(positions)
        assert out.shape == (20, 2)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_dim(self, space):
        assert DirectFeature(space).dim == 2

    def test_linear_in_position(self, space):
        feature = DirectFeature(space)
        np.testing.assert_allclose(feature(np.array([[4.0, 2.0]])), [[0.5, 0.25]])

    def test_single_position_reshaped(self, space):
        out = DirectFeature(space)(np.array([1.0, 1.0]))
        assert out.shape == (1, 2)


class TestEmbeddingFeature:
    def test_shape_and_dim(self, space, rng):
        feature = EmbeddingFeature(space, dim=8, seed=0)
        out = feature(rng.uniform(0.5, 7.5, size=(10, 2)))
        assert out.shape == (10, 8)
        assert feature.dim == 8

    def test_same_cell_same_feature(self, space):
        feature = EmbeddingFeature(space, seed=0)
        a = feature(np.array([[1.1, 1.1]]))
        b = feature(np.array([[1.9, 1.9]]))  # same cell (cell size 1.0)
        np.testing.assert_array_equal(a, b)

    def test_different_cells_differ(self, space):
        feature = EmbeddingFeature(space, seed=0)
        a = feature(np.array([[1.5, 1.5]]))
        b = feature(np.array([[2.5, 1.5]]))
        assert not np.array_equal(a, b)

    def test_deterministic_in_seed(self, space):
        a = EmbeddingFeature(space, seed=3)(np.array([[1.5, 1.5]]))
        b = EmbeddingFeature(space, seed=3)(np.array([[1.5, 1.5]]))
        np.testing.assert_array_equal(a, b)
        c = EmbeddingFeature(space, seed=4)(np.array([[1.5, 1.5]]))
        assert not np.array_equal(a, c)

    def test_expected_squared_norm_near_one(self, space):
        feature = EmbeddingFeature(space, dim=8, seed=0)
        cells = np.array(
            [[x + 0.5, y + 0.5] for x in range(8) for y in range(8)]
        )
        norms = (feature(cells) ** 2).sum(axis=1)
        assert norms.mean() == pytest.approx(1.0, rel=0.4)

    def test_rejects_bad_dim(self, space):
        with pytest.raises(ValueError):
            EmbeddingFeature(space, dim=0)


class TestFactory:
    def test_make_direct(self, space):
        assert isinstance(make_feature("direct", space), DirectFeature)

    def test_make_embedding(self, space):
        feature = make_feature("embedding", space, seed=1, dim=4)
        assert isinstance(feature, EmbeddingFeature)
        assert feature.dim == 4

    def test_unknown_kind(self, space):
        with pytest.raises(ValueError, match="unknown feature"):
            make_feature("fourier", space)
