"""Tests for the spatial curiosity model (the paper's contribution)."""

import numpy as np
import pytest

from repro import nn
from repro.curiosity import SpatialCuriosity, TransitionBatch
from repro.env import CrowdsensingSpace
from repro.env.actions import MOVE_OFFSETS


@pytest.fixture
def space():
    return CrowdsensingSpace(8.0, 8)


def random_batch(rng, batch=16, workers=2, size=8.0):
    positions = rng.uniform(0.5, size - 0.5, size=(batch, workers, 2))
    moves = rng.integers(0, 9, size=(batch, workers))
    next_positions = np.clip(
        positions + MOVE_OFFSETS[moves], 0.1, size - 0.1
    )
    return TransitionBatch(
        positions=positions, next_positions=next_positions, moves=moves
    )


class TestTransitionBatch:
    def test_shapes_validated(self, rng):
        with pytest.raises(ValueError, match="positions"):
            TransitionBatch(
                positions=np.zeros((4, 2)),
                next_positions=np.zeros((4, 2)),
                moves=np.zeros((4,), dtype=int),
            )

    def test_mismatched_next_positions(self):
        with pytest.raises(ValueError, match="next_positions"):
            TransitionBatch(
                positions=np.zeros((4, 2, 2)),
                next_positions=np.zeros((3, 2, 2)),
                moves=np.zeros((4, 2), dtype=int),
            )

    def test_moves_shape(self):
        with pytest.raises(ValueError, match="moves"):
            TransitionBatch(
                positions=np.zeros((4, 2, 2)),
                next_positions=np.zeros((4, 2, 2)),
                moves=np.zeros((4, 3), dtype=int),
            )

    def test_single_wraps_batch_of_one(self):
        batch = TransitionBatch.single(
            positions=np.zeros((2, 2)),
            moves=np.zeros(2, dtype=int),
            next_positions=np.ones((2, 2)),
            state=np.zeros((3, 4, 4)),
        )
        assert len(batch) == 1
        assert batch.num_workers == 2
        assert batch.states.shape == (1, 3, 4, 4)


class TestSpatialCuriosity:
    def test_intrinsic_reward_shape_and_scale(self, space, rng):
        curiosity = SpatialCuriosity(space, eta=0.3, num_workers=2)
        batch = random_batch(rng)
        rewards = curiosity.intrinsic_reward(batch)
        assert rewards.shape == (16,)
        assert np.all(rewards >= 0)

    def test_eta_scales_linearly(self, space, rng):
        batch = random_batch(rng)
        small = SpatialCuriosity(space, eta=0.1, num_workers=2, seed=0)
        large = SpatialCuriosity(space, eta=0.2, num_workers=2, seed=0)
        np.testing.assert_allclose(
            large.intrinsic_reward(batch), 2 * small.intrinsic_reward(batch)
        )

    def test_eta_zero_gives_zero_reward_but_nonzero_loss(self, space, rng):
        curiosity = SpatialCuriosity(space, eta=0.0, num_workers=2)
        batch = random_batch(rng)
        np.testing.assert_array_equal(curiosity.intrinsic_reward(batch), 0.0)
        assert curiosity.loss(batch).item() > 0.0

    def test_negative_eta_rejected(self, space):
        with pytest.raises(ValueError, match="eta"):
            SpatialCuriosity(space, eta=-0.1)

    def test_bad_structure_rejected(self, space):
        with pytest.raises(ValueError, match="structure"):
            SpatialCuriosity(space, structure="mixed")

    def test_training_reduces_loss(self, space, rng):
        curiosity = SpatialCuriosity(space, num_workers=2, seed=0)
        batch = random_batch(rng)
        optimizer = nn.Adam(curiosity.parameters(), lr=1e-2)
        initial = curiosity.loss(batch).item()
        for __ in range(60):
            optimizer.zero_grad()
            curiosity.loss(batch).backward()
            optimizer.step()
        assert curiosity.loss(batch).item() < 0.1 * initial

    def test_visited_transitions_lose_novelty(self, space, rng):
        """After training on region A, region B stays more novel."""
        curiosity = SpatialCuriosity(space, num_workers=1, seed=0)
        region_a = random_batch(rng, batch=32, workers=1, size=4.0)  # lower-left
        optimizer = nn.Adam(curiosity.parameters(), lr=1e-2)
        for __ in range(80):
            optimizer.zero_grad()
            curiosity.loss(region_a).backward()
            optimizer.step()
        rewards_a = curiosity.intrinsic_reward(region_a).mean()
        region_b_positions = rng.uniform(5.0, 7.5, size=(32, 1, 2))
        moves = rng.integers(0, 9, size=(32, 1))
        region_b = TransitionBatch(
            positions=region_b_positions,
            next_positions=np.clip(region_b_positions + MOVE_OFFSETS[moves], 0.1, 7.9),
            moves=moves,
        )
        rewards_b = curiosity.intrinsic_reward(region_b).mean()
        assert rewards_b > 2 * rewards_a

    def test_per_worker_curiosity_shape(self, space, rng):
        curiosity = SpatialCuriosity(space, num_workers=2)
        values = curiosity.per_worker_curiosity(random_batch(rng))
        assert values.shape == (16, 2)

    def test_raw_errors_eta_independent(self, space, rng):
        batch = random_batch(rng)
        a = SpatialCuriosity(space, eta=0.0, num_workers=2, seed=0)
        b = SpatialCuriosity(space, eta=0.9, num_workers=2, seed=0)
        np.testing.assert_allclose(a.raw_errors(batch), b.raw_errors(batch))


class TestStructures:
    def test_shared_has_one_model(self, space):
        shared = SpatialCuriosity(space, structure="shared", num_workers=5)
        independent = SpatialCuriosity(space, structure="independent", num_workers=5)
        assert len(independent.parameters()) == 5 * len(shared.parameters())

    def test_shared_params_independent_of_worker_count(self, space):
        a = SpatialCuriosity(space, structure="shared", num_workers=2)
        b = SpatialCuriosity(space, structure="shared", num_workers=10)
        assert sum(p.size for p in a.parameters()) == sum(
            p.size for p in b.parameters()
        )

    def test_independent_rejects_wrong_worker_count(self, space, rng):
        curiosity = SpatialCuriosity(space, structure="independent", num_workers=3)
        with pytest.raises(ValueError, match="workers"):
            curiosity.intrinsic_reward(random_batch(rng, workers=2))

    def test_direct_feature_variant(self, space, rng):
        curiosity = SpatialCuriosity(space, feature="direct", num_workers=2)
        rewards = curiosity.intrinsic_reward(random_batch(rng))
        assert rewards.shape == (16,)


class TestSync:
    def test_state_dict_round_trip(self, space, rng):
        # feature_seed fixes the frozen target table; state_dict carries
        # the trainable forward model.
        a = SpatialCuriosity(space, num_workers=2, seed=0, feature_seed=7)
        b = SpatialCuriosity(space, num_workers=2, seed=99, feature_seed=7)
        b.load_state_dict(a.state_dict())
        batch = random_batch(rng)
        np.testing.assert_allclose(a.loss(batch).item(), b.loss(batch).item())

    def test_copy_from(self, space, rng):
        a = SpatialCuriosity(space, num_workers=2, seed=0, feature_seed=7)
        b = SpatialCuriosity(space, num_workers=2, seed=99, feature_seed=7)
        b.copy_from(a)
        batch = random_batch(rng)
        np.testing.assert_allclose(
            a.intrinsic_reward(batch), b.intrinsic_reward(batch)
        )

    def test_copy_from_structure_mismatch(self, space):
        a = SpatialCuriosity(space, structure="shared", num_workers=2)
        b = SpatialCuriosity(space, structure="independent", num_workers=2)
        with pytest.raises(ValueError):
            b.copy_from(a)

    def test_feature_seed_shared_across_agent_seeds(self, space, rng):
        """Different agent seeds with one feature_seed predict one target."""
        a = SpatialCuriosity(space, num_workers=2, seed=1, feature_seed=42)
        b = SpatialCuriosity(space, num_workers=2, seed=2, feature_seed=42)
        batch = random_batch(rng)
        # Copy a's forward model into b: losses must then match exactly,
        # which only holds if the frozen feature tables are identical.
        b.copy_from(a)
        np.testing.assert_allclose(a.loss(batch).item(), b.loss(batch).item())
