"""Tests for the ICM and RND reference curiosity models."""

import numpy as np
import pytest

from repro import nn
from repro.curiosity import ICMCuriosity, NullCuriosity, RNDCuriosity, TransitionBatch
from repro.env.actions import MOVE_OFFSETS


def state_batch(rng, batch=8, workers=2, channels=3, grid=8):
    positions = rng.uniform(0.5, 7.5, size=(batch, workers, 2))
    moves = rng.integers(0, 9, size=(batch, workers))
    return TransitionBatch(
        positions=positions,
        next_positions=np.clip(positions + MOVE_OFFSETS[moves], 0.1, 7.9),
        moves=moves,
        states=rng.normal(size=(batch, channels, grid, grid)),
        next_states=rng.normal(size=(batch, channels, grid, grid)),
    )


class TestICM:
    def test_reward_shape(self, rng):
        icm = ICMCuriosity(3, 8, num_workers=2, seed=0)
        rewards = icm.intrinsic_reward(state_batch(rng))
        assert rewards.shape == (8,)
        assert np.all(rewards >= 0)

    def test_needs_states(self, rng):
        icm = ICMCuriosity(3, 8, num_workers=2)
        batch = state_batch(rng)
        stateless = TransitionBatch(
            positions=batch.positions,
            next_positions=batch.next_positions,
            moves=batch.moves,
        )
        with pytest.raises(ValueError, match="states"):
            icm.intrinsic_reward(stateless)

    def test_loss_combines_forward_and_inverse(self, rng):
        icm = ICMCuriosity(3, 8, num_workers=2, forward_weight=0.2, seed=0)
        loss = icm.loss(state_batch(rng))
        assert loss.item() > 0

    def test_training_reduces_loss(self, rng):
        icm = ICMCuriosity(3, 8, num_workers=2, seed=0)
        batch = state_batch(rng)
        optimizer = nn.Adam(icm.parameters(), lr=1e-3)
        initial = icm.loss(batch).item()
        for __ in range(40):
            optimizer.zero_grad()
            icm.loss(batch).backward()
            optimizer.step()
        assert icm.loss(batch).item() < initial

    def test_bad_forward_weight(self):
        with pytest.raises(ValueError, match="forward_weight"):
            ICMCuriosity(3, 8, num_workers=2, forward_weight=1.0)

    def test_state_dict_round_trip(self, rng):
        a = ICMCuriosity(3, 8, num_workers=2, seed=0)
        b = ICMCuriosity(3, 8, num_workers=2, seed=9)
        b.load_state_dict(a.state_dict())
        batch = state_batch(rng)
        np.testing.assert_allclose(
            a.intrinsic_reward(batch), b.intrinsic_reward(batch)
        )


class TestRND:
    def test_reward_shape_and_sign(self, rng):
        rnd = RNDCuriosity(3, 8, seed=0)
        rewards = rnd.intrinsic_reward(state_batch(rng))
        assert rewards.shape == (8,)
        assert np.all(rewards >= 0)

    def test_needs_next_states(self, rng):
        rnd = RNDCuriosity(3, 8)
        batch = state_batch(rng)
        stateless = TransitionBatch(
            positions=batch.positions,
            next_positions=batch.next_positions,
            moves=batch.moves,
        )
        with pytest.raises(ValueError, match="next_states"):
            rnd.intrinsic_reward(stateless)

    def test_target_is_frozen(self, rng):
        rnd = RNDCuriosity(3, 8, seed=0)
        target_before = {
            k: v.copy() for k, v in rnd.target.state_dict().items()
        }
        batch = state_batch(rng)
        optimizer = nn.Adam(rnd.parameters(), lr=1e-3)
        for __ in range(10):
            optimizer.zero_grad()
            rnd.loss(batch).backward()
            optimizer.step()
        for key, value in rnd.target.state_dict().items():
            np.testing.assert_array_equal(value, target_before[key])

    def test_only_predictor_parameters_trainable(self):
        rnd = RNDCuriosity(3, 8)
        predictor_ids = {id(p) for p in rnd.predictor.parameters()}
        assert all(id(p) in predictor_ids for p in rnd.parameters())

    def test_training_reduces_error_on_seen_states(self, rng):
        rnd = RNDCuriosity(3, 8, seed=0)
        batch = state_batch(rng)
        optimizer = nn.Adam(rnd.parameters(), lr=1e-3)
        initial = rnd.intrinsic_reward(batch).mean()
        for __ in range(60):
            optimizer.zero_grad()
            rnd.loss(batch).backward()
            optimizer.step()
        assert rnd.intrinsic_reward(batch).mean() < initial

    def test_target_seed_fixes_target_across_predictor_seeds(self, rng):
        a = RNDCuriosity(3, 8, seed=1, target_seed=7)
        b = RNDCuriosity(3, 8, seed=2, target_seed=7)
        for (ka, va), (kb, vb) in zip(
            a.target.state_dict().items(), b.target.state_dict().items()
        ):
            np.testing.assert_array_equal(va, vb)

    def test_state_dict_round_trip(self, rng):
        a = RNDCuriosity(3, 8, seed=0)
        b = RNDCuriosity(3, 8, seed=0)
        # Perturb b's predictor, then restore from a.
        for p in b.predictor.parameters():
            p.data += 1.0
        b.load_state_dict(a.state_dict())
        batch = state_batch(rng)
        np.testing.assert_allclose(
            a.intrinsic_reward(batch), b.intrinsic_reward(batch)
        )


class TestNullCuriosity:
    def test_zero_everything(self, rng):
        null = NullCuriosity()
        batch = state_batch(rng)
        np.testing.assert_array_equal(null.intrinsic_reward(batch), np.zeros(8))
        assert null.loss(batch).item() == 0.0
        assert null.parameters() == []
        assert null.state_dict() == {}

    def test_per_worker_broadcast(self, rng):
        null = NullCuriosity()
        values = null.per_worker_curiosity(state_batch(rng))
        assert values.shape == (8, 2)
        np.testing.assert_array_equal(values, 0.0)

    def test_load_nonempty_state_rejected(self):
        with pytest.raises(ValueError):
            NullCuriosity().load_state_dict({"w": np.zeros(1)})
