"""Satellite 2: ActionCache correctness.

Digest keying, collision-safe byte comparison, bitwise hit payloads,
LRU eviction, and generation-bump invalidation (the hot-reload safety
half of the cache).
"""

import numpy as np
import pytest

from repro.serve import ActionCache, InferRequest, InferResult
from repro.serve.protocol import request_digest
from repro.agents.networks import NUM_MOVES


def make_request(fill: float = 0.0, greedy: bool = True, seed=None, grid: int = 5):
    state = np.full((3, grid, grid), fill, dtype=np.float64)
    move_mask = np.ones((2, NUM_MOVES), dtype=bool)
    features = np.full((2, 3), 0.5, dtype=np.float64)
    return InferRequest(
        state=state,
        move_mask=move_mask,
        worker_features=features,
        greedy=greedy,
        seed=seed,
    ).validate()


def make_result(tag: int, generation: int = 0) -> InferResult:
    return InferResult(
        moves=np.array([tag, tag + 1], dtype=np.int64),
        charges=np.array([0, 1], dtype=np.int64),
        log_prob=-float(tag) - 0.25,
        value=float(tag) * 0.5,
        generation=generation,
        cached=False,
        batch_size=3,
    )


class TestDigestKeying:
    def test_identical_requests_share_a_digest(self):
        assert request_digest(make_request(0.5)) == request_digest(make_request(0.5))

    def test_any_array_bit_changes_the_digest(self):
        base = make_request(0.5)
        flipped = make_request(0.5)
        flipped.state[0, 0, 0] = np.nextafter(0.5, 1.0)
        assert request_digest(base) != request_digest(flipped)

    def test_sampling_mode_is_part_of_the_key(self):
        greedy = make_request(0.5, greedy=True)
        sampled = make_request(0.5, greedy=False, seed=0)
        other_seed = make_request(0.5, greedy=False, seed=1)
        digests = {
            request_digest(greedy),
            request_digest(sampled),
            request_digest(other_seed),
        }
        assert len(digests) == 3

    def test_shape_is_hashed_not_just_bytes(self):
        """Identical byte streams under different geometry: distinct keys."""
        a = make_request(0.0, grid=4)  # state (3, 4, 4): 48 zero floats
        b = make_request(0.0, grid=2)
        wide = InferRequest(  # state (12, 2, 2): the same 48 zero floats
            state=np.zeros((12, 2, 2), dtype=np.float64),
            move_mask=b.move_mask,
            worker_features=b.worker_features,
            greedy=True,
            seed=None,
        ).validate()
        assert a.state.tobytes() == wide.state.tobytes()
        assert request_digest(a) != request_digest(wide)


class TestHitSemantics:
    def test_hit_is_bitwise_and_tagged_cached(self):
        cache = ActionCache(capacity=4)
        request, result = make_request(1.0), make_result(3)
        cache.put(request, result)
        hit = cache.get(request)
        assert hit is not None
        assert hit.cached is True
        assert hit.generation == result.generation
        assert hit.moves.tobytes() == result.moves.tobytes()
        assert hit.charges.tobytes() == result.charges.tobytes()
        assert hit.log_prob == result.log_prob
        assert hit.value == result.value
        assert cache.stats()["hits"] == 1

    def test_miss_on_unknown_request(self):
        cache = ActionCache(capacity=4)
        assert cache.get(make_request(2.0)) is None
        assert cache.stats()["misses"] == 1

    def test_zero_capacity_never_stores(self):
        cache = ActionCache(capacity=0)
        cache.put(make_request(1.0), make_result(1))
        assert cache.get(make_request(1.0)) is None
        assert len(cache) == 0


class TestCollisionSafety:
    def test_forged_digest_collision_degrades_to_miss(self, monkeypatch):
        """Two different requests forced onto one digest: the byte
        comparison of the stored key material refuses the false hit."""
        from repro.serve import cache as cache_module

        monkeypatch.setattr(
            cache_module, "request_digest", lambda request: b"\x00" * 32
        )
        cache = ActionCache(capacity=4)
        first, second = make_request(1.0), make_request(2.0)
        cache.put(first, make_result(1))
        assert cache.get(second) is None  # collides, refused
        assert cache.stats()["collisions"] == 1
        hit = cache.get(first)  # the rightful owner still hits
        assert hit is not None and hit.moves[0] == 1


class TestEviction:
    def test_lru_evicts_oldest_first(self):
        cache = ActionCache(capacity=2)
        a, b, c = make_request(1.0), make_request(2.0), make_request(3.0)
        cache.put(a, make_result(1))
        cache.put(b, make_result(2))
        assert cache.get(a) is not None  # refresh a; b is now oldest
        cache.put(c, make_result(3))
        assert cache.stats()["evictions"] == 1
        assert cache.get(b) is None
        assert cache.get(a) is not None
        assert cache.get(c) is not None

    def test_reinserting_same_key_does_not_grow(self):
        cache = ActionCache(capacity=2)
        request = make_request(1.0)
        for __ in range(5):
            cache.put(request, make_result(1))
        assert len(cache) == 1
        assert cache.stats()["evictions"] == 0


class TestGenerationInvalidation:
    def test_bump_invalidates_old_entries_lazily(self):
        cache = ActionCache(capacity=4)
        request = make_request(1.0)
        cache.put(request, make_result(1, generation=0))
        assert cache.bump_generation() == 1
        assert cache.get(request) is None
        assert cache.stats()["invalidations"] == 1
        assert len(cache) == 0  # dropped on lookup

    def test_stale_result_is_refused_at_put(self):
        """An in-flight batch finishing on pre-reload weights must not
        resurrect old actions into the post-reload cache."""
        cache = ActionCache(capacity=4)
        cache.bump_generation(3)
        cache.put(make_request(1.0), make_result(1, generation=2))
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1

    def test_current_generation_round_trips_after_bump(self):
        cache = ActionCache(capacity=4)
        cache.bump_generation(5)
        request = make_request(1.0)
        cache.put(request, make_result(4, generation=5))
        hit = cache.get(request)
        assert hit is not None and hit.generation == 5

    def test_generation_cannot_go_backwards(self):
        cache = ActionCache(capacity=4)
        cache.bump_generation(7)
        with pytest.raises(ValueError):
            cache.bump_generation(6)

    def test_explicit_bump_to_same_generation_is_allowed(self):
        cache = ActionCache(capacity=4)
        cache.bump_generation(7)
        assert cache.bump_generation(7) == 7


class TestThreadSafety:
    def test_concurrent_mixed_traffic_keeps_invariants(self):
        import threading

        cache = ActionCache(capacity=8)
        requests = [make_request(float(i)) for i in range(16)]
        errors = []

        def pump(offset):
            try:
                for i in range(200):
                    request = requests[(i + offset) % len(requests)]
                    hit = cache.get(request)
                    if hit is None:
                        cache.put(
                            request,
                            make_result((i + offset) % len(requests)),
                        )
                    else:
                        assert hit.cached is True
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=pump, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) <= 8
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 800
