"""End-to-end serving tests: TCP + HTTP front doors, micro-batching,
backpressure, hot reload, metrics, and shutdown hygiene.

Everything runs against an :class:`InlinePool` (in-process engine) so
the suite stays fast; the fork-worker pool has its own test below that
additionally checks shared-memory hygiene.
"""

import asyncio
import glob
import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.env import CrowdsensingEnv
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    InferenceServer,
    InlinePool,
    Overloaded,
    ServeClient,
    ServeWorkerPool,
)

from .conftest import assert_bitwise, capture_cases


class ServerThread:
    """An InferenceServer running on its own event loop thread."""

    def __init__(self, pool, **kwargs):
        kwargs.setdefault("registry", MetricsRegistry())
        kwargs.setdefault("port", 0)
        kwargs.setdefault("http_port", 0)
        self._kwargs = kwargs
        self._pool = pool
        self._ready = threading.Event()
        self.server = None
        self.loop = None
        self.error = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self):
        try:
            asyncio.run(self._amain())
        except Exception as error:  # pragma: no cover
            self.error = error
            self._ready.set()

    async def _amain(self):
        self.server = InferenceServer(self._pool, **self._kwargs)
        await self.server.start()
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "server failed to start"
        if self.error is not None:
            raise self.error
        return self

    def __exit__(self, *exc):
        if self.loop is not None:
            self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server thread failed to exit"

    @property
    def port(self):
        return self.server.port

    def http(self, path, body=None, timeout=30):
        url = f"http://{self.server.http_address}{path}"
        if body is None:
            request = urllib.request.Request(url)
        else:
            request = urllib.request.Request(
                url,
                data=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read().decode()


@pytest.fixture
def cases(tiny_config, agent):
    env = CrowdsensingEnv(tiny_config)
    return capture_cases(env, agent, 6, seeds=[None, 11, None, 7, 11, None])


class TestTcpFrontDoor:
    def test_concurrent_mixed_duplicates_are_bitwise(self, network_state, cases):
        pool = InlinePool(network_state, generation=1)
        with ServerThread(pool, max_batch=4, max_delay=0.005) as harness:
            failures = []

            def pump(thread_index):
                try:
                    with ServeClient("127.0.0.1", harness.port) as client:
                        # Duplicate-heavy: every thread sends every case.
                        for request, expected in cases:
                            result = client.infer_request(request)
                            assert_bitwise(result, expected)
                            assert result.generation == 1
                except Exception as error:
                    failures.append((thread_index, error))

            threads = [
                threading.Thread(target=pump, args=(k,)) for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert failures == []
            stats = harness.server.cache.stats()
            assert stats["hits"] + stats["misses"] == 24
            # Concurrent duplicates may all race past the cache (misses
            # dispatch before any put lands); a sequential second pass
            # over the same keys must hit every time.
            with ServeClient("127.0.0.1", harness.port) as client:
                for request, expected in cases:
                    result = client.infer_request(request)
                    assert result.cached is True
                    assert_bitwise(result, expected)
            assert harness.server.cache.stats()["hits"] >= stats["hits"] + 6

    def test_cached_answers_are_bitwise_and_flagged(self, network_state, cases):
        pool = InlinePool(network_state, generation=1)
        request, expected = cases[0]
        with ServerThread(pool) as harness:
            with ServeClient("127.0.0.1", harness.port) as client:
                first = client.infer_request(request)
                second = client.infer_request(request)
        assert first.cached is False
        assert second.cached is True
        assert_bitwise(first, expected)
        assert_bitwise(second, expected)

    def test_info_round_trip(self, network_state):
        pool = InlinePool(network_state, generation=1)
        with ServerThread(pool, max_batch=3) as harness:
            with ServeClient("127.0.0.1", harness.port) as client:
                info = client.info()
        assert info["generation"] == 1
        assert info["max_batch"] == 3


class TestHttpFrontDoor:
    def test_infer_healthz_info_and_metrics(self, network_state, cases):
        from repro.serve.protocol import request_to_json

        pool = InlinePool(network_state, generation=1)
        request, expected = cases[0]
        with ServerThread(pool) as harness:
            status, body = harness.http("/infer", request_to_json(request))
            assert status == 200
            answer = json.loads(body)
            assert np.array_equal(
                np.asarray(answer["moves"], dtype=np.int64), expected.moves
            )
            assert answer["log_prob"] == expected.log_prob
            assert answer["value"] == expected.value

            status, body = harness.http("/healthz")
            assert status == 200

            status, body = harness.http("/info")
            assert status == 200
            assert json.loads(body)["generation"] == 1

            status, metrics = harness.http("/metrics")
            assert status == 200
            for family in (
                "repro_serve_requests_total",
                "repro_serve_latency_seconds",
                "repro_serve_batch_rows",
                "repro_serve_cache_total",
                "repro_serve_generation",
            ):
                assert family in metrics

    def test_malformed_request_is_a_400(self, network_state):
        pool = InlinePool(network_state, generation=1)
        with ServerThread(pool) as harness:
            import urllib.error

            with pytest.raises(urllib.error.HTTPError) as caught:
                harness.http("/infer", {"state": [[1.0]]})
            assert caught.value.code == 400


class TestBackpressure:
    def test_overload_sheds_with_retry_after(self, network_state, cases):
        pool = InlinePool(network_state, generation=1)
        request, expected = cases[0]
        with ServerThread(pool, max_pending=1, max_batch=1, max_delay=0.2) as harness:
            server = harness.server
            loop = harness.loop

            async def flood():
                tasks = [
                    asyncio.ensure_future(server.answer(request))
                    for __ in range(8)
                ]
                results = await asyncio.gather(*tasks, return_exceptions=True)
                outcomes = []
                for outcome in results:
                    if isinstance(outcome, Overloaded):
                        assert outcome.retry_after > 0
                        outcomes.append("rejected")
                    elif isinstance(outcome, BaseException):
                        raise outcome
                    else:
                        outcomes.append("accepted")
                return outcomes

            outcomes = asyncio.run_coroutine_threadsafe(flood(), loop).result(60)
            assert "rejected" in outcomes
            assert "accepted" in outcomes
            # The rejects are visible to the client as retryable 503s.
            with ServeClient(
                "127.0.0.1", harness.port, max_retries=5
            ) as client:
                result = client.infer_request(request)
            assert_bitwise(result, expected)


class TestHotReload:
    def test_reload_swaps_weights_and_invalidates_cache(
        self, tiny_config, agent, cases
    ):
        from repro.agents.policy import PPOWorkerAgent

        old_state = agent.network.state_dict()
        new_agent = PPOWorkerAgent(tiny_config, seed=9)
        new_state = new_agent.network.state_dict()

        env = CrowdsensingEnv(tiny_config)
        new_cases = capture_cases(env, new_agent, 3)

        pool = InlinePool(old_state, generation=1)
        request, old_expected = cases[0]
        with ServerThread(pool) as harness:
            with ServeClient("127.0.0.1", harness.port) as client:
                before = client.infer_request(request)
                assert before.generation == 1
                assert_bitwise(before, old_expected)

                future = asyncio.run_coroutine_threadsafe(
                    harness.server.reload_state(new_state), harness.loop
                )
                assert future.result(60) == 2

                # Same request, new weights: fresh compute (the old
                # cache entry is generation-stale), new tag.
                after = client.infer_request(request)
                assert after.generation == 2
                assert after.cached is False

                # And the served actions now match the *new* network's
                # offline act_full bitwise.
                for new_request, new_expected in new_cases:
                    result = client.infer_request(new_request)
                    assert result.generation == 2
                    assert_bitwise(result, new_expected)

            assert harness.server.cache.stats()["generation"] == 2

    def test_generation_must_advance(self, network_state):
        pool = InlinePool(network_state, generation=1)
        with pytest.raises(ValueError):
            pool.reload(network_state, generation=1)


class TestForkWorkerPool:
    def test_fork_pool_parity_reload_and_shm_hygiene(
        self, network_state, tiny_config, cases
    ):
        from repro.agents.policy import PPOWorkerAgent

        before_shm = set(glob.glob("/dev/shm/*serve*"))
        pool = ServeWorkerPool(network_state, num_workers=2, generation=1)
        try:
            assert pool.ping() == 2
            results = pool.infer([request for request, __ in cases])
            for result, (__, expected) in zip(results, cases):
                assert_bitwise(result, expected)

            # Zero-copy hot reload: every worker adopts the new slab.
            new_state = PPOWorkerAgent(tiny_config, seed=9).network.state_dict()
            pool.reload(new_state, generation=2)
            reloaded = pool.infer([cases[0][0]])[0]
            assert reloaded.generation == 2

            assert pool.slab_names()  # the slab existed while serving
        finally:
            pool.shutdown()
        # No leaked shared memory and no leaked worker processes.
        assert set(glob.glob("/dev/shm/*serve*")) == before_shm
        import os

        for pid in pool.pids():
            with pytest.raises(OSError):
                os.kill(pid, 0)

    def test_reload_under_concurrent_infer_load(
        self, network_state, tiny_config, cases
    ):
        """Reload reaches every worker exactly once despite infer traffic.

        The free queue is FIFO and shared with infer leases: a reload
        that leases-and-releases per command can draw a just-reloaded
        worker twice (its engine then refuses the repeated generation)
        while a busy worker is never reloaded.  Holding all leases for
        the sweep makes the generation flip atomic with respect to the
        queue — no infer error, and every worker answers the new tag.
        """
        import time

        from repro.agents.policy import PPOWorkerAgent

        new_state = PPOWorkerAgent(tiny_config, seed=9).network.state_dict()
        pool = ServeWorkerPool(network_state, num_workers=2, generation=1)
        stop = threading.Event()
        errors = []

        def hammer():
            request = cases[0][0]
            while not stop.is_set():
                try:
                    pool.infer([request])
                except Exception as error:  # pragma: no cover
                    errors.append(error)
                    return

        threads = [threading.Thread(target=hammer) for __ in range(4)]
        try:
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let infer traffic churn the free queue
            pool.reload(new_state, generation=2)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            assert pool.generation == 2
            # Sequential infers round-robin the FIFO free queue, so
            # 2 x size infers visit every worker: all must answer the
            # new generation (none left behind on the old weights).
            for __ in range(2 * pool.size):
                assert pool.infer([cases[0][0]])[0].generation == 2
        finally:
            stop.set()
            pool.shutdown()

    def test_duplicate_reload_command_is_idempotent(
        self, network_state, tiny_config
    ):
        """A retried reload command must be a worker-side no-op.

        If a reload sweep fails partway, the pool generation stays put
        and the caller retries with the same generation; workers that
        already loaded it must answer ok instead of crashing on the
        engine's generation-must-advance guard.
        """
        from repro.agents.policy import PPOWorkerAgent
        from repro.serve.pool import OP_RELOAD

        new_state = PPOWorkerAgent(tiny_config, seed=9).network.state_dict()
        pool = ServeWorkerPool(network_state, num_workers=1, generation=1)
        try:
            arrays = [
                np.ascontiguousarray(new_state[k], dtype=np.float64)
                for k in pool._keys
            ]
            pool._slab.write(arrays, seq=2)
            handle = pool._workers[0]
            assert handle.call(OP_RELOAD, 2) == 2
            assert handle.call(OP_RELOAD, 2) == 2  # repeat: no-op, no crash
        finally:
            pool.shutdown()


class TestRequestValidation:
    def test_negative_seed_is_a_request_error(self, cases):
        """Rejected at decode time (400), not mid-batch inside a worker.

        ``np.random.default_rng`` raises on negative seeds; unvalidated,
        that surfaces as an internal error that fails the whole chunk.
        """
        from repro.serve import InferRequest, RequestError

        request = cases[0][0]
        with pytest.raises(RequestError, match="seed must be >= 0"):
            InferRequest(
                state=request.state,
                move_mask=request.move_mask,
                worker_features=request.worker_features,
                greedy=False,
                seed=-1,
            ).validate()


class TestShutdownHygiene:
    def test_stop_is_clean_and_idempotent(self, network_state, cases):
        pool = InlinePool(network_state, generation=1)
        harness = ServerThread(pool)
        with harness:
            with ServeClient("127.0.0.1", harness.port) as client:
                client.infer_request(cases[0][0])
        # Context exit ran server.stop(); the TCP port must be closed.
        with pytest.raises(OSError):
            ServeClient("127.0.0.1", harness.port).infer_request(cases[0][0])
