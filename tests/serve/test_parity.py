"""Satellite 1: the batch-dimension parity gate.

The load-bearing numerical fact of the whole serving stack: a request's
answer must not depend on which micro-batch it was coalesced into.  The
engine stacks the conv trunk but row-loops every Linear layer (BLAS
matmul results vary with the row count M for small M), so a row of a
B=6 forward is bitwise-identical to the same request alone — with and
without forward-only execution plans.
"""

import numpy as np
import pytest

from repro.env import CrowdsensingEnv
from repro.serve import InferError, PolicyEngine

from .conftest import assert_bitwise, capture_cases


@pytest.fixture
def cases(tiny_config, agent):
    env = CrowdsensingEnv(tiny_config)
    # Greedy and seeded-sampled requests interleaved in one batch.
    return capture_cases(env, agent, 6, seeds=[None, 11, None, 7, 11, None])


class TestBatchParity:
    @pytest.mark.parametrize("use_plans", [False, True], ids=["tape", "plans"])
    def test_stacked_rows_match_offline_act_full(
        self, network_state, cases, use_plans
    ):
        engine = PolicyEngine(network_state, use_plans=use_plans)
        results = engine.infer_batch([request for request, __ in cases])
        assert len(results) == len(cases)
        for result, (__, expected) in zip(results, cases):
            assert_bitwise(result, expected)

    @pytest.mark.parametrize("use_plans", [False, True], ids=["tape", "plans"])
    def test_stacked_matches_per_row_singles(self, network_state, cases, use_plans):
        engine = PolicyEngine(network_state, use_plans=use_plans)
        stacked = engine.infer_batch([request for request, __ in cases])
        for (request, __), batched in zip(cases, stacked):
            [single] = engine.infer_batch([request])
            assert np.array_equal(single.moves, batched.moves)
            assert np.array_equal(single.charges, batched.charges)
            assert single.log_prob == batched.log_prob
            assert single.value == batched.value

    def test_plan_path_actually_replays(self, network_state, cases):
        engine = PolicyEngine(network_state, use_plans=True)
        batch = [request for request, __ in cases]
        engine.infer_batch(batch)  # build + validate
        engine.infer_batch(batch)  # replay
        stats = engine.stats()
        assert stats["plan_runs"] >= 1
        assert stats["validation_failed"] == 0

    def test_plan_and_tape_agree_bitwise(self, network_state, cases):
        planned = PolicyEngine(network_state, use_plans=True)
        taped = PolicyEngine(network_state, use_plans=False)
        batch = [request for request, __ in cases]
        planned.infer_batch(batch)  # warm the plan cache
        for a, b in zip(planned.infer_batch(batch), taped.infer_batch(batch)):
            assert np.array_equal(a.moves, b.moves)
            assert np.array_equal(a.charges, b.charges)
            assert a.log_prob == b.log_prob
            assert a.value == b.value

    def test_every_batch_size_matches_singles(self, network_state, cases):
        """Parity holds for every prefix length, not just one size."""
        engine = PolicyEngine(network_state, use_plans=False)
        batch = [request for request, __ in cases]
        singles = [engine.infer_batch([request])[0] for request in batch]
        for size in range(2, len(batch) + 1):
            for result, single in zip(engine.infer_batch(batch[:size]), singles):
                assert np.array_equal(result.moves, single.moves)
                assert result.log_prob == single.log_prob
                assert result.value == single.value


class TestGeometryGuards:
    def test_mismatched_state_shape_is_refused(self, network_state, cases):
        engine = PolicyEngine(network_state)
        request, __ = cases[0]
        engine.infer_batch([request])  # pins the geometry
        bad = InferRequestVariant(request, pad=1)
        [marker] = engine.infer_batch([bad])
        assert isinstance(marker, InferError)

    def test_bad_row_fails_alone_not_its_chunk_mates(self, network_state, cases):
        """One stray-geometry row must not poison a coalesced batch."""
        engine = PolicyEngine(network_state)
        requests = [request for request, __ in cases]
        bad = InferRequestVariant(requests[0], pad=1)
        mixed = [requests[0], bad, requests[1]]
        first, marker, second = engine.infer_batch(mixed)
        assert isinstance(marker, InferError)
        assert_bitwise(first, cases[0][1])
        assert_bitwise(second, cases[1][1])
        # The forwarded batch was the two good rows only.
        assert first.batch_size == 2

    def test_bad_first_row_does_not_block_network_build(self, network_state, cases):
        """A stray first row must not pin (or poison) lazy network build."""
        engine = PolicyEngine(network_state)
        request, expected = cases[0]
        bad = InferRequestVariant(request, pad=1)
        marker, good = engine.infer_batch([bad, request])
        assert isinstance(marker, InferError)
        assert_bitwise(good, expected)

    def test_empty_batch_is_a_noop(self, network_state):
        assert PolicyEngine(network_state).infer_batch([]) == []


def InferRequestVariant(request, pad):
    """Same request with a spatially padded state (wrong geometry)."""
    from repro.serve import InferRequest

    g = request.state.shape[1] + pad
    return InferRequest(
        state=np.zeros((request.state.shape[0], g, g)),
        move_mask=request.move_mask,
        worker_features=request.worker_features,
        greedy=True,
        seed=None,
    )
