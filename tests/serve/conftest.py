"""Shared fixtures for the serving tests.

Ground truth everywhere is offline
:meth:`~repro.agents.policy.PPOWorkerAgent.act_full` — the serving
contract is *bitwise* identity with it, so fixtures hand tests matched
(request, expected) pairs captured from a live environment rollout.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import pytest

from repro.agents.policy import PPOWorkerAgent
from repro.env import CrowdsensingEnv
from repro.serve import InferRequest


@pytest.fixture
def agent(tiny_config) -> PPOWorkerAgent:
    return PPOWorkerAgent(tiny_config, seed=5)


@pytest.fixture
def network_state(agent):
    return agent.network.state_dict()


class Expected:
    """Offline act_full output for one captured request."""

    def __init__(self, moves, charges, log_prob, value):
        self.moves = moves
        self.charges = charges
        self.log_prob = log_prob
        self.value = value


def capture_cases(
    env: CrowdsensingEnv,
    agent: PPOWorkerAgent,
    steps: int,
    seeds: Optional[List[Optional[int]]] = None,
) -> List[Tuple[InferRequest, Expected]]:
    """Roll ``env`` under the greedy policy, capturing one case per step.

    ``seeds[i]`` selects the sampling mode of case ``i``: ``None`` means
    greedy, an int means seeded sampling (the request carries the seed
    and the offline expectation uses a fresh ``default_rng(seed)``, the
    same construction the server mirrors).
    """
    seeds = seeds if seeds is not None else [None] * steps
    env.reset()
    cases: List[Tuple[InferRequest, Expected]] = []
    for seed in seeds[:steps]:
        state = env._state()
        move_mask = env.valid_moves()
        worker_features = agent.worker_features_of(env)
        greedy = seed is None
        rng = np.random.default_rng(0 if greedy else seed)
        action, log_prob, value, __, __ = agent.act_full(
            env, rng, greedy=greedy, state=state
        )
        request = InferRequest(
            state=np.ascontiguousarray(state, dtype=np.float64),
            move_mask=np.ascontiguousarray(move_mask, dtype=bool),
            worker_features=np.ascontiguousarray(worker_features, dtype=np.float64),
            greedy=greedy,
            seed=None if greedy else seed,
        ).validate()
        cases.append(
            (request, Expected(action.move, action.charge, log_prob, value))
        )
        # Advance along the *greedy* trajectory so every case sees a
        # distinct state regardless of its own sampling mode.
        greedy_action, __, __, __, __ = agent.act_full(
            env, np.random.default_rng(0), greedy=True, state=state
        )
        env.step(greedy_action)
    return cases


def assert_bitwise(result, expected) -> None:
    """Served result == offline act_full, bit for bit."""
    assert result.moves.dtype == expected.moves.dtype
    assert np.array_equal(result.moves, expected.moves)
    assert np.array_equal(result.charges, expected.charges)
    assert result.log_prob == expected.log_prob  # exact, not approx
    assert result.value == expected.value
