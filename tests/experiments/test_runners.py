"""End-to-end tests of the experiment runners at a miniature scale.

Each runner must produce the structure its figure/table needs; the actual
numbers are checked only for basic sanity (ranges, finiteness).
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    FEATURE_VARIANTS,
    REWARD_ARMS,
    figure_series,
    run_fig2c,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig9,
    run_sweep,
    run_table2,
    sweep_values,
)
from repro.experiments.report import (
    print_comparison_figure,
    print_fig2c,
    print_fig3,
    print_fig4,
    print_fig5,
    print_fig9,
    print_table2,
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"table2", "fig3", "fig4", "fig5", "fig9", "fig2c"}
        for metric_figure in ("6", "7", "8"):
            for panel in "abcd":
                expected.add(f"fig{metric_figure}{panel}")
        assert set(EXPERIMENTS) == expected

    def test_descriptions_non_empty(self):
        assert all(e.description for e in EXPERIMENTS.values())


class TestComparisonSweep:
    def test_sweep_structure(self, tiny_scale):
        result = run_sweep(
            "stations", scale=tiny_scale, methods=("greedy", "dnc"), seed=0
        )
        values = sweep_values("stations", tiny_scale)
        assert result["values"] == values
        for method in ("greedy", "dnc"):
            for metric in ("kappa", "xi", "rho"):
                series = result["results"][method][metric]
                assert len(series) == len(values)
                assert all(np.isfinite(v) for v in series)

    def test_unknown_sweep(self, tiny_scale):
        with pytest.raises(KeyError):
            sweep_values("speed", tiny_scale)

    def test_figure_series_selects_metric(self, tiny_scale):
        result = run_sweep("stations", scale=tiny_scale, methods=("greedy",))
        series = figure_series(result, "kappa")
        assert series[0][0] == "Greedy"
        assert series[0][2] == result["results"]["greedy"]["kappa"]
        with pytest.raises(ValueError):
            figure_series(result, "speed")

    def test_sweep_with_learned_method(self, tiny_scale):
        result = run_sweep("budget", scale=tiny_scale, methods=("cews",), seed=0)
        assert len(result["results"]["cews"]["rho"]) == len(
            sweep_values("budget", tiny_scale)
        )

    def test_print_comparison(self, tiny_scale):
        result = run_sweep("pois", scale=tiny_scale, methods=("greedy",))
        text = print_comparison_figure(result, "kappa")
        assert "Fig. 6" in text and "Greedy" in text


class TestTable2AndFig3:
    def test_table2_structure(self, tiny_scale):
        result = run_table2(scale=tiny_scale, seed=0)
        assert result["employees"] == [1, 2, 4]
        assert result["batches"] == [20, 40, 80]
        cell = result["cells"]["20"]["1"]
        assert {"kappa", "xi", "rho", "train_time"} <= set(cell)
        assert cell["train_time"] > 0

    def test_fig3_extracts_row(self, tiny_scale):
        fig3 = run_fig3(scale=tiny_scale, seed=0)
        assert fig3["employees"] == [1, 2, 4]
        assert len(fig3["train_time"]) == 3
        assert fig3["batch"] in (20, 40, 80)

    def test_fig3_bad_batch(self, tiny_scale):
        with pytest.raises(ValueError, match="batch"):
            run_fig3(scale=tiny_scale, seed=0, batch=999)

    def test_printers(self, tiny_scale):
        table = run_table2(scale=tiny_scale, seed=0)
        text = print_table2(table)
        assert "Table II" in text and "kappa" in text
        fig3 = run_fig3(scale=tiny_scale, seed=0)
        assert "Fig. 3" in print_fig3(fig3)


class TestFig4AndFig5:
    def test_fig4_all_variants(self, tiny_scale):
        result = run_fig4(scale=tiny_scale, seed=0)
        assert set(result["curves"]) == set(FEATURE_VARIANTS)
        for curves in result["curves"].values():
            assert len(curves["kappa"]) == tiny_scale.episodes
            assert len(curves["intrinsic"]) == tiny_scale.episodes
        assert "Fig. 4" in print_fig4(result)

    def test_fig5_all_arms(self, tiny_scale):
        result = run_fig5(scale=tiny_scale, seed=0)
        assert set(result["curves"]) == set(REWARD_ARMS)
        for curves in result["curves"].values():
            assert len(curves["rho"]) == tiny_scale.episodes
        assert "Fig. 5" in print_fig5(result)


class TestFig9AndFig2c:
    def test_fig9_structure(self, tiny_scale):
        result = run_fig9(scale=tiny_scale, seed=0)
        assert set(result["heatmaps"]) == {"DRL-CEWS", "DPPO"}
        assert len(result["checkpoints"]) == 5
        for grids in result["heatmaps"].values():
            assert len(grids) == 5
            grid = np.asarray(grids[0])
            assert grid.shape == (tiny_scale.grid, tiny_scale.grid)
            assert np.all(grid >= 0)
        assert "Fig. 9" in print_fig9(result)

    def test_fig2c_structure(self, tiny_scale):
        result = run_fig2c(scale=tiny_scale, seed=0)
        assert len(result["trajectories"]) == tiny_scale.num_workers
        horizon_plus_start = tiny_scale.horizon + 1
        assert all(
            len(path) == horizon_plus_start for path in result["trajectories"]
        )
        assert 0.0 <= result["kappa"] <= 1.0
        assert "Fig. 2(c)" in print_fig2c(result)
