"""Tests for the multi-seed significance helpers."""

import numpy as np
import pytest

from repro.experiments.significance import (
    run_multi_seed,
    summarize_multi_seed,
    win_matrix,
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))


@pytest.fixture
def result(tiny_scale):
    return run_multi_seed(
        methods=("greedy", "random"), scale=tiny_scale, seeds=(0, 1)
    )


class TestRunMultiSeed:
    def test_structure(self, result):
        assert result["seeds"] == [0, 1]
        assert set(result["per_seed"]) == {"greedy", "random"}
        for snapshots in result["per_seed"].values():
            assert len(snapshots) == 2
            assert all({"kappa", "xi", "rho"} <= set(s) for s in snapshots)

    def test_learned_method_supported(self, tiny_scale):
        result = run_multi_seed(methods=("dppo",), scale=tiny_scale, seeds=(0,))
        assert len(result["per_seed"]["dppo"]) == 1


class TestSummaries:
    def test_summary_means_and_stds(self, result):
        summary = summarize_multi_seed(result)
        for method, stats in summary.items():
            values = [s["kappa"] for s in result["per_seed"][method]]
            assert stats["kappa"]["mean"] == pytest.approx(np.mean(values))
            assert stats["kappa"]["std"] == pytest.approx(np.std(values))

    def test_win_matrix_complement(self, result):
        matrix = win_matrix(result, metric="rho")
        greedy_vs_random = matrix["greedy"]["random"]
        random_vs_greedy = matrix["random"]["greedy"]
        # Wins are complementary unless there are exact ties.
        assert greedy_vs_random + random_vs_greedy <= 1.0 + 1e-12

    def test_win_matrix_xi_inverted(self, result):
        """For ξ, lower is better, so the win condition flips."""
        matrix_xi = win_matrix(result, metric="xi")
        per_seed = result["per_seed"]
        expected = sum(
            a["xi"] < b["xi"]
            for a, b in zip(per_seed["greedy"], per_seed["random"])
        ) / 2
        assert matrix_xi["greedy"]["random"] == pytest.approx(expected)

    def test_bad_metric(self, result):
        with pytest.raises(ValueError):
            win_matrix(result, metric="speed")
