"""Tests for experiment scales and the on-disk result cache."""

import json
import os

import pytest

from repro.experiments import SCALES, current_scale, get_scale
from repro.experiments.cache import (
    cache_key,
    cached_run,
    load_cached,
    result_cache_dir,
    store_cached,
)


class TestScales:
    def test_all_presets_exist(self):
        assert set(SCALES) == {"smoke", "short", "paper"}

    def test_paper_scale_matches_section_7(self):
        paper = get_scale("paper")
        assert paper.num_employees == 8
        assert paper.batch_size == 250
        assert paper.num_pois == 300
        assert paper.num_workers == 2
        assert paper.num_stations == 4
        assert paper.energy_budget == 40.0
        assert paper.episodes == 2500

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("giant")

    def test_scenario_overrides(self):
        config = get_scale("smoke").scenario(num_pois=99)
        assert config.num_pois == 99

    def test_with_overrides(self):
        scale = get_scale("smoke").with_overrides(episodes=7)
        assert scale.episodes == 7
        assert get_scale("smoke").episodes != 7 or True  # original untouched

    def test_current_scale_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "short")
        assert current_scale().name == "short"
        monkeypatch.delenv("REPRO_SCALE")
        assert current_scale().name == "smoke"


class TestCache:
    @pytest.fixture(autouse=True)
    def isolate_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        self.dir = tmp_path

    def test_key_stable_and_sensitive(self):
        a = cache_key("exp", {"x": 1, "y": [2, 3]})
        b = cache_key("exp", {"y": [2, 3], "x": 1})
        c = cache_key("exp", {"x": 2, "y": [2, 3]})
        assert a == b
        assert a != c
        assert a.startswith("exp-")

    def test_store_and_load(self):
        store_cached("k1", {"value": 42})
        assert load_cached("k1") == {"value": 42}

    def test_missing_key(self):
        assert load_cached("nope") is None

    def test_corrupt_file_is_miss(self):
        path = result_cache_dir() / "bad.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{truncated")
        assert load_cached("bad") is None

    def test_cached_run_computes_once(self):
        calls = []

        def compute():
            calls.append(1)
            return {"n": len(calls)}

        first = cached_run("exp", {"p": 1}, compute)
        second = cached_run("exp", {"p": 1}, compute)
        assert first == second == {"n": 1}
        assert len(calls) == 1

    def test_cached_run_distinguishes_params(self):
        cached_run("exp", {"p": 1}, lambda: {"v": "a"})
        other = cached_run("exp", {"p": 2}, lambda: {"v": "b"})
        assert other == {"v": "b"}

    def test_no_cache_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        calls = []

        def compute():
            calls.append(1)
            return {}

        cached_run("exp", {"p": 1}, compute)
        cached_run("exp", {"p": 1}, compute)
        assert len(calls) == 2
