"""Tests for the artifact report aggregator."""

from pathlib import Path

import pytest

from repro.experiments.export import ARTIFACT_ORDER, collect_artifacts, write_report


@pytest.fixture
def artifact_dir(tmp_path):
    (tmp_path / "fig3.txt").write_text("fig3 body")
    (tmp_path / "table2.txt").write_text("table2 body")
    (tmp_path / "unrelated.log").write_text("noise")
    return tmp_path


def test_collect_in_paper_order(artifact_dir):
    found = collect_artifacts(artifact_dir)
    assert [p.stem for p in found] == ["table2", "fig3"]


def test_write_report_contents(artifact_dir):
    output = write_report(artifact_dir)
    text = output.read_text()
    assert output.name == "REPORT.md"
    assert "table2 body" in text and "fig3 body" in text
    assert "Table II" in text and "Fig. 3" in text
    assert "unrelated" not in text
    # Paper order: table2 before fig3.
    assert text.index("table2 body") < text.index("fig3 body")


def test_empty_directory(tmp_path):
    output = write_report(tmp_path)
    assert "no artifacts found" in output.read_text()


def test_every_registered_experiment_has_an_order_slot():
    from repro.experiments import EXPERIMENTS

    assert set(EXPERIMENTS) <= set(ARTIFACT_ORDER)
