"""Tests for the ASCII line chart and sparkline renderers."""

import numpy as np
import pytest

from repro.utils import ascii_line_chart, sparkline
from repro.utils.ascii_plot import _downsample


class TestDownsample:
    def test_short_series_unchanged(self):
        ys = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(_downsample(ys, 10), ys)

    def test_long_series_pooled(self):
        ys = np.arange(100.0)
        out = _downsample(ys, 10)
        assert len(out) == 10
        assert out[0] == pytest.approx(np.arange(10).mean())

    def test_mean_preserved(self):
        ys = np.random.default_rng(0).normal(size=100)
        out = _downsample(ys, 10)
        assert out.mean() == pytest.approx(ys.mean(), abs=1e-9)


class TestLineChart:
    def test_basic_render(self):
        chart = ascii_line_chart(
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
            width=20,
            height=5,
            title="T",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "o up" in chart and "x down" in chart
        # Rising series' glyph appears in the top row at the right edge.
        assert "o" in lines[1]

    def test_series_lengths_can_differ(self):
        chart = ascii_line_chart(
            {"short": [1.0, 2.0], "long": list(range(100))}, width=30, height=4
        )
        assert "short" in chart and "long" in chart

    def test_constant_series_handled(self):
        chart = ascii_line_chart({"flat": [5.0] * 10}, width=20, height=4)
        assert "flat" in chart

    def test_axis_labels_show_range(self):
        chart = ascii_line_chart({"s": [0.0, 10.0]}, width=10, height=4)
        assert "10" in chart and "0" in chart

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ascii_line_chart({})
        with pytest.raises(ValueError, match="small"):
            ascii_line_chart({"s": [1.0]}, width=2, height=2)
        with pytest.raises(ValueError, match="empty"):
            ascii_line_chart({"s": []})


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant(self):
        assert set(sparkline([2.0, 2.0, 2.0])) == {"▁"}

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampled_width(self):
        assert len(sparkline(list(range(200)), width=40)) == 40
