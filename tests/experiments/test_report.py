"""Tests for the report printers' formatting helpers."""

import numpy as np
import pytest

from repro.experiments.report import _curve_summary


class TestCurveSummary:
    def test_short_curve_passthrough(self):
        xs, ys = _curve_summary([1.0, 2.0, 3.0], buckets=5)
        assert xs == [0, 1, 2]
        assert ys == [1.0, 2.0, 3.0]

    def test_long_curve_bucketed(self):
        curve = list(range(100))
        xs, ys = _curve_summary(curve, buckets=5)
        assert len(xs) == len(ys) == 5
        assert xs[-1] == 100
        # Bucket means of an arithmetic sequence are increasing.
        assert ys == sorted(ys)
        assert ys[0] == pytest.approx(np.mean(range(20)))

    def test_uneven_division(self):
        curve = list(range(7))
        xs, ys = _curve_summary(curve, buckets=3)
        assert len(ys) == 3
        # All points are covered exactly once.
        total = sum(
            y * (b - a)
            for y, a, b in zip(ys, [0] + xs[:-1], xs)
        )
        assert total == pytest.approx(sum(curve))
