"""Tests for heat map and trajectory visualization helpers."""

import numpy as np
import pytest

from repro.curiosity import SpatialCuriosity
from repro.env import generate_scenario, smoke_config
from repro.experiments import (
    curiosity_heatmap,
    render_heatmap,
    render_trajectories,
    trajectory_grid,
)
from repro.utils import ascii_heatmap, format_series, format_table


@pytest.fixture
def scenario():
    return generate_scenario(smoke_config(seed=2))


class TestCuriosityHeatmap:
    def test_only_visited_cells_nonzero(self, scenario, rng):
        curiosity = SpatialCuriosity(scenario.space, num_workers=1)
        positions = np.array([[[1.5, 1.5]], [[2.5, 1.5]]])
        moves = np.array([[3], [3]])
        next_positions = np.array([[[2.5, 1.5]], [[3.5, 1.5]]])
        grid = curiosity_heatmap(
            curiosity, scenario.space, positions, moves, next_positions
        )
        assert grid.shape == (scenario.space.grid,) * 2
        nonzero = np.nonzero(grid)
        visited = {(1, 1), (1, 2)}  # (row, col) of the two start cells
        assert set(zip(*nonzero)) == visited

    def test_repeat_visits_averaged(self, scenario):
        curiosity = SpatialCuriosity(scenario.space, num_workers=1)
        positions = np.array([[[1.5, 1.5]], [[1.5, 1.5]]])
        moves = np.array([[3], [5]])
        next_positions = np.array([[[2.5, 1.5]], [[1.5, 0.5]]])
        grid = curiosity_heatmap(
            curiosity, scenario.space, positions, moves, next_positions
        )
        batch_values = curiosity.raw_errors(
            __import__("repro.curiosity", fromlist=["TransitionBatch"]).TransitionBatch(
                positions=positions, next_positions=next_positions, moves=moves
            )
        )
        assert grid[1, 1] == pytest.approx(batch_values.mean())


class TestTrajectoryRendering:
    def test_trajectory_grid_codes(self, scenario):
        path = np.array([[0.5, 0.5], [1.5, 0.5]])
        grid = trajectory_grid(scenario, [path])
        assert grid[0, 0] == 1 and grid[0, 1] == 1
        assert np.any(grid == -1)  # obstacles present
        assert np.any(grid == -2)  # stations present

    def test_render_trajectories_glyphs(self, scenario):
        path = np.array([[0.5, 0.5]])
        text = render_trajectories(scenario, [path])
        lines = text.splitlines()
        assert len(lines) == scenario.space.grid
        assert "1" in text and "#" in text and "C" in text

    def test_two_workers_distinct_digits(self, scenario):
        a = np.array([[0.5, 0.5]])
        b = np.array([[4.5, 4.5]])
        text = render_trajectories(scenario, [a, b])
        assert "1" in text and "2" in text


class TestAsciiHelpers:
    def test_ascii_heatmap_shading(self):
        grid = np.array([[0.0, 1.0], [0.5, 0.0]])
        text = ascii_heatmap(grid)
        lines = text.splitlines()
        assert len(lines) == 2
        # Brightest cell uses the densest glyph.
        assert "@" in lines[1]  # row 0 printed last (bottom)

    def test_ascii_heatmap_constant_grid(self):
        text = ascii_heatmap(np.zeros((2, 2)))
        assert set("".join(text.splitlines())) == {" "}

    def test_ascii_heatmap_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(4))

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1.5, "x"], [2.25, "yy"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.500" in text and "2.250" in text

    def test_format_series(self):
        text = format_series("m", [1, 2], [0.1, 0.25])
        assert text == "m: (1, 0.100) (2, 0.250)"


class TestPolicyQuiver:
    def test_quiver_renders_all_cells(self, scenario):
        from repro.agents import GreedyAgent
        from repro.env import CrowdsensingEnv
        from repro.experiments import policy_quiver

        env = CrowdsensingEnv(scenario.config, scenario=scenario)
        env.reset()
        text = policy_quiver(GreedyAgent(charge_threshold=0.0), env)
        lines = text.splitlines()
        assert len(lines) == scenario.space.grid
        glyphs = set("".join(lines))
        assert "#" in glyphs  # obstacles drawn
        assert glyphs & set("^v<>o/\\")  # moves drawn

    def test_worker_position_restored(self, scenario):
        from repro.agents import RandomAgent
        from repro.env import CrowdsensingEnv
        from repro.experiments import policy_quiver

        env = CrowdsensingEnv(scenario.config, scenario=scenario)
        env.reset()
        before = env.workers.positions.copy()
        policy_quiver(RandomAgent(), env)
        import numpy as np

        np.testing.assert_array_equal(env.workers.positions, before)
