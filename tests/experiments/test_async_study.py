"""Tests for the sync-vs-async study runner."""

import numpy as np
import pytest

from repro.experiments.async_study import run_async_study


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))


def test_three_arms_reported(tiny_scale):
    result = run_async_study(scale=tiny_scale, seed=0)
    assert set(result["arms"]) == {"sync", "async + vtrace", "async uncorrected"}
    for arm, values in result["arms"].items():
        assert {"kappa", "rho", "value_loss_tail"} <= set(values)
        assert np.isfinite(values["kappa"]), arm
        assert values["value_loss_tail"] >= 0.0


def test_cached_between_calls(tiny_scale):
    first = run_async_study(scale=tiny_scale, seed=0)
    second = run_async_study(scale=tiny_scale, seed=0)
    assert first == second
