"""Tests for the experiments CLI, training helpers and ablation runners."""

import numpy as np
import pytest

from repro.experiments.__main__ import main as cli_main
from repro.experiments.ablations import (
    run_eta_ablation,
    run_layernorm_ablation,
    run_returns_ablation,
)
from repro.experiments.training import (
    ALL_METHODS,
    LEARNED_METHODS,
    SCRIPTED_METHODS,
    evaluate_method,
    evaluate_scripted,
    make_ppo_config,
    make_train_config,
    method_display_name,
    train_method,
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))


class TestTrainingHelpers:
    def test_method_lists_consistent(self):
        assert set(LEARNED_METHODS) == {"cews", "dppo", "edics"}
        assert set(ALL_METHODS) == set(LEARNED_METHODS) | {"dnc", "greedy"}

    def test_display_names(self):
        assert method_display_name("cews") == "DRL-CEWS"
        assert method_display_name("dnc") == "D&C"
        assert method_display_name("unknown") == "unknown"

    def test_make_ppo_config_from_scale(self, tiny_scale):
        ppo = make_ppo_config(tiny_scale)
        assert ppo.batch_size == tiny_scale.batch_size
        assert ppo.learning_rate == tiny_scale.learning_rate
        assert ppo.effective_curiosity_lr == 5 * tiny_scale.learning_rate

    def test_make_ppo_config_batch_override(self, tiny_scale):
        assert make_ppo_config(tiny_scale, batch_size=7).batch_size == 7

    def test_make_train_config(self, tiny_scale):
        train = make_train_config(tiny_scale, num_employees=3, episodes=9, seed=4)
        assert train.num_employees == 3
        assert train.episodes == 9
        assert train.seed == 4
        assert train.k_updates == tiny_scale.k_updates

    def test_train_method_returns_agent_and_history(self, tiny_scale):
        config = tiny_scale.scenario()
        agent, history = train_method("cews", config, tiny_scale, seed=0)
        assert agent.name == "DRL-CEWS"
        assert len(history.logs) == tiny_scale.episodes

    def test_evaluate_method_learned(self, tiny_scale):
        config = tiny_scale.scenario()
        metrics = evaluate_method("dppo", config, tiny_scale, seed=0)
        assert set(metrics) == {"kappa", "xi", "rho"}

    def test_evaluate_method_scripted(self, tiny_scale):
        config = tiny_scale.scenario()
        metrics = evaluate_method("greedy", config, tiny_scale, seed=0)
        assert 0.0 <= metrics["kappa"] <= 1.0

    def test_evaluate_method_unknown(self, tiny_scale):
        with pytest.raises(ValueError, match="unknown method"):
            evaluate_method("alphazero", tiny_scale.scenario(), tiny_scale)

    def test_evaluate_scripted_unknown(self, tiny_scale):
        with pytest.raises(ValueError, match="unknown scripted"):
            evaluate_scripted("dijkstra", tiny_scale.scenario(), tiny_scale)

    def test_evaluate_scripted_random(self, tiny_scale):
        metrics = evaluate_scripted("random", tiny_scale.scenario(), tiny_scale)
        assert np.isfinite(metrics["rho"])


class TestAblationRunners:
    def test_eta_ablation(self, tiny_scale):
        result = run_eta_ablation(scale=tiny_scale, seed=0)
        assert set(result["arms"]) == {"0.0", "0.1", "0.3", "1.0"}
        assert result["arms"]["0.0"]["intrinsic"] == 0.0

    def test_returns_ablation(self, tiny_scale):
        result = run_returns_ablation(scale=tiny_scale, seed=0)
        assert set(result["arms"]) == {"gae", "monte-carlo"}

    def test_layernorm_ablation(self, tiny_scale):
        result = run_layernorm_ablation(scale=tiny_scale, seed=0)
        assert set(result["arms"]) == {"layernorm", "no-layernorm"}


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig9" in out

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "fig99"])

    def test_run_smoke_experiment(self, capsys, monkeypatch, tmp_path, tiny_scale):
        # Patch the registry's scale lookup to the tiny test scale so the
        # CLI path runs in seconds.
        import repro.experiments.__main__ as cli

        monkeypatch.setattr(cli, "get_scale", lambda name: tiny_scale)
        assert cli_main(["run", "fig2c", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2(c)" in out
