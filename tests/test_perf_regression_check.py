"""Unit tests for benchmarks/check_perf_regression.py (the CI perf gate)."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "check_perf_regression.py"
BASELINE = REPO_ROOT / "benchmarks" / "BENCH_4.json"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_perf_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_baseline(path: Path, means: dict) -> Path:
    payload = {
        "schema": 1,
        "benchmarks": {name: {"mean_s": mean} for name, mean in means.items()},
    }
    path.write_text(json.dumps(payload))
    return path


def write_current(path: Path, means: dict) -> Path:
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}} for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


def test_within_threshold_passes(tmp_path, checker, capsys):
    base = write_baseline(tmp_path / "base.json", {"test_a": 1e-3, "test_b": 2e-3})
    cur = write_current(tmp_path / "cur.json", {"test_a": 1.4e-3, "test_b": 2e-3})
    assert checker.main([str(cur), "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "2 benchmark(s) within threshold" in out


def test_regression_fails(tmp_path, checker, capsys):
    base = write_baseline(tmp_path / "base.json", {"test_a": 1e-3})
    cur = write_current(tmp_path / "cur.json", {"test_a": 1.6e-3})
    assert checker.main([str(cur), "--baseline", str(base)]) == 1
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out
    assert "test_a" in captured.err


def test_threshold_flag_loosens_gate(tmp_path, checker):
    base = write_baseline(tmp_path / "base.json", {"test_a": 1e-3})
    cur = write_current(tmp_path / "cur.json", {"test_a": 1.6e-3})
    assert checker.main([str(cur), "--baseline", str(base), "--threshold", "2.0"]) == 0


def test_unshared_benchmarks_are_informational(tmp_path, checker, capsys):
    base = write_baseline(tmp_path / "base.json", {"test_a": 1e-3, "test_gone": 1e-3})
    cur = write_current(tmp_path / "cur.json", {"test_a": 1e-3, "test_new": 9.0})
    assert checker.main([str(cur), "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "test_new" in out and "new (no baseline)" in out
    assert "test_gone" in out and "not measured" in out


def test_all_new_benchmarks_pass(tmp_path, checker, capsys):
    """A run that only contains benchmarks absent from the baseline —
    the first run of a freshly added bench file — must not fail."""
    base = write_baseline(tmp_path / "base.json", {"test_a": 1e-3})
    cur = write_current(tmp_path / "cur.json", {"test_b": 1e-3, "test_c": 2e-3})
    assert checker.main([str(cur), "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "new (no baseline)" in out
    assert "--update" in out


def test_empty_run_is_an_error(tmp_path, checker, capsys):
    base = write_baseline(tmp_path / "base.json", {"test_a": 1e-3})
    cur = write_current(tmp_path / "cur.json", {})
    assert checker.main([str(cur), "--baseline", str(base)]) == 1
    assert "no benchmarks" in capsys.readouterr().err


def test_regression_message_points_at_update(tmp_path, checker, capsys):
    base = write_baseline(tmp_path / "base.json", {"test_a": 1e-3})
    cur = write_current(tmp_path / "cur.json", {"test_a": 1.6e-3})
    assert checker.main([str(cur), "--baseline", str(base)]) == 1
    assert "--update" in capsys.readouterr().err


def test_update_refreshes_and_adds_entries(tmp_path, checker):
    base = write_baseline(tmp_path / "base.json", {"test_a": 1e-3})
    # Give the existing entry an extra field that --update must preserve.
    payload = json.loads(base.read_text())
    payload["benchmarks"]["test_a"]["rounds"] = 100
    base.write_text(json.dumps(payload))
    cur = write_current(tmp_path / "cur.json", {"test_a": 2e-3, "test_new": 5e-3})
    assert checker.main([str(cur), "--baseline", str(base), "--update"]) == 0
    updated = json.loads(base.read_text())["benchmarks"]
    assert updated["test_a"]["mean_s"] == 2e-3
    assert updated["test_a"]["rounds"] == 100
    assert updated["test_new"] == {"mean_s": 5e-3}
    # The refreshed baseline now gates the same run cleanly.
    assert checker.main([str(cur), "--baseline", str(base)]) == 0


def test_committed_baseline_parses_and_covers_the_micro_suite(checker):
    benches = checker.load_baseline(BASELINE)
    expected = {
        "test_conv2d_forward",
        "test_conv2d_forward_cached_plan",
        "test_conv2d_backward",
        "test_env_step",
        "test_env_step_active_sensing",
        "test_policy_forward",
        "test_policy_forward_no_grad",
        "test_ppo_minibatch_loss_and_backward",
        "test_curiosity_loss",
    }
    assert expected <= set(benches)
    for name in expected:
        assert benches[name]["mean_s"] > 0


BENCH_SERVE = REPO_ROOT / "benchmarks" / "BENCH_10.json"


def write_serve_dump(
    path: Path,
    batched_rps: float,
    unbatched_rps: float,
    plan_s: float = 1e-3,
    tape_s: float = 2e-3,
) -> Path:
    payload = {
        "schema": 1,
        "machine": {"cores": 1},
        "micro": {
            "plan_forward": {"mean_s": plan_s},
            "tape_forward": {"mean_s": tape_s},
        },
        "serve": {
            "sweep": {
                "8": {
                    "concurrency": 8,
                    "rps": batched_rps,
                    "p50_ms": 1.0,
                    "p99_ms": 2.0,
                }
            },
            "batched": {
                "concurrency": 8,
                "rps": batched_rps,
                "p50_ms": 1.0,
                "p99_ms": 2.0,
            },
            "unbatched": {
                "concurrency": 8,
                "rps": unbatched_rps,
                "p50_ms": 4.0,
                "p99_ms": 8.0,
            },
        },
        "cache": {"speedup_cache_on": 5.0},
        "worker_scaling": {"inline": {"mean_s": 1e-3}},
    }
    path.write_text(json.dumps(payload))
    return path


class TestServeGate:
    def test_contracts_holding_pass(self, tmp_path, checker, capsys):
        dump = write_serve_dump(tmp_path / "serve.json", 2000.0, 900.0)
        assert checker.main([str(dump), "--serve"]) == 0
        out = capsys.readouterr().out
        assert "2x contract holds" in out

    def test_threshold_allows_noise_below_2x(self, tmp_path, checker):
        # x1.9 batched/unbatched: within the 1.5x noise allowance of 2x.
        dump = write_serve_dump(tmp_path / "serve.json", 1900.0, 1000.0)
        assert checker.main([str(dump), "--serve"]) == 0

    def test_batching_rot_fails(self, tmp_path, checker, capsys):
        dump = write_serve_dump(tmp_path / "serve.json", 1000.0, 1000.0)
        assert checker.main([str(dump), "--serve"]) == 1
        assert "below the 2x contract" in capsys.readouterr().err

    def test_plan_slower_than_tape_fails(self, tmp_path, checker, capsys):
        dump = write_serve_dump(
            tmp_path / "serve.json", 2500.0, 1000.0, plan_s=4e-3, tape_s=2e-3
        )
        assert checker.main([str(dump), "--serve"]) == 1
        assert "forward-only fast path" in capsys.readouterr().err

    def test_wrong_dump_shape_is_an_error(self, tmp_path, checker):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"benchmarks": []}))
        with pytest.raises(SystemExit):
            checker.main([str(bad), "--serve"])

    def test_committed_serve_baseline_holds_its_own_contracts(self, checker):
        """BENCH_10.json must itself pass the gate it documents."""
        assert checker.main([str(BENCH_SERVE), "--serve"]) == 0
