"""Tests for the top-level ``python -m repro`` CLI."""

import json

import numpy as np
import pytest

from repro.__main__ import main


class TestTrainCommand:
    def test_train_writes_artifacts(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        checkpoint = tmp_path / "ckpt.npz"
        history = tmp_path / "hist.csv"
        code = main(
            [
                "train",
                "--method",
                "dppo",
                "--scale",
                "smoke",
                "--episodes",
                "2",
                "--checkpoint",
                str(checkpoint),
                "--history",
                str(history),
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert checkpoint.exists()
        assert history.exists()
        out = capsys.readouterr().out
        assert "tail kappa=" in out

    def test_evaluate_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt.npz"
        main(
            [
                "train", "--method", "cews", "--scale", "smoke",
                "--episodes", "1", "--checkpoint", str(checkpoint),
            ]
        )
        code = main(
            [
                "evaluate", "--method", "cews", "--scale", "smoke",
                "--checkpoint", str(checkpoint), "--episodes", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kappa=" in out

    def test_train_checkpoint_dir_resumes(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        args = [
            "train", "--method", "dppo", "--scale", "smoke",
            "--episodes", "2", "--checkpoint-dir", str(ckpt_dir),
            "--save-every", "1", "--keep-last", "2", "--seed", "1",
        ]
        assert main(args) == 0
        assert (ckpt_dir / "latest").exists()
        assert any(ckpt_dir.glob("ckpt-*.npz"))
        # Re-running with the same target is a checkpoint-covered no-op.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "already cover" in out

    def test_train_fault_tolerance_flags_accepted(self, tmp_path):
        code = main(
            [
                "train", "--method", "dppo", "--scale", "smoke",
                "--episodes", "1", "--mode", "thread",
                "--quorum-fraction", "0.5", "--employee-timeout", "30",
                "--max-retries", "2", "--quarantine-max-norm", "1e9",
            ]
        )
        assert code == 0

    def test_report_command(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        (tmp_path / "fig3.txt").write_text("body")
        assert main(["report"]) == 0
        assert (tmp_path / "REPORT.md").exists()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["deploy"])
        assert excinfo.value.code == 2

    def test_help_lists_all_subcommands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in (
            "train", "worker", "evaluate", "report", "lint", "trace", "profile",
        ):
            assert command in out


class TestSocketTransportCli:
    def test_train_over_loopback_socket(self, tmp_path, capsys):
        checkpoint = tmp_path / "socket.npz"
        code = main(
            [
                "train", "--method", "cews", "--scale", "smoke",
                "--episodes", "1", "--backend", "socket",
                "--listen", "127.0.0.1:0", "--checkpoint", str(checkpoint),
            ]
        )
        assert code == 0
        assert checkpoint.exists()
        out = capsys.readouterr().out
        assert "transport: listening on 127.0.0.1:" in out
        assert "token" in out

    def test_remote_workers_prints_launch_hints(self, capsys):
        code = main(
            [
                "train", "--method", "cews", "--scale", "smoke",
                "--episodes", "1", "--backend", "socket",
                "--remote-workers", "0", "--wire-dtype", "float64",
            ]
        )
        assert code == 0

    def test_malformed_listen_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "train", "--method", "cews", "--scale", "smoke",
                    "--episodes", "1", "--backend", "socket",
                    "--listen", "no-port-here",
                ]
            )

    def test_worker_requires_connect_token_index(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker"])
        assert excinfo.value.code == 2

    def test_worker_unreachable_chief_fails_cleanly(self, capsys):
        code = main(
            [
                "worker", "--connect", "127.0.0.1:1", "--token", "t",
                "--index", "0", "--connect-timeout", "0.2",
            ]
        )
        assert code == 1
        assert "unreachable" in capsys.readouterr().out


class TestObservabilityCommands:
    def test_train_with_trace_dir_and_summary(self, tmp_path, capsys):
        trace_dir = tmp_path / "trace"
        assert (
            main(
                [
                    "train", "--method", "dppo", "--scale", "smoke",
                    "--episodes", "1", "--seed", "1",
                    "--trace-dir", str(trace_dir),
                ]
            )
            == 0
        )
        assert (trace_dir / "trace.jsonl").exists()
        capsys.readouterr()
        assert main(["trace", "summary", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "phase.explore" in out
        assert "employee.explore" in out

    def test_trace_cat_emits_json_lines(self, tmp_path, capsys):
        trace_dir = tmp_path / "trace"
        main(
            [
                "train", "--method", "dppo", "--scale", "smoke",
                "--episodes", "1", "--seed", "1", "--trace-dir", str(trace_dir),
            ]
        )
        capsys.readouterr()
        assert main(["trace", "cat", str(trace_dir)]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["schema"] == 1

    def test_trace_missing_path_fails_gracefully(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path / "nope")]) == 1
        assert "no trace file" in capsys.readouterr().out

    def test_profile_flag_on_train(self, capsys):
        assert (
            main(
                [
                    "train", "--method", "dppo", "--scale", "smoke",
                    "--episodes", "1", "--seed", "1", "--profile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "self %" in out  # hot-spot table header

    def test_profile_subcommand(self, capsys):
        assert main(["profile", "--method", "dppo", "--episodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "profiler:" in out
        assert "backward" in out

    def test_dashboard_flag(self, capsys):
        assert (
            main(
                [
                    "train", "--method", "dppo", "--scale", "smoke",
                    "--episodes", "2", "--seed", "1", "--dashboard",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "episode" in out
