"""Tests for the agent/trainer factories."""

import numpy as np
import pytest

from repro.agents import CEWSAgent, DPPOAgent, EdicsAgent, PPOConfig
from repro.curiosity import ICMCuriosity, NullCuriosity, RNDCuriosity, SpatialCuriosity
from repro.distributed import build_agent, build_trainer, TrainConfig
from repro.env import smoke_config


@pytest.fixture
def config():
    return smoke_config(seed=5, horizon=8, num_pois=12)


class TestBuildAgent:
    def test_method_dispatch(self, config):
        assert isinstance(build_agent("cews", config), CEWSAgent)
        assert isinstance(build_agent("dppo", config), DPPOAgent)
        assert isinstance(build_agent("edics", config), EdicsAgent)

    def test_unknown_method(self, config):
        with pytest.raises(ValueError, match="method"):
            build_agent("sarsa", config)

    @pytest.mark.parametrize(
        "curiosity,expected",
        [
            ("none", NullCuriosity),
            ("spatial", SpatialCuriosity),
            ("icm", ICMCuriosity),
            ("rnd", RNDCuriosity),
        ],
    )
    def test_curiosity_overrides(self, config, curiosity, expected):
        agent = build_agent("cews", config, curiosity=curiosity)
        assert isinstance(agent.curiosity, expected)

    def test_unknown_curiosity(self, config):
        with pytest.raises(ValueError, match="curiosity"):
            build_agent("cews", config, curiosity="novelty")

    def test_reward_override(self, config):
        agent = build_agent("dppo", config, reward="sparse")
        assert agent.reward_mode == "sparse"

    def test_bad_reward_override(self, config):
        with pytest.raises(ValueError, match="reward"):
            build_agent("dppo", config, reward="shaped")

    def test_spatial_variants(self, config):
        agent = build_agent(
            "cews", config, feature="direct", structure="independent"
        )
        assert agent.curiosity.feature_kind == "direct"
        assert agent.curiosity.structure == "independent"

    def test_frozen_feature_shared_across_seeds(self, config):
        """Agents with different seeds share one frozen embedding table."""
        a = build_agent("cews", config, seed=1)
        b = build_agent("cews", config, seed=2)
        np.testing.assert_array_equal(
            a.curiosity._feature._table.weight.data,
            b.curiosity._feature._table.weight.data,
        )

    def test_rnd_target_shared_across_seeds(self, config):
        a = build_agent("cews", config, curiosity="rnd", seed=1)
        b = build_agent("cews", config, curiosity="rnd", seed=2)
        for (ka, va), (kb, vb) in zip(
            a.curiosity.target.state_dict().items(),
            b.curiosity.target.state_dict().items(),
        ):
            np.testing.assert_array_equal(va, vb)


class TestBuildTrainer:
    def test_trainer_wiring(self, config):
        trainer = build_trainer(
            "cews",
            config,
            train=TrainConfig(num_employees=2, episodes=1, k_updates=1),
            ppo=PPOConfig(batch_size=8, epochs=1),
        )
        assert len(trainer.employees) == 2
        assert trainer.eval_env is not None
        # Employee envs share the global scenario (same map).
        np.testing.assert_array_equal(
            trainer.employees[0].env.scenario.pois.positions,
            trainer.global_agent.scenario.pois.positions,
        )
        trainer.close()

    def test_env_reward_mode_matches_method(self, config):
        cews = build_trainer(
            "cews", config, train=TrainConfig(num_employees=1, episodes=1)
        )
        assert cews.employees[0].env.reward_mode == "sparse"
        cews.close()
        dppo = build_trainer(
            "dppo", config, train=TrainConfig(num_employees=1, episodes=1)
        )
        assert dppo.employees[0].env.reward_mode == "dense"
        dppo.close()
