"""Tests for trainer checkpoint save/resume and crash safety."""

import os

import numpy as np
import pytest

from repro.agents import PPOConfig
from repro.distributed import (
    CheckpointCorruptError,
    CheckpointFault,
    CheckpointManager,
    FaultInjector,
    FaultPlan,
    InjectedCheckpointInterrupt,
    TrainConfig,
    build_trainer,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from repro.env import smoke_config
from repro.experiments.training import resume_or_start


@pytest.fixture
def config():
    return smoke_config(seed=5, horizon=8, num_pois=12)


@pytest.fixture
def ppo():
    return PPOConfig(batch_size=8, epochs=1, learning_rate=1e-3)


def make_trainer(config, ppo, method="cews", seed=0):
    return build_trainer(
        method,
        config,
        train=TrainConfig(num_employees=2, episodes=2, k_updates=1, seed=seed),
        ppo=ppo,
    )


class TestCheckpointRoundTrip:
    def test_agent_parameters_restored(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        trainer.train(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        saved_state = {k: v.copy() for k, v in trainer.global_agent.state_dict().items()}
        trainer.train(1)  # drift away from the checkpoint
        load_checkpoint(trainer, path)
        for key, value in trainer.global_agent.state_dict().items():
            np.testing.assert_array_equal(value, saved_state[key])
        trainer.close()

    def test_optimizer_state_restored(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        trainer.train(2)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        steps = trainer.policy_optimizer._step_count
        trainer.train(1)
        assert trainer.policy_optimizer._step_count > steps
        load_checkpoint(trainer, path)
        assert trainer.policy_optimizer._step_count == steps
        trainer.close()

    def test_resume_is_exact(self, config, ppo, tmp_path):
        """Train 2 episodes; vs train 1, checkpoint, reload into a fresh
        trainer, train 1 more — the final parameters must agree."""
        straight = make_trainer(config, ppo, seed=3)
        straight.train(2)
        final_straight = straight.global_agent.state_dict()
        straight.close()

        first = make_trainer(config, ppo, seed=3)
        first.train(1)
        path = tmp_path / "mid.npz"
        save_checkpoint(first, path)
        first.close()

        resumed = make_trainer(config, ppo, seed=3)
        load_checkpoint(resumed, path)
        # Recreate the RNG situation of episode 2: the fresh trainer's
        # employee RNGs start at episode 1's draws, so exact equality of
        # trajectories is not expected; parameters must still load exactly.
        for key, value in resumed.global_agent.state_dict().items():
            np.testing.assert_array_equal(value, first.global_agent.state_dict()[key])
        resumed.close()

    def test_employees_synced_after_load(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        trainer.train(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        trainer.train(1)
        load_checkpoint(trainer, path)
        for (kg, vg), (ke, ve) in zip(
            trainer.global_agent.state_dict().items(),
            trainer.employees[0].agent.state_dict().items(),
        ):
            np.testing.assert_array_equal(vg, ve)
        trainer.close()

    def test_curiosity_free_trainer(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo, method="dppo")
        trainer.train(1)
        path = tmp_path / "dppo.npz"
        save_checkpoint(trainer, path)
        load_checkpoint(trainer, path)
        trainer.close()

    def test_mismatched_curiosity_rejected(self, config, ppo, tmp_path):
        cews = make_trainer(config, ppo, method="cews")
        cews.train(1)
        path = tmp_path / "cews.npz"
        save_checkpoint(cews, path)
        cews.close()

        dppo = make_trainer(config, ppo, method="dppo")
        with pytest.raises((ValueError, KeyError)):
            load_checkpoint(dppo, path)
        dppo.close()

    def test_rng_and_episode_counter_restored(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        trainer.train(2)
        states_before = [e.rng.bit_generator.state for e in trainer.employees]
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        trainer.train(1)  # advances every RNG and the counter
        episodes = load_checkpoint(trainer, path)
        assert episodes == 2
        assert trainer.episodes_completed == 2
        for employee, state in zip(trainer.employees, states_before):
            assert employee.rng.bit_generator.state == state
        trainer.close()


class TestAtomicityAndChecksum:
    def test_suffixless_path_round_trips(self, config, ppo, tmp_path):
        """np.savez's silent '.npz' suffix must not leak into our paths."""
        trainer = make_trainer(config, ppo)
        trainer.train(1)
        path = tmp_path / "ckpt"  # no suffix
        written = save_checkpoint(trainer, path)
        assert written == str(path)
        assert path.exists()
        assert not (tmp_path / "ckpt.npz").exists()
        load_checkpoint(trainer, path)  # exact same path loads
        trainer.close()

    def test_interrupt_preserves_previous_checkpoint(self, config, ppo, tmp_path):
        """A kill mid-write must leave the old archive fully valid."""
        trainer = make_trainer(config, ppo)
        trainer.train(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        reference = {k: v.copy() for k, v in trainer.global_agent.state_dict().items()}

        trainer.train(1)
        injector = FaultInjector(FaultPlan(events=(CheckpointFault(save_index=0),)))
        with pytest.raises(InjectedCheckpointInterrupt):
            save_checkpoint(trainer, path, fault_injector=injector)
        # No temp litter, old archive intact and still loads cleanly.
        assert not os.path.exists(str(path) + ".tmp")
        assert verify_checkpoint(path)
        load_checkpoint(trainer, path)
        for key, value in trainer.global_agent.state_dict().items():
            np.testing.assert_array_equal(value, reference[key])
        trainer.close()

    def test_checksum_detects_corruption(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        trainer.train(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        assert verify_checkpoint(path)

        # Flip bytes in the middle of the archive payload.
        raw = bytearray(path.read_bytes())
        mid = len(raw) // 2
        for i in range(mid, mid + 64):
            raw[i] ^= 0xFF
        path.write_bytes(bytes(raw))

        assert not verify_checkpoint(path)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(trainer, path)
        trainer.close()

    def test_save_fsyncs_the_directory_entry(
        self, config, ppo, tmp_path, monkeypatch
    ):
        """``os.replace`` is atomic but not durable: the rename itself
        lives in the directory inode, which must be fsynced or a crash
        can resurrect the old entry.  Assert os.fsync really runs on a
        descriptor of the checkpoint's directory (and on the data file)."""
        import stat

        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            info = os.fstat(fd)
            synced.append((stat.S_ISDIR(info.st_mode), info.st_ino))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        trainer = make_trainer(config, ppo)
        trainer.train(1)
        save_checkpoint(trainer, tmp_path / "ckpt.npz")
        trainer.close()

        directory_inode = os.stat(tmp_path).st_ino
        assert (True, directory_inode) in synced, (
            "the checkpoint's directory fd was never fsynced"
        )
        assert any(not is_dir for is_dir, __ in synced)  # data file too

    def test_manager_save_fsyncs_pointer_directory(
        self, config, ppo, tmp_path, monkeypatch
    ):
        """The rolling manager's ``latest`` pointer swap gets the same
        durability treatment as the archives themselves."""
        import stat

        synced_dir_inodes = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            info = os.fstat(fd)
            if stat.S_ISDIR(info.st_mode):
                synced_dir_inodes.append(info.st_ino)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        trainer = make_trainer(config, ppo)
        trainer.train(1)
        manager = CheckpointManager(tmp_path / "ckpts", keep_last=2)
        manager.save(trainer)
        trainer.close()

        directory_inode = os.stat(tmp_path / "ckpts").st_ino
        # Once after the archive rename, once after the pointer rename.
        assert synced_dir_inodes.count(directory_inode) >= 2

    def test_truncated_archive_detected(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        trainer.train(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        assert not verify_checkpoint(path)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(trainer, path)
        trainer.close()


@pytest.mark.faults
class TestCheckpointManager:
    def test_rolling_keep_last_and_latest_pointer(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        manager = CheckpointManager(tmp_path / "ckpts", keep_last=2)
        for __ in range(4):
            trainer.train(1)
            manager.save(trainer)
        paths = manager.checkpoints()
        assert [os.path.basename(p) for p in paths] == [
            "ckpt-00000003.npz",
            "ckpt-00000004.npz",
        ]
        assert manager.latest() == paths[-1]
        trainer.close()

    def test_restore_latest_round_trip(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        manager = CheckpointManager(tmp_path / "ckpts")
        trainer.train(2)
        manager.save(trainer)
        reference = {k: v.copy() for k, v in trainer.global_agent.state_dict().items()}
        trainer.train(1)
        episodes = manager.restore_latest(trainer)
        assert episodes == 2
        for key, value in trainer.global_agent.state_dict().items():
            np.testing.assert_array_equal(value, reference[key])
        trainer.close()

    def test_restore_latest_empty_dir(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        manager = CheckpointManager(tmp_path / "ckpts")
        assert manager.restore_latest(trainer) is None
        trainer.close()

    def test_restore_falls_back_past_corrupt_newest(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        manager = CheckpointManager(tmp_path / "ckpts", keep_last=3)
        trainer.train(1)
        manager.save(trainer)
        good = {k: v.copy() for k, v in trainer.global_agent.state_dict().items()}
        trainer.train(1)
        newest = manager.save(trainer)

        # Corrupt the newest archive in place.
        raw = bytearray(open(newest, "rb").read())
        mid = len(raw) // 2
        for i in range(mid, mid + 64):
            raw[i] ^= 0xFF
        open(newest, "wb").write(bytes(raw))

        episodes = manager.restore_latest(trainer)
        assert episodes == 1  # fell back to the previous valid checkpoint
        for key, value in trainer.global_agent.state_dict().items():
            np.testing.assert_array_equal(value, good[key])
        trainer.close()

    def test_interrupted_save_leaves_manager_recoverable(self, config, ppo, tmp_path):
        injector = FaultInjector(FaultPlan(events=(CheckpointFault(save_index=1),)))
        trainer = make_trainer(config, ppo)
        manager = CheckpointManager(
            tmp_path / "ckpts", keep_last=3, fault_injector=injector
        )
        trainer.train(1)
        manager.save(trainer)  # save #0 fine
        trainer.train(1)
        with pytest.raises(InjectedCheckpointInterrupt):
            manager.save(trainer)  # save #1 killed mid-write
        # The directory still restores the last valid archive.
        episodes = manager.restore_latest(trainer)
        assert episodes == 1
        trainer.close()


@pytest.mark.faults
class TestKillAndResume:
    """A killed-and-resumed run must bitwise match an uninterrupted one."""

    EPISODES = 4

    @staticmethod
    def _curves(history):
        return (
            history.curve("kappa"),
            history.curve("policy_loss"),
            history.curve("extrinsic_reward"),
            history.curve("intrinsic_reward"),
        )

    def _uninterrupted(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo, seed=11)
        history = resume_or_start(
            trainer, tmp_path / "ref", self.EPISODES, save_every=1
        )
        trainer.close()
        return history

    def test_resume_after_kill_interrupt_is_bitwise_identical(
        self, config, ppo, tmp_path
    ):
        reference = self._uninterrupted(config, ppo, tmp_path)

        # First run: killed by an injected checkpoint interrupt at save #2
        # (i.e. after episodes 0 and 1 checkpointed cleanly).
        injector = FaultInjector(FaultPlan(events=(CheckpointFault(save_index=2),)))
        first = make_trainer(config, ppo, seed=11)
        with pytest.raises(InjectedCheckpointInterrupt):
            resume_or_start(
                first,
                tmp_path / "run",
                self.EPISODES,
                save_every=1,
                fault_injector=injector,
            )
        first.close()

        # Second run: a fresh process resumes from the last valid rolling
        # checkpoint and finishes the remaining episodes.
        resumed = make_trainer(config, ppo, seed=11)
        tail = resume_or_start(resumed, tmp_path / "run", self.EPISODES, save_every=1)
        resumed.close()

        assert [log.episode for log in tail.logs] == [2, 3]
        ref_tail = self._curves(reference)
        got_tail = self._curves(tail)
        for ref_curve, got_curve in zip(ref_tail, got_tail):
            assert ref_curve[2:] == got_curve

        # And the final model parameters agree bitwise with the straight run.
        straight = make_trainer(config, ppo, seed=11)
        resume_or_start(straight, tmp_path / "ref", self.EPISODES)  # no-op resume
        final = make_trainer(config, ppo, seed=11)
        resume_or_start(final, tmp_path / "run", self.EPISODES)  # no-op resume
        for key, value in final.global_agent.state_dict().items():
            np.testing.assert_array_equal(
                value, straight.global_agent.state_dict()[key]
            )
        straight.close()
        final.close()

    def test_resume_covers_completed_run(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo, seed=11)
        resume_or_start(trainer, tmp_path / "done", 2, save_every=1)
        trainer.close()
        again = make_trainer(config, ppo, seed=11)
        history = resume_or_start(again, tmp_path / "done", 2, save_every=1)
        assert history.logs == []
        assert again.episodes_completed == 2
        again.close()
