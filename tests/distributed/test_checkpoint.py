"""Tests for trainer checkpoint save/resume."""

import numpy as np
import pytest

from repro.agents import PPOConfig
from repro.distributed import TrainConfig, build_trainer, load_checkpoint, save_checkpoint
from repro.env import smoke_config


@pytest.fixture
def config():
    return smoke_config(seed=5, horizon=8, num_pois=12)


@pytest.fixture
def ppo():
    return PPOConfig(batch_size=8, epochs=1, learning_rate=1e-3)


def make_trainer(config, ppo, method="cews", seed=0):
    return build_trainer(
        method,
        config,
        train=TrainConfig(num_employees=2, episodes=2, k_updates=1, seed=seed),
        ppo=ppo,
    )


class TestCheckpointRoundTrip:
    def test_agent_parameters_restored(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        trainer.train(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        saved_state = {k: v.copy() for k, v in trainer.global_agent.state_dict().items()}
        trainer.train(1)  # drift away from the checkpoint
        load_checkpoint(trainer, path)
        for key, value in trainer.global_agent.state_dict().items():
            np.testing.assert_array_equal(value, saved_state[key])
        trainer.close()

    def test_optimizer_state_restored(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        trainer.train(2)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        steps = trainer.policy_optimizer._step_count
        trainer.train(1)
        assert trainer.policy_optimizer._step_count > steps
        load_checkpoint(trainer, path)
        assert trainer.policy_optimizer._step_count == steps
        trainer.close()

    def test_resume_is_exact(self, config, ppo, tmp_path):
        """Train 2 episodes; vs train 1, checkpoint, reload into a fresh
        trainer, train 1 more — the final parameters must agree."""
        straight = make_trainer(config, ppo, seed=3)
        straight.train(2)
        final_straight = straight.global_agent.state_dict()
        straight.close()

        first = make_trainer(config, ppo, seed=3)
        first.train(1)
        path = tmp_path / "mid.npz"
        save_checkpoint(first, path)
        first.close()

        resumed = make_trainer(config, ppo, seed=3)
        load_checkpoint(resumed, path)
        # Recreate the RNG situation of episode 2: the fresh trainer's
        # employee RNGs start at episode 1's draws, so exact equality of
        # trajectories is not expected; parameters must still load exactly.
        for key, value in resumed.global_agent.state_dict().items():
            np.testing.assert_array_equal(value, first.global_agent.state_dict()[key])
        resumed.close()

    def test_employees_synced_after_load(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        trainer.train(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trainer, path)
        trainer.train(1)
        load_checkpoint(trainer, path)
        for (kg, vg), (ke, ve) in zip(
            trainer.global_agent.state_dict().items(),
            trainer.employees[0].agent.state_dict().items(),
        ):
            np.testing.assert_array_equal(vg, ve)
        trainer.close()

    def test_curiosity_free_trainer(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo, method="dppo")
        trainer.train(1)
        path = tmp_path / "dppo.npz"
        save_checkpoint(trainer, path)
        load_checkpoint(trainer, path)
        trainer.close()

    def test_mismatched_curiosity_rejected(self, config, ppo, tmp_path):
        cews = make_trainer(config, ppo, method="cews")
        cews.train(1)
        path = tmp_path / "cews.npz"
        save_checkpoint(cews, path)
        cews.close()

        dppo = make_trainer(config, ppo, method="dppo")
        with pytest.raises((ValueError, KeyError)):
            load_checkpoint(dppo, path)
        dppo.close()
