"""Integration tests of the resilient chief–employee barrier.

The fault matrix: employee **crash**, **straggle** (delay / timeout),
gradient **corrupt** (NaN / Inf / norm explosion) and checkpoint
**interrupt** — each exercised through the deterministic
:class:`FaultInjector` so every recovery path is reproducible.
"""

import numpy as np
import pytest

from repro.agents import PPOConfig
from repro.distributed import (
    CorruptionFault,
    CrashFault,
    FaultInjector,
    FaultPlan,
    StragglerFault,
    TrainConfig,
    build_async_trainer,
    build_trainer,
)
from repro.distributed.async_trainer import AsyncConfig
from repro.env import smoke_config

pytestmark = pytest.mark.faults


@pytest.fixture
def config():
    return smoke_config(seed=5, horizon=10, num_pois=15)


@pytest.fixture
def ppo():
    return PPOConfig(batch_size=10, epochs=1, learning_rate=1e-3)


def make_trainer(config, ppo, injector=None, method="cews", **train_overrides):
    defaults = dict(num_employees=3, episodes=2, k_updates=2, seed=0)
    defaults.update(train_overrides)
    return build_trainer(
        method,
        config,
        train=TrainConfig(**defaults),
        ppo=ppo,
        fault_injector=injector,
    )


def curves(history):
    return (
        history.curve("kappa"),
        history.curve("policy_loss"),
        history.curve("extrinsic_reward"),
    )


class TestFaultFreeEquivalence:
    """With no faults fired, the resilient barrier is bitwise-invisible."""

    @pytest.mark.parametrize("mode", ["sequential", "thread"])
    def test_noop_injector_bitwise_identical(self, config, ppo, mode):
        plain = make_trainer(config, ppo, mode=mode)
        plain_history = plain.train()
        plain.close()

        instrumented = make_trainer(
            config,
            ppo,
            injector=FaultInjector(FaultPlan()),
            mode=mode,
            quorum_fraction=0.5,  # quorum armed but never triggered
            max_retries=2,
        )
        instrumented_history = instrumented.train()
        instrumented.close()

        assert curves(plain_history) == curves(instrumented_history)
        assert instrumented.health.healthy

    def test_sequential_and_thread_identical(self, config, ppo):
        seq = make_trainer(config, ppo, mode="sequential")
        seq_history = seq.train()
        seq.close()
        thr = make_trainer(config, ppo, mode="thread")
        thr_history = thr.train()
        thr.close()
        assert curves(seq_history) == curves(thr_history)


class TestCrashRecovery:
    def test_crash_recovery_training_completes(self, config, ppo):
        # Employee 1 is dead for all of episode 0 (explore never succeeds).
        injector = FaultInjector(
            FaultPlan(events=(CrashFault(employee=1, episode=0, times=100),))
        )
        trainer = make_trainer(
            config, ppo, injector=injector, quorum_fraction=0.5, max_retries=1
        )
        history = trainer.train()
        trainer.close()

        assert len(history.logs) == 2
        assert all(np.isfinite(log.kappa) for log in history.logs)
        health = trainer.health
        assert health.employee(1).crashes == 2  # initial attempt + 1 retry
        assert health.employee(1).restarts == 1  # re-synced at episode 1
        assert health.employee(1).consecutive_failures == 0  # recovered
        assert health.degraded_episodes == 1
        assert health.degraded_rounds == 2  # both K rounds ran 2/3 strong

    def test_crash_transient_retry_recovers(self, config, ppo):
        # times=1: the first attempt crashes, the retry succeeds — the
        # barrier stays full strength and nothing degrades.
        injector = FaultInjector(
            FaultPlan(events=(CrashFault(employee=0, episode=0, times=1),))
        )
        trainer = make_trainer(
            config, ppo, injector=injector, quorum_fraction=0.5, max_retries=2
        )
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 2
        assert trainer.health.employee(0).crashes == 1
        assert trainer.health.degraded_rounds == 0
        assert trainer.health.degraded_episodes == 0

    def test_crash_gradient_round(self, config, ppo):
        # A crash in update round 1 removes the employee from the rest of
        # the episode but keeps its exploration contribution.
        injector = FaultInjector(
            FaultPlan(events=(CrashFault(employee=2, episode=0, round=1, times=100),))
        )
        trainer = make_trainer(
            config, ppo, injector=injector, quorum_fraction=0.5, max_retries=0
        )
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 2
        assert trainer.health.employee(2).crashes == 1
        assert trainer.health.degraded_rounds == 1  # only round 1 degraded

    def test_crash_below_quorum_raises(self, config, ppo):
        events = tuple(
            CrashFault(employee=i, episode=0, times=100) for i in range(3)
        )
        injector = FaultInjector(FaultPlan(events=events))
        trainer = make_trainer(
            config, ppo, injector=injector, quorum_fraction=1.0, max_retries=0
        )
        with pytest.raises(RuntimeError, match="quorum"):
            trainer.train()
        trainer.close()


class TestStragglers:
    def test_straggle_thread_matches_sequential(self, config, ppo):
        """Injected delays (no timeout) must not change the math: the
        threaded driver's history is identical to the sequential one."""

        def delayed_plan():
            return FaultPlan(
                events=(
                    StragglerFault(employee=0, episode=0, delay=0.05),
                    StragglerFault(employee=2, episode=1, delay=0.05, round=0),
                )
            )

        histories = []
        for mode in ("sequential", "thread"):
            trainer = make_trainer(
                config, ppo, injector=FaultInjector(delayed_plan()), mode=mode
            )
            histories.append(trainer.train())
            trainer.close()
        assert curves(histories[0]) == curves(histories[1])

    def test_straggle_timeout_degrades_barrier(self, config, ppo):
        # Employee 0 sleeps 2 s in episode 0's exploration; the chief only
        # waits 0.5 s and proceeds on a 2/3 quorum.  (The generous margins
        # keep real work well under the timeout even on a loaded box.)
        injector = FaultInjector(
            FaultPlan(events=(StragglerFault(employee=0, episode=0, delay=2.0),))
        )
        trainer = make_trainer(
            config,
            ppo,
            injector=injector,
            mode="thread",
            quorum_fraction=0.5,
            employee_timeout=0.5,
            max_retries=0,
        )
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 2
        assert trainer.health.employee(0).timeouts >= 1
        assert trainer.health.degraded_episodes >= 1
        # Episode 0's exploration definitely ran without employee 0.
        assert trainer.health.employee(0).restarts >= 1

    def test_abandoned_straggler_drained_at_phase_exit(self, config, ppo):
        """Regression: ``_run_phase`` used to leak the future of a
        timed-out straggler whose retries were exhausted — the task kept
        running in the pool and could interleave with the next phase's
        work on the same employee.  The phase must not return while an
        abandoned task is still executing."""
        import threading
        import time

        trainer = make_trainer(
            config,
            ppo,
            mode="thread",
            employee_timeout=0.2,
            max_retries=0,
            quorum_fraction=0.3,
        )
        started = threading.Event()
        finished = threading.Event()

        def task(employee):
            if employee is trainer.employees[0]:
                started.set()
                time.sleep(0.6)
                finished.set()
            return "ok"

        results, failed = trainer._run_phase(
            task, range(3), episode=0, round_index=-1, phase="explore"
        )
        try:
            assert failed == {0}
            assert sorted(results) == [1, 2]
            assert trainer.health.employee(0).timeouts == 1
            # The drained straggler either never ran (cancelled while
            # queued) or ran to completion before _run_phase returned.
            assert finished.is_set() or not started.is_set()
        finally:
            trainer.close()

    def test_straggle_timeout_sequential_discards_result(self, config, ppo):
        injector = FaultInjector(
            FaultPlan(events=(StragglerFault(employee=1, episode=0, delay=0.3),))
        )
        trainer = make_trainer(
            config,
            ppo,
            injector=injector,
            mode="sequential",
            quorum_fraction=0.5,
            employee_timeout=0.05,
            max_retries=0,
        )
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 2
        assert trainer.health.employee(1).timeouts == 1


class TestGradientQuarantineSync:
    @pytest.mark.parametrize("fault_mode", ["nan", "inf"])
    def test_corrupt_gradient_quarantined(self, config, ppo, fault_mode):
        injector = FaultInjector(
            FaultPlan(
                events=(
                    CorruptionFault(employee=1, episode=0, round=0, mode=fault_mode),
                )
            )
        )
        trainer = make_trainer(
            config, ppo, injector=injector, quorum_fraction=0.5
        )
        history = trainer.train()
        trainer.close()

        health = trainer.health
        assert health.employee(1).rejected_policy_gradients == 1
        assert health.total_rejected_gradients >= 1
        assert health.degraded_rounds >= 1
        # The poison never reached the global model.
        for key, value in trainer.global_agent.state_dict().items():
            assert np.all(np.isfinite(value)), key
        assert all(np.isfinite(log.policy_loss) for log in history.logs)
        # Visible in the per-employee rejection tally of the buffer too.
        assert trainer.ppo_buffer.rejections.get(1) == 1

    def test_corrupt_explode_quarantined_by_norm(self, config, ppo):
        injector = FaultInjector(
            FaultPlan(
                events=(
                    CorruptionFault(employee=0, episode=0, round=0, mode="explode"),
                )
            )
        )
        trainer = make_trainer(
            config,
            ppo,
            injector=injector,
            quorum_fraction=0.5,
            quarantine_max_norm=1e6,
        )
        trainer.train()
        trainer.close()
        assert trainer.health.employee(0).rejected_policy_gradients == 1
        for key, value in trainer.global_agent.state_dict().items():
            assert np.all(np.isfinite(value)), key

    def test_corrupt_curiosity_gradient_quarantined(self, config, ppo):
        injector = FaultInjector(
            FaultPlan(
                events=(
                    CorruptionFault(
                        employee=2, episode=0, round=0, mode="nan", buffer="curiosity"
                    ),
                )
            )
        )
        trainer = make_trainer(
            config, ppo, injector=injector, quorum_fraction=0.5
        )
        trainer.train()
        trainer.close()
        assert trainer.health.employee(2).rejected_curiosity_gradients == 1
        # Policy contribution of the same employee was still accepted.
        assert trainer.health.employee(2).rejected_policy_gradients == 0


class TestGradientQuarantineAsync:
    def test_corrupt_nan_gradient_quarantined_async(self, config, ppo):
        # Episode 2 is served by actor 0 (episode % num_actors).
        injector = FaultInjector(
            FaultPlan(events=(CorruptionFault(employee=0, episode=2, round=0),))
        )
        learner = build_async_trainer(
            "cews",
            config,
            async_config=AsyncConfig(num_actors=2, episodes=4, sync_every=1, seed=0),
            ppo=ppo,
            fault_injector=injector,
        )
        history = learner.train()

        rejected = [log for log in history.logs if log.rejected]
        assert len(rejected) == 1
        assert rejected[0].episode == 2
        assert learner.health.employee(0).rejected_policy_gradients == 1
        for param in learner.learner.policy_parameters():
            assert np.all(np.isfinite(param.data))

    def test_async_quarantine_skips_update_count(self, config, ppo):
        injector = FaultInjector(
            FaultPlan(events=(CorruptionFault(employee=0, episode=0, round=0),))
        )
        learner = build_async_trainer(
            "dppo",
            config,
            async_config=AsyncConfig(num_actors=1, episodes=2, sync_every=1, seed=0),
            ppo=ppo,
            fault_injector=injector,
        )
        learner.train()
        assert learner._update_count == 1  # episode 0's update was skipped


class TestEndToEndRecovery:
    def test_crash_corrupt_interrupt_full_scenario(self, config, ppo, tmp_path):
        """The acceptance scenario: an employee crash + a NaN gradient + a
        checkpoint kill in one run — training completes, the poison is
        quarantined (visible in TrainerHealth) and resume_or_start
        restores from the last valid rolling checkpoint."""
        from repro.distributed import (
            CheckpointFault,
            InjectedCheckpointInterrupt,
        )
        from repro.experiments.training import resume_or_start

        plan = FaultPlan(
            events=(
                CrashFault(employee=0, episode=0, times=100),
                CorruptionFault(employee=1, episode=1, round=0, mode="nan"),
                CheckpointFault(save_index=2),
            )
        )
        injector = FaultInjector(plan)
        trainer = make_trainer(
            config,
            ppo,
            injector=injector,
            episodes=4,
            quorum_fraction=0.5,
            max_retries=1,
        )
        with pytest.raises(InjectedCheckpointInterrupt):
            resume_or_start(
                trainer, tmp_path / "run", 4, save_every=1, fault_injector=injector
            )
        # Episodes 0-2 ran; saves #0 and #1 (episodes 1, 2) landed, save #2
        # was killed mid-write.  The fault ledger shows every event.
        health = trainer.health
        assert health.employee(0).crashes >= 1
        assert health.employee(0).restarts >= 1
        assert health.employee(1).rejected_policy_gradients == 1
        assert health.total_rejected_gradients >= 1
        trainer.close()

        # A fresh 'process' resumes from the last valid checkpoint and
        # completes the run with finite parameters throughout.
        resumed = make_trainer(config, ppo, episodes=4, quorum_fraction=0.5)
        history = resume_or_start(resumed, tmp_path / "run", 4, save_every=1)
        assert [log.episode for log in history.logs] == [2, 3]
        assert resumed.episodes_completed == 4
        for key, value in resumed.global_agent.state_dict().items():
            assert np.all(np.isfinite(value)), key
        resumed.close()


class TestRandomFaultMatrix:
    def test_random_matrix_crash_straggle_corrupt_survived(self, config, ppo):
        """A randomized (seeded) mixture of crashes, stragglers and NaN
        corruption must never hang, poison or kill a quorum-armed run."""
        plan = FaultPlan.random(
            seed=3,
            num_employees=3,
            episodes=3,
            k_updates=2,
            crash_rate=0.1,
            straggler_rate=0.1,
            straggler_delay=0.01,
            corrupt_rate=0.1,
        )
        trainer = make_trainer(
            config,
            ppo,
            injector=FaultInjector(plan),
            episodes=3,
            quorum_fraction=1 / 3,
            max_retries=1,
        )
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 3
        for key, value in trainer.global_agent.state_dict().items():
            assert np.all(np.isfinite(value)), key
