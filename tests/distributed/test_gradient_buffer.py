"""Tests for the thread-safe gradient buffer."""

import threading

import numpy as np
import pytest

from repro.distributed import GradientBuffer


class TestBasics:
    def test_sum_of_contributions(self):
        buffer = GradientBuffer(2)
        buffer.add([np.ones(3), np.full(2, 2.0)])
        buffer.add([np.ones(3) * 2, np.full(2, 3.0)])
        grads, count = buffer.drain()
        assert count == 2
        np.testing.assert_array_equal(grads[0], np.full(3, 3.0))
        np.testing.assert_array_equal(grads[1], np.full(2, 5.0))

    def test_drain_clears(self):
        buffer = GradientBuffer(1)
        buffer.add([np.ones(1)])
        buffer.drain()
        assert buffer.count == 0
        with pytest.raises(RuntimeError, match="empty"):
            buffer.drain()

    def test_add_wrong_count_rejected(self):
        buffer = GradientBuffer(2)
        with pytest.raises(ValueError, match="expected 2"):
            buffer.add([np.ones(1)])

    def test_add_wrong_shape_rejected(self):
        buffer = GradientBuffer(1)
        buffer.add([np.ones(3)])
        with pytest.raises(ValueError, match="shape"):
            buffer.add([np.ones(4)])

    def test_clear(self):
        buffer = GradientBuffer(1)
        buffer.add([np.ones(1)])
        buffer.clear()
        assert buffer.count == 0

    def test_negative_num_params_rejected(self):
        with pytest.raises(ValueError):
            GradientBuffer(-1)

    def test_contributions_are_copied(self):
        buffer = GradientBuffer(1)
        grad = np.ones(2)
        buffer.add([grad])
        grad[:] = 100.0
        summed, __ = buffer.drain()
        np.testing.assert_array_equal(summed[0], np.ones(2))


class TestThreadSafety:
    def test_concurrent_adds_all_counted(self):
        buffer = GradientBuffer(1)
        threads = [
            threading.Thread(target=lambda: buffer.add([np.ones(4)]))
            for __ in range(32)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        grads, count = buffer.drain()
        assert count == 32
        np.testing.assert_array_equal(grads[0], np.full(4, 32.0))
