"""Tests for the thread-safe gradient buffer."""

import threading

import numpy as np
import pytest

from repro.distributed import GradientBuffer, GradientRejected


class TestBasics:
    def test_sum_of_contributions(self):
        buffer = GradientBuffer(2)
        buffer.add([np.ones(3), np.full(2, 2.0)])
        buffer.add([np.ones(3) * 2, np.full(2, 3.0)])
        grads, count = buffer.drain()
        assert count == 2
        np.testing.assert_array_equal(grads[0], np.full(3, 3.0))
        np.testing.assert_array_equal(grads[1], np.full(2, 5.0))

    def test_drain_clears(self):
        buffer = GradientBuffer(1)
        buffer.add([np.ones(1)])
        buffer.drain()
        assert buffer.count == 0
        with pytest.raises(RuntimeError, match="empty"):
            buffer.drain()

    def test_add_wrong_count_rejected(self):
        buffer = GradientBuffer(2)
        with pytest.raises(ValueError, match="expected 2"):
            buffer.add([np.ones(1)])

    def test_add_wrong_shape_rejected(self):
        buffer = GradientBuffer(1)
        buffer.add([np.ones(3)])
        with pytest.raises(ValueError, match="shape"):
            buffer.add([np.ones(4)])

    def test_clear(self):
        buffer = GradientBuffer(1)
        buffer.add([np.ones(1)])
        buffer.clear()
        assert buffer.count == 0

    def test_negative_num_params_rejected(self):
        with pytest.raises(ValueError):
            GradientBuffer(-1)

    def test_contributions_are_copied(self):
        buffer = GradientBuffer(1)
        grad = np.ones(2)
        buffer.add([grad])
        grad[:] = 100.0
        summed, __ = buffer.drain()
        np.testing.assert_array_equal(summed[0], np.ones(2))


class TestShapeValidation:
    def test_mismatch_names_parameter_index(self):
        buffer = GradientBuffer(3)
        buffer.add([np.ones(2), np.ones((2, 2)), np.ones(4)])
        with pytest.raises(ValueError, match="parameter index 1"):
            buffer.add([np.ones(2), np.ones((3, 2)), np.ones(4)])
        # The failed add never touched the sum.
        grads, count = buffer.drain()
        assert count == 1
        np.testing.assert_array_equal(grads[2], np.ones(4))

    def test_authoritative_shapes_validate_first_add(self):
        buffer = GradientBuffer(2, shapes=[(3,), (2, 2)])
        with pytest.raises(ValueError, match="parameter index 0"):
            buffer.add([np.ones(4), np.ones((2, 2))])
        buffer.add([np.ones(3), np.ones((2, 2))])
        assert buffer.count == 1

    def test_shapes_length_must_match(self):
        with pytest.raises(ValueError, match="shapes"):
            GradientBuffer(2, shapes=[(3,)])


class TestQuarantine:
    def test_nan_rejected_and_tallied(self):
        buffer = GradientBuffer(2)
        buffer.add([np.ones(3), np.ones(2)], employee=0)
        bad = [np.ones(3), np.array([1.0, np.nan])]
        with pytest.raises(GradientRejected, match="parameter index 1"):
            buffer.add(bad, employee=1)
        assert buffer.rejections == {1: 1}
        # The accepted sum is intact.
        grads, count = buffer.drain()
        assert count == 1
        np.testing.assert_array_equal(grads[0], np.ones(3))

    def test_inf_rejected(self):
        buffer = GradientBuffer(1)
        with pytest.raises(GradientRejected):
            buffer.add([np.array([np.inf])], employee=3)
        assert buffer.rejections == {3: 1}
        assert buffer.count == 0

    def test_norm_explosion_rejected(self):
        buffer = GradientBuffer(1, max_norm=10.0)
        buffer.add([np.ones(4)])  # norm 2: fine
        with pytest.raises(GradientRejected, match="norm"):
            buffer.add([np.full(4, 1e12)])
        grads, count = buffer.drain()
        assert count == 1

    def test_max_norm_disabled_by_default(self):
        buffer = GradientBuffer(1)
        buffer.add([np.full(4, 1e12)])  # huge but finite: accepted
        assert buffer.count == 1

    def test_rejections_anonymous_by_default(self):
        buffer = GradientBuffer(1)
        with pytest.raises(GradientRejected):
            buffer.add([np.array([np.nan])])
        assert buffer.rejections == {-1: 1}

    def test_clear_rejections(self):
        buffer = GradientBuffer(1)
        with pytest.raises(GradientRejected):
            buffer.add([np.array([np.nan])], employee=0)
        buffer.clear_rejections()
        assert buffer.rejections == {}

    def test_negative_max_norm_rejected(self):
        with pytest.raises(ValueError):
            GradientBuffer(1, max_norm=-1.0)


class TestThreadSafety:
    def test_concurrent_adds_all_counted(self):
        buffer = GradientBuffer(1)
        threads = [
            threading.Thread(target=lambda: buffer.add([np.ones(4)]))
            for __ in range(32)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        grads, count = buffer.drain()
        assert count == 32
        np.testing.assert_array_equal(grads[0], np.full(4, 32.0))
