"""Tests for the chief–employee trainer."""

import numpy as np
import pytest

from repro.agents import PPOConfig
from repro.distributed import TrainConfig, build_trainer
from repro.env import smoke_config


@pytest.fixture
def config():
    return smoke_config(seed=5, horizon=10, num_pois=15)


@pytest.fixture
def ppo():
    return PPOConfig(batch_size=10, epochs=1, learning_rate=1e-3)


def make_trainer(config, ppo, method="cews", **train_overrides):
    defaults = dict(num_employees=2, episodes=2, k_updates=2, seed=0)
    defaults.update(train_overrides)
    return build_trainer(method, config, train=TrainConfig(**defaults), ppo=ppo)


class TestTrainConfig:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_employees", 0),
            ("episodes", 0),
            ("k_updates", 0),
            ("mode", "bogus"),
            ("backend", "bogus"),
            ("eval_every", -1),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            TrainConfig(**{field: value})

    @pytest.mark.parametrize(
        "kwargs,backend,mode",
        [
            ({}, "serial", "sequential"),
            ({"mode": "sequential"}, "serial", "sequential"),
            ({"mode": "serial"}, "serial", "sequential"),
            ({"mode": "thread"}, "thread", "thread"),
            ({"mode": "process"}, "process", "process"),
            ({"backend": "serial"}, "serial", "sequential"),
            ({"backend": "thread"}, "thread", "thread"),
            ({"backend": "process"}, "process", "process"),
        ],
    )
    def test_backend_mode_normalization(self, kwargs, backend, mode):
        config = TrainConfig(**kwargs)
        assert config.backend == backend
        assert config.mode == mode
        # dataclasses.replace must round-trip the normalized pair.
        import dataclasses

        again = dataclasses.replace(config, episodes=7)
        assert (again.backend, again.mode) == (backend, mode)


class TestTrainingLoop:
    def test_history_recorded(self, config, ppo):
        trainer = make_trainer(config, ppo)
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 2
        assert history.total_wall_time > 0
        for log in history.logs:
            assert np.isfinite(log.kappa)
            assert np.isfinite(log.policy_loss)
            assert log.wall_time > 0

    def test_global_parameters_change(self, config, ppo):
        trainer = make_trainer(config, ppo)
        before = {
            k: v.copy() for k, v in trainer.global_agent.network.state_dict().items()
        }
        trainer.train()
        trainer.close()
        changed = any(
            not np.array_equal(v, before[k])
            for k, v in trainer.global_agent.network.state_dict().items()
        )
        assert changed

    def test_employees_synced_after_training(self, config, ppo):
        trainer = make_trainer(config, ppo)
        trainer.train()
        employee = trainer.employees[0]
        for (kg, vg), (ke, ve) in zip(
            trainer.global_agent.state_dict().items(),
            employee.agent.state_dict().items(),
        ):
            np.testing.assert_array_equal(vg, ve)
        trainer.close()

    def test_curiosity_model_trains(self, config, ppo):
        trainer = make_trainer(config, ppo)
        before = {
            k: v.copy()
            for k, v in trainer.global_agent.curiosity.state_dict().items()
        }
        trainer.train()
        trainer.close()
        changed = any(
            not np.array_equal(v, before[k])
            for k, v in trainer.global_agent.curiosity.state_dict().items()
        )
        assert changed

    def test_curve_helpers(self, config, ppo):
        trainer = make_trainer(config, ppo)
        history = trainer.train()
        trainer.close()
        assert len(history.curve("kappa")) == 2
        assert len(history.curve("intrinsic_reward")) == 2

    def test_eval_every(self, config, ppo):
        trainer = make_trainer(config, ppo, episodes=4, eval_every=2)
        history = trainer.train()
        trainer.close()
        evals = history.eval_curve("kappa")
        assert [episode for episode, __ in evals] == [1, 3]
        assert history.final_eval() is not None

    def test_no_eval_by_default(self, config, ppo):
        trainer = make_trainer(config, ppo)
        history = trainer.train()
        trainer.close()
        assert history.eval_curve("kappa") == []
        assert history.final_eval() is None

    def test_train_episode_override(self, config, ppo):
        trainer = make_trainer(config, ppo, episodes=5)
        history = trainer.train(1)
        trainer.close()
        assert len(history.logs) == 1


class TestDrivers:
    def test_thread_mode_runs(self, config, ppo):
        trainer = make_trainer(config, ppo, mode="thread")
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 2

    def test_context_manager(self, config, ppo):
        with make_trainer(config, ppo) as trainer:
            trainer.train(1)


class TestMethods:
    @pytest.mark.parametrize("method", ["cews", "dppo", "edics"])
    def test_all_methods_train(self, config, ppo, method):
        trainer = make_trainer(config, ppo, method=method, episodes=1)
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 1

    def test_edics_has_no_curiosity_optimizer(self, config, ppo):
        trainer = make_trainer(config, ppo, method="edics", episodes=1)
        assert trainer.curiosity_optimizer is None
        trainer.close()

    def test_dppo_intrinsic_zero(self, config, ppo):
        trainer = make_trainer(config, ppo, method="dppo", episodes=1)
        history = trainer.train()
        trainer.close()
        assert history.logs[0].intrinsic_reward == 0.0


class TestHistoryCSV:
    def test_round_trip(self, config, ppo, tmp_path):
        trainer = make_trainer(config, ppo)
        history = trainer.train()
        trainer.close()
        path = tmp_path / "logs" / "history.csv"
        history.save_csv(path)
        from repro.distributed import TrainingHistory

        loaded = TrainingHistory.load_csv(path)
        assert len(loaded.logs) == len(history.logs)
        assert loaded.curve("kappa") == pytest.approx(history.curve("kappa"))
        assert loaded.curve("value_loss") == pytest.approx(history.curve("value_loss"))


class TestDeterminism:
    def test_identical_seeds_identical_training(self, config, ppo):
        """The whole training loop is a pure function of its seeds."""
        curves = []
        for __ in range(2):
            trainer = make_trainer(config, ppo, episodes=3)
            history = trainer.train()
            trainer.close()
            curves.append(
                (history.curve("kappa"), history.curve("policy_loss"))
            )
        assert curves[0][0] == curves[1][0]
        assert curves[0][1] == curves[1][1]

    def test_different_seeds_diverge(self, config, ppo):
        histories = []
        for seed in (0, 1):
            trainer = make_trainer(config, ppo, episodes=3, seed=seed)
            histories.append(trainer.train().curve("kappa"))
            trainer.close()
        assert histories[0] != histories[1]
