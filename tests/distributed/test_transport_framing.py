"""Property tests for the socket transport's frame and tensor codecs.

The codec contract (PR 6): every byte crossing a host boundary is a
length-prefixed CRC32-checksummed frame, and damage of any kind — torn
streams, flipped bits, desynced magic, oversized lengths, truncated
pickles, layout disagreements — surfaces as :class:`FrameError`, never
as garbage handed to the trainer.  The float64 wire encoding round-trips
exact bytes (the bitwise-equivalence contract); float32 is an explicit
opt-in bounded by half an ulp of the 24-bit significand.
"""

import pickle
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.transport import (
    FrameAssembler,
    FrameError,
    MAX_FRAME_BYTES,
    decode_control,
    decode_tensors,
    encode_control,
    encode_frame,
    encode_tensors,
    split_frames,
)
from repro.distributed.transport.framing import (
    FRAME_HEADER,
    MAGIC,
    T_CONTROL,
    T_HEARTBEAT,
    T_TENSORS,
    frame_types,
)
from repro.distributed.transport.netfaults import NetworkFaultPlan
from repro.distributed.transport.wire import TENSOR_HEADER, payload_nbytes

payloads = st.binary(min_size=0, max_size=4096)
types = st.sampled_from(frame_types())


# ----------------------------------------------------------------------
# Frame round-trips
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(types, payloads)
def test_frame_round_trip(ftype, payload):
    frames = split_frames(encode_frame(ftype, payload))
    assert frames == [(ftype, 0, payload)]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(types, payloads), min_size=1, max_size=8))
def test_concatenated_frames_round_trip(messages):
    buffer = b"".join(encode_frame(t, p) for t, p in messages)
    assert split_frames(buffer) == [(t, 0, p) for t, p in messages]


@settings(max_examples=30, deadline=None)
@given(types, payloads, st.data())
def test_assembler_handles_arbitrary_chunking(ftype, payload, data):
    """TCP may deliver any byte split; reassembly must not care."""
    buffer = encode_frame(ftype, payload)
    cut = data.draw(st.integers(0, len(buffer)))
    assembler = FrameAssembler()
    assembler.feed(buffer[:cut])
    early = assembler.next_frame()
    assembler.feed(buffer[cut:])
    frames = ([early] if early is not None else []) + list(assembler.iter_frames())
    assert frames == [(ftype, 0, payload)]
    assembler.check_eof()  # nothing torn


def test_zero_and_slab_sized_payloads_round_trip():
    """The size extremes the trainer actually ships: empty control
    payloads up to multi-megabyte full-parameter broadcasts."""
    for size in (0, 1, FRAME_HEADER.size, 1 << 20):
        payload = np.random.default_rng(size).integers(
            0, 256, size, dtype=np.uint8
        ).tobytes()
        assert split_frames(encode_frame(T_TENSORS, payload)) == [
            (T_TENSORS, 0, payload)
        ]


def test_oversized_payload_refused_at_encode():
    class FakeLen(bytes):
        def __len__(self):
            return MAX_FRAME_BYTES + 1

    with pytest.raises(FrameError, match="exceeds"):
        encode_frame(T_CONTROL, FakeLen())


# ----------------------------------------------------------------------
# Damage detection
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(payloads.filter(bool), st.data())
def test_any_single_bit_flip_is_detected(payload, data):
    """Flip one bit anywhere in the frame: the decoder must raise, not
    deliver altered content."""
    buffer = bytearray(encode_frame(T_CONTROL, payload))
    position = data.draw(st.integers(0, len(buffer) - 1))
    bit = data.draw(st.integers(0, 7))
    buffer[position] ^= 1 << bit
    assembler = FrameAssembler()
    assembler.feed(bytes(buffer))
    try:
        frame = assembler.next_frame()
    except FrameError:
        return  # magic / type / length / CRC check fired
    if frame is None:
        # A length-field flip can make the frame look incomplete; EOF
        # then reports the torn remainder instead of delivering it.
        with pytest.raises(FrameError):
            assembler.check_eof()
        return
    raise AssertionError(f"bit flip at byte {position} went undetected: {frame}")


@settings(max_examples=40, deadline=None)
@given(types, payloads, st.data())
def test_torn_frame_raises_at_eof(ftype, payload, data):
    """A peer dying mid-write leaves a prefix; check_eof must flag it."""
    buffer = encode_frame(ftype, payload)
    cut = data.draw(st.integers(1, len(buffer) - 1))
    assembler = FrameAssembler()
    assembler.feed(buffer[:cut])
    assert assembler.next_frame() is None
    with pytest.raises(FrameError, match="torn"):
        assembler.check_eof()


def test_bad_magic_poisons_assembler():
    assembler = FrameAssembler()
    assembler.feed(b"XX" + encode_frame(T_HEARTBEAT, b"")[2:])
    with pytest.raises(FrameError, match="desynced"):
        assembler.next_frame()
    # Poisoned: the stream can never be trusted again.
    with pytest.raises(FrameError, match="poisoned"):
        assembler.feed(b"more")
    with pytest.raises(FrameError, match="poisoned"):
        assembler.next_frame()


def test_oversized_length_field_rejected_without_allocation():
    header = FRAME_HEADER.pack(MAGIC, T_TENSORS, 0, MAX_FRAME_BYTES + 1, 0)
    assembler = FrameAssembler()
    assembler.feed(header)
    with pytest.raises(FrameError, match="bound"):
        assembler.next_frame()


# ----------------------------------------------------------------------
# Control payloads
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(["sync", "explore", "minibatch", "shutdown", "ok", "crash"]),
    st.integers(-(2**62), 2**62),
)
def test_control_round_trip(kind, seq):
    payload = {"result": [1.5, None], "nested": {"rng": (2, 3)}}
    assert decode_control(encode_control(kind, seq, payload)) == (kind, seq, payload)


def test_truncated_control_payload_raises():
    data = encode_control("explore", 7, {"x": 1})
    with pytest.raises(FrameError, match="undecodable"):
        decode_control(data[: len(data) - 3])


def test_malformed_control_shape_raises():
    with pytest.raises(FrameError, match="malformed"):
        decode_control(pickle.dumps((123, "not-an-int-seq", None)))


# ----------------------------------------------------------------------
# Tensor wire encoding
# ----------------------------------------------------------------------
SHAPES = [(3, 4), (7,), ()]


def _arrays(seed, scale=1.0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) * scale for shape in SHAPES]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31), st.integers(0, 50), st.integers(-1, 5))
def test_f64_wire_round_trips_exact_bits(seed, episode, round_index):
    arrays = _arrays(seed)
    payload = encode_tensors(arrays, seq=seed % 997, episode=episode,
                             round_index=round_index)
    assert len(payload) == payload_nbytes(SHAPES, "float64")
    message = decode_tensors(payload, SHAPES)
    assert (message.seq, message.episode, message.round) == (
        seed % 997, episode, round_index,
    )
    assert message.wire_dtype == "float64"
    for sent, got in zip(arrays, message.arrays):
        assert got.dtype == np.float64
        assert np.array_equal(sent, got)  # exact bytes, not approx


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31), st.floats(1e-6, 1e6))
def test_f32_wire_error_within_half_ulp(seed, scale):
    """float32 narrowing: |x - rt(x)| <= 2**-24 * |x| for in-range x —
    half an ulp of the 24-bit significand, the bound DESIGN § 6f and the
    wire-module docstring advertise."""
    arrays = _arrays(seed, scale=scale)
    payload = encode_tensors(arrays, seq=1, wire_dtype="float32")
    assert len(payload) == payload_nbytes(SHAPES, "float32")
    message = decode_tensors(payload, SHAPES)
    assert message.wire_dtype == "float32"
    for sent, got in zip(arrays, message.arrays):
        assert got.dtype == np.float64  # widened back for the trainer
        assert np.all(np.abs(sent - got) <= 2.0**-24 * np.abs(sent))


def test_f32_payload_is_half_the_bytes():
    f64 = payload_nbytes(SHAPES, "float64") - TENSOR_HEADER.size
    f32 = payload_nbytes(SHAPES, "float32") - TENSOR_HEADER.size
    assert f32 * 2 == f64


def test_layout_mismatch_raises():
    payload = encode_tensors(_arrays(0), seq=1)
    with pytest.raises(FrameError, match="agreed layout"):
        decode_tensors(payload, [(3, 4), (7,)])  # one array short
    with pytest.raises(FrameError, match="shorter than"):
        decode_tensors(payload[: TENSOR_HEADER.size - 1], SHAPES)


def test_unknown_wire_dtype_code_raises():
    payload = bytearray(encode_tensors(_arrays(0), seq=1))
    payload[24] = 200  # dtype code byte
    with pytest.raises(FrameError, match="wire-dtype"):
        decode_tensors(bytes(payload), SHAPES)
    with pytest.raises(ValueError, match="wire_dtype"):
        encode_tensors(_arrays(0), seq=1, wire_dtype="float16")


# ----------------------------------------------------------------------
# Chaos plans are seed-deterministic
# ----------------------------------------------------------------------
def test_random_plan_is_deterministic_per_seed():
    kwargs = dict(
        num_employees=3,
        episodes=4,
        k_updates=2,
        drop_rate=0.2,
        duplicate_rate=0.2,
        corrupt_rate=0.1,
        delay_rate=0.1,
        partition_rate=0.05,
    )
    assert NetworkFaultPlan.random(11, **kwargs) == NetworkFaultPlan.random(
        11, **kwargs
    )
    assert NetworkFaultPlan.random(11, **kwargs) != NetworkFaultPlan.random(
        12, **kwargs
    )
