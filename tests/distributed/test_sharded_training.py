"""Sharded-minibatch training gates (PR 9 tentpole, layer c).

``TrainConfig.shard_minibatch = S`` splits every employee's minibatch
into S row shards and recombines gradients with a fixed-order tree
reduce.  The contract under test:

* the sharded run is **bitwise identical across all four backends**
  (serial / thread / process / socket) — history floats AND checkpoint
  bytes — though legitimately different from the unsharded run (float
  addition is not associative; the mode is opt-in);
* the full instrumentation stack (sanitizer + tracer + profiler +
  lockwatch) is bitwise invisible on the sharded path, exactly as on
  the plain path (the instruments force the executor's tape
  re-dispatch, which must not change a single byte);
* hard worker death mid-sharded-round books like PR 5's crash
  bookkeeping: SIGKILL during the round's sample step matches the
  thread backend's injected crash byte-for-byte.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.agents import PPOConfig
from repro.distributed import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    StragglerFault,
    TrainConfig,
    build_trainer,
    save_checkpoint,
)
from repro.env import smoke_config

BACKENDS = ("serial", "thread", "process", "socket")


@pytest.fixture
def config():
    return smoke_config(seed=5, horizon=10, num_pois=15)


@pytest.fixture
def ppo():
    return PPOConfig(batch_size=10, epochs=1, learning_rate=1e-3)


def make_trainer(config, ppo, injector=None, **train_overrides):
    defaults = dict(
        num_employees=3, episodes=2, k_updates=2, seed=0, shard_minibatch=2
    )
    defaults.update(train_overrides)
    return build_trainer(
        "cews",
        config,
        train=TrainConfig(**defaults),
        ppo=ppo,
        fault_injector=injector,
    )


def curves(history):
    return (
        history.curve("kappa"),
        history.curve("policy_loss"),
        history.curve("extrinsic_reward"),
    )


def run_and_fingerprint(config, ppo, path, **overrides):
    trainer = make_trainer(config, ppo, **overrides)
    history = trainer.train()
    save_checkpoint(trainer, str(path))
    trainer.close()
    with np.load(str(path)) as archive:
        arrays = {key: archive[key].copy() for key in archive.files}
    return curves(history), arrays


def assert_fingerprints_equal(first, second, tag=""):
    curves_a, arrays_a = first
    curves_b, arrays_b = second
    assert curves_a == curves_b, tag
    assert sorted(arrays_a) == sorted(arrays_b), tag
    for key in arrays_a:
        assert arrays_a[key].dtype == arrays_b[key].dtype, (tag, key)
        assert np.array_equal(arrays_a[key], arrays_b[key]), (tag, key)


class TestShardedBitwiseAcrossBackends:
    def test_all_four_backends_identical(self, config, ppo, tmp_path):
        fingerprints = {
            backend: run_and_fingerprint(
                config, ppo, tmp_path / f"{backend}.npz", backend=backend
            )
            for backend in BACKENDS
        }
        for backend in BACKENDS[1:]:
            assert_fingerprints_equal(
                fingerprints["serial"], fingerprints[backend], backend
            )

    def test_four_way_shard_also_agrees(self, config, ppo, tmp_path):
        """S > worker count exercises the wave scheduler (each worker
        computes several shards per round)."""
        serial = run_and_fingerprint(
            config, ppo, tmp_path / "s.npz", backend="serial", shard_minibatch=4
        )
        process = run_and_fingerprint(
            config, ppo, tmp_path / "p.npz", backend="process", shard_minibatch=4
        )
        assert_fingerprints_equal(serial, process, "4-way")

    def test_sharded_differs_from_unsharded_as_documented(
        self, config, ppo, tmp_path
    ):
        sharded = run_and_fingerprint(config, ppo, tmp_path / "sh.npz")
        plain = run_and_fingerprint(
            config, ppo, tmp_path / "un.npz", shard_minibatch=1
        )
        param_keys = [k for k in sharded[1] if k.startswith("agent.")]
        assert param_keys
        assert any(
            not np.array_equal(sharded[1][key], plain[1][key])
            for key in param_keys
        )


class TestShardedInstrumentationInvisible:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_full_stack_is_bitwise_invisible(self, config, ppo, tmp_path, backend):
        """Sanitizer + tracer + profiler + lockwatch over a sharded run:
        every instrument forces the executor's tape re-dispatch, and the
        run stays byte-identical to the uninstrumented one."""
        from repro.analysis import Sanitizer, lockwatch
        from repro.obs import OpProfiler, Tracer, trace_path_for

        baseline = run_and_fingerprint(config, ppo, tmp_path / "plain.npz")

        tracer = Tracer(trace_path_for(str(tmp_path / backend))).install()
        profiler = OpProfiler().enable()
        lockwatch.enable()
        try:
            with Sanitizer():
                instrumented = run_and_fingerprint(
                    config, ppo, tmp_path / f"{backend}.npz", backend=backend
                )
        finally:
            lockwatch.disable()
            profiler.disable()
            tracer.uninstall()
        assert_fingerprints_equal(baseline, instrumented, backend)
        assert tracer.records_emitted > 0


@pytest.mark.faults
class TestKillMidShardedMinibatch:
    def test_sigkill_mid_sharded_round_matches_thread_crash(self, config, ppo):
        """SIGKILL a worker parked at the sharded round's sample step.
        The chief books a crash, revives the worker, drops it from the
        round's shard compute pool, and the degraded episode matches the
        thread backend's injected-crash run byte-for-byte (PR 5's crash
        bookkeeping, extended to the sharded path)."""
        injector = FaultInjector(
            FaultPlan(
                events=(CrashFault(employee=1, episode=0, round=0, times=1),)
            )
        )
        reference = make_trainer(
            config,
            ppo,
            injector=injector,
            backend="thread",
            quorum_fraction=0.5,
            max_retries=0,
        )
        ref_history = reference.train()
        reference.close()

        # Process run: park employee 1 in before_task of the round-0
        # sample (RNG untouched), then SIGKILL it there.
        injector = FaultInjector(
            FaultPlan(
                events=(
                    StragglerFault(
                        employee=1, episode=0, round=0, delay=60.0, times=1
                    ),
                )
            )
        )
        trainer = make_trainer(
            config,
            ppo,
            injector=injector,
            backend="process",
            quorum_fraction=0.5,
            max_retries=0,
        )
        victim = trainer._proc_pool.pid(1)

        def kill_when_parked():
            time.sleep(1.0)  # explore is over; the worker sleeps in before_task
            os.kill(victim, signal.SIGKILL)

        killer = threading.Thread(target=kill_when_parked, daemon=True)
        killer.start()
        history = trainer.train()
        killer.join()
        respawned = trainer._proc_pool.pid(1)
        trainer.close()

        assert respawned != victim  # the worker really was respawned
        assert curves(history) == curves(ref_history)
        assert trainer.health.summary() == reference.health.summary()
        assert trainer.health.employee(1).crashes == 1
        assert trainer.health.employee(1).restarts == 1
