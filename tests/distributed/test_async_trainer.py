"""Tests for the asynchronous actor-learner trainer."""

import numpy as np
import pytest

from repro.agents import PPOConfig
from repro.distributed import AsyncConfig, build_async_trainer
from repro.env import smoke_config


@pytest.fixture
def config():
    return smoke_config(seed=5, horizon=8, num_pois=12)


@pytest.fixture
def ppo():
    return PPOConfig(batch_size=8, epochs=1, learning_rate=1e-3)


class TestAsyncConfig:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_actors", 0),
            ("episodes", 0),
            ("sync_every", 0),
            ("correction", "retrace"),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            AsyncConfig(**{field: value})


class TestAsyncLoop:
    def test_history_and_round_robin(self, config, ppo):
        trainer = build_async_trainer(
            "cews",
            config,
            async_config=AsyncConfig(num_actors=2, episodes=4, sync_every=2, seed=0),
            ppo=ppo,
        )
        history = trainer.train()
        assert len(history.logs) == 4
        assert [log.actor for log in history.logs] == [0, 1, 0, 1]
        assert all(np.isfinite(log.value_loss) for log in history.logs)

    def test_lag_grows_between_syncs(self, config, ppo):
        trainer = build_async_trainer(
            "dppo",
            config,
            async_config=AsyncConfig(num_actors=1, episodes=6, sync_every=3, seed=0),
            ppo=ppo,
        )
        history = trainer.train()
        lags = [log.lag for log in history.logs]
        # Sync at episodes 0 and 3: lag pattern 0,1,2,0,1,2.
        assert lags == [0, 1, 2, 0, 1, 2]

    def test_sync_every_one_keeps_lag_zero(self, config, ppo):
        trainer = build_async_trainer(
            "dppo",
            config,
            async_config=AsyncConfig(num_actors=1, episodes=3, sync_every=1, seed=0),
            ppo=ppo,
        )
        history = trainer.train()
        assert all(log.lag == 0 for log in history.logs)

    def test_learner_parameters_change(self, config, ppo):
        trainer = build_async_trainer(
            "dppo",
            config,
            async_config=AsyncConfig(num_actors=1, episodes=2, seed=0),
            ppo=ppo,
        )
        before = {
            k: v.copy() for k, v in trainer.learner.network.state_dict().items()
        }
        trainer.train()
        changed = any(
            not np.array_equal(v, before[k])
            for k, v in trainer.learner.network.state_dict().items()
        )
        assert changed

    def test_vtrace_rhos_logged(self, config, ppo):
        trainer = build_async_trainer(
            "dppo",
            config,
            async_config=AsyncConfig(
                num_actors=2, episodes=4, sync_every=4, correction="vtrace", seed=0
            ),
            ppo=ppo,
        )
        history = trainer.train()
        rhos = history.curve("rho_mean")
        assert all(0.0 < rho <= 1.0 + 1e-9 for rho in rhos)

    def test_no_correction_has_unit_rho(self, config, ppo):
        trainer = build_async_trainer(
            "dppo",
            config,
            async_config=AsyncConfig(
                num_actors=1, episodes=2, correction="none", seed=0
            ),
            ppo=ppo,
        )
        history = trainer.train()
        assert all(log.rho_mean == 1.0 for log in history.logs)

    def test_curiosity_trains_in_async_mode(self, config, ppo):
        trainer = build_async_trainer(
            "cews",
            config,
            async_config=AsyncConfig(num_actors=1, episodes=2, seed=0),
            ppo=ppo,
        )
        before = {
            k: v.copy() for k, v in trainer.learner.curiosity.state_dict().items()
        }
        trainer.train()
        changed = any(
            not np.array_equal(v, before[k])
            for k, v in trainer.learner.curiosity.state_dict().items()
        )
        assert changed

    def test_edics_rejected(self, config, ppo):
        with pytest.raises(ValueError, match="edics"):
            build_async_trainer("edics", config, ppo=ppo)
