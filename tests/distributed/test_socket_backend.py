"""Socket-backend tests: loopback bitwise identity, seeded network
chaos, heartbeat-detected death and external (remote) workers.

The contract under test (PR 6's tentpole): ``backend="socket"`` — the
same chief–employee protocol over framed TCP — is observationally
identical to the process backend for a given seed, and every network
failure mode (drops, duplicates, corruption, delays, partitions,
heartbeat loss) is either masked by retransmission/dedup or mapped onto
the *existing* crash/quorum/restart bookkeeping, never a hang and never
a silently wrong result.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.agents import PPOConfig
from repro.distributed import (
    CorruptFrameFault,
    CrashFault,
    DropFrameFault,
    FaultInjector,
    FaultPlan,
    NetworkFaultInjector,
    NetworkFaultPlan,
    PartitionFault,
    StragglerFault,
    TrainConfig,
    build_trainer,
    build_worker_factories,
    run_remote_worker,
    save_checkpoint,
)
from repro.env import smoke_config

from .test_process_backend import own_shm_segments

pytestmark = pytest.mark.transport


@pytest.fixture
def config():
    return smoke_config(seed=5, horizon=10, num_pois=15)


@pytest.fixture
def ppo():
    return PPOConfig(batch_size=10, epochs=1, learning_rate=1e-3)


def make_trainer(config, ppo, injector=None, net_injector=None, **train_overrides):
    defaults = dict(num_employees=3, episodes=2, k_updates=2, seed=0)
    defaults.update(train_overrides)
    return build_trainer(
        "cews",
        config,
        train=TrainConfig(**defaults),
        ppo=ppo,
        fault_injector=injector,
        net_fault_injector=net_injector,
    )


def curves(history):
    return (
        history.curve("kappa"),
        history.curve("policy_loss"),
        history.curve("extrinsic_reward"),
    )


def run_and_fingerprint(config, ppo, tmp_path, tag, **overrides):
    trainer = make_trainer(config, ppo, **overrides)
    history = trainer.train()
    path = tmp_path / f"{tag}.npz"
    save_checkpoint(trainer, str(path))
    trainer.close()
    with np.load(str(path)) as archive:
        arrays = {key: archive[key].copy() for key in archive.files}
    return curves(history), arrays, trainer


# ----------------------------------------------------------------------
# Bitwise identity over loopback TCP
# ----------------------------------------------------------------------
class TestSocketBitwise:
    def test_socket_matches_process_curves_and_checkpoint(
        self, config, ppo, tmp_path
    ):
        """History floats AND checkpoint bytes identical between the
        shared-memory pipe transport and loopback TCP."""
        ref_curves, ref_arrays, ref = run_and_fingerprint(
            config, ppo, tmp_path, "process", backend="process"
        )
        got_curves, got_arrays, trainer = run_and_fingerprint(
            config, ppo, tmp_path, "socket", backend="socket"
        )
        assert ref.health.healthy and trainer.health.healthy
        assert got_curves == ref_curves
        assert sorted(got_arrays) == sorted(ref_arrays)
        for key in ref_arrays:
            assert got_arrays[key].dtype == ref_arrays[key].dtype, key
            assert np.array_equal(got_arrays[key], ref_arrays[key]), key
        assert own_shm_segments() == []  # socket backend uses no slabs

    def test_float32_wire_is_explicit_lossy_opt_in(self, config, ppo, tmp_path):
        """`wire_dtype="float32"` still trains to completion (the
        trainer never sees NaN/inf) but is exempt from the bitwise
        contract — it exists for bandwidth, not comparability."""
        ref_curves, __, __ = run_and_fingerprint(
            config, ppo, tmp_path, "f64", backend="socket"
        )
        got_curves, __, trainer = run_and_fingerprint(
            config, ppo, tmp_path, "f32", backend="socket", wire_dtype="float32"
        )
        assert trainer.health.healthy
        assert len(got_curves[0]) == len(ref_curves[0]) == 2
        for series in got_curves:
            assert np.all(np.isfinite(series))
        # Same run to ~f32 precision, not to the bit.
        np.testing.assert_allclose(got_curves[0], ref_curves[0], rtol=1e-2, atol=1e-2)

    def test_fleet_registry_tracks_connections(self, config, ppo):
        trainer = make_trainer(config, ppo, backend="socket", episodes=1)
        transport = trainer._proc_pool.transport
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            fleet = transport.fleet()
            if len(fleet) == 3 and all(e["connected"] for e in fleet.values()):
                break
            time.sleep(0.05)
        fleet = transport.fleet()
        assert sorted(fleet) == [0, 1, 2]
        assert all(entry["connected"] for entry in fleet.values())
        assert all(entry["generation"] == 0 for entry in fleet.values())
        trainer.train()
        trainer.close()
        assert not any(e["connected"] for e in transport.fleet().values())


# ----------------------------------------------------------------------
# Seeded chaos: masked faults stay bitwise, partitions map onto quorum
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestSocketChaos:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chaos_matrix_masked_faults_stay_bitwise(
        self, config, ppo, tmp_path, seed
    ):
        """Drops, duplicates, corruption and delays on command frames are
        fully masked by retransmission + seq-dedup: the seeded run
        completes (no hangs) and is bitwise-identical to the fault-free
        process run."""
        ref_curves, ref_arrays, __ = run_and_fingerprint(
            config, ppo, tmp_path, "ref", backend="process"
        )
        plan = NetworkFaultPlan.random(
            seed,
            num_employees=3,
            episodes=2,
            k_updates=2,
            drop_rate=0.15,
            duplicate_rate=0.15,
            corrupt_rate=0.1,
            delay_rate=0.1,
            delay=0.05,
        )
        assert not plan.empty
        injector = NetworkFaultInjector(plan)
        got_curves, got_arrays, trainer = run_and_fingerprint(
            config, ppo, tmp_path, f"chaos{seed}", backend="socket",
            net_injector=injector,
        )
        assert injector.fired, "chaos plan never fired; the run proved nothing"
        assert trainer.health.healthy  # masked faults are invisible
        assert got_curves == ref_curves
        for key in ref_arrays:
            assert np.array_equal(got_arrays[key], ref_arrays[key]), key

    def test_lost_gradient_payload_books_like_injected_crash(
        self, config, ppo
    ):
        """The reply arrives but the gradient TENSORS frame is lost: the
        round's contribution is dead, booked exactly like a worker crash
        in that round (same curves, same health summary)."""
        reference = make_trainer(
            config,
            ppo,
            injector=FaultInjector(
                FaultPlan(events=(CrashFault(employee=2, episode=0, round=1),))
            ),
            backend="thread",
            quorum_fraction=0.5,
            max_retries=0,
        )
        ref_history = reference.train()
        reference.close()

        net_injector = NetworkFaultInjector(
            NetworkFaultPlan(
                events=(
                    DropFrameFault(
                        employee=2,
                        op="tensors",
                        episode=0,
                        round=1,
                        direction="recv",
                    ),
                )
            )
        )
        trainer = make_trainer(
            config,
            ppo,
            net_injector=net_injector,
            backend="socket",
            quorum_fraction=0.5,
            max_retries=0,
            heartbeat_interval=0.2,
            heartbeat_timeout=2.0,
        )
        history = trainer.train()
        trainer.close()

        assert net_injector.fired_of(DropFrameFault)
        assert curves(history) == curves(ref_history)
        assert trainer.health.summary() == reference.health.summary()
        assert trainer.health.employee(2).crashes == 1
        assert trainer.health.degraded_rounds == 1

    def test_partition_mid_minibatch_books_like_crash(self, config, ppo):
        """A partition that opens on the MINIBATCH command of episode 0
        round 1: silence, heartbeat loss, WorkerDied — the same
        bookkeeping (and bytes) as an injected crash in that round."""
        reference = make_trainer(
            config,
            ppo,
            injector=FaultInjector(
                FaultPlan(events=(CrashFault(employee=2, episode=0, round=1),))
            ),
            backend="thread",
            quorum_fraction=0.5,
            max_retries=0,
        )
        ref_history = reference.train()
        reference.close()

        net_injector = NetworkFaultInjector(
            NetworkFaultPlan(
                events=(
                    PartitionFault(
                        employee=2, duration=2.5, op="minibatch",
                        episode=0, round=1,
                    ),
                )
            )
        )
        trainer = make_trainer(
            config,
            ppo,
            net_injector=net_injector,
            backend="socket",
            quorum_fraction=0.5,
            max_retries=0,
            heartbeat_interval=0.2,
            heartbeat_timeout=1.0,
        )
        history = trainer.train()
        trainer.close()

        assert net_injector.fired_of(PartitionFault)
        assert curves(history) == curves(ref_history)
        assert trainer.health.summary() == reference.health.summary()
        assert trainer.health.employee(2).crashes == 1
        assert trainer.health.employee(2).restarts == 1
        assert trainer.health.degraded_rounds == 1

    def test_heartbeat_loss_matches_sigkill_bookkeeping(self, config, ppo):
        """Pure heartbeat-detected death: the connection stays attached
        but a partition silences it mid-EXPLORE.  TrainerHealth must
        match the PR 5 thread-backend crash reference exactly — the
        degraded-quorum recovery path does not care *how* the worker
        died."""
        reference = make_trainer(
            config,
            ppo,
            injector=FaultInjector(
                FaultPlan(events=(CrashFault(employee=1, episode=0, times=1),))
            ),
            backend="thread",
            quorum_fraction=0.5,
            max_retries=0,
        )
        ref_history = reference.train()
        reference.close()

        net_injector = NetworkFaultInjector(
            NetworkFaultPlan(
                events=(
                    PartitionFault(employee=1, duration=2.5, op="explore",
                                   episode=0),
                )
            )
        )
        trainer = make_trainer(
            config,
            ppo,
            net_injector=net_injector,
            backend="socket",
            quorum_fraction=0.5,
            max_retries=0,
            heartbeat_interval=0.2,
            heartbeat_timeout=1.0,
        )
        history = trainer.train()
        trainer.close()

        assert curves(history) == curves(ref_history)
        assert trainer.health.summary() == reference.health.summary()
        assert trainer.health.employee(1).crashes == 1
        assert trainer.health.employee(1).restarts == 1
        assert trainer.health.degraded_rounds == 2

    def test_sigkill_mid_explore_over_socket(self, config, ppo):
        """Hard worker death over TCP (EOF, then reconnect-grace expiry):
        same recovery as the process backend's SIGKILL path."""
        reference = make_trainer(
            config,
            ppo,
            injector=FaultInjector(
                FaultPlan(events=(CrashFault(employee=1, episode=0, times=1),))
            ),
            backend="thread",
            quorum_fraction=0.5,
            max_retries=0,
        )
        ref_history = reference.train()
        reference.close()

        injector = FaultInjector(
            FaultPlan(
                events=(StragglerFault(employee=1, episode=0, delay=60.0, times=1),)
            )
        )
        trainer = make_trainer(
            config,
            ppo,
            injector=injector,
            backend="socket",
            quorum_fraction=0.5,
            max_retries=0,
            heartbeat_interval=0.2,
            heartbeat_timeout=1.0,
        )
        # Shorten the reconnect grace (defaults to connect_timeout) so a
        # never-returning worker is declared dead quickly.
        trainer._proc_pool.transport.connect_timeout = 1.0
        victim = trainer._proc_pool.pid(1)

        def kill_when_parked():
            time.sleep(1.0)  # the worker is asleep in before_task by now
            os.kill(victim, signal.SIGKILL)

        killer = threading.Thread(target=kill_when_parked, daemon=True)
        killer.start()
        history = trainer.train()
        killer.join()
        respawned = trainer._proc_pool.pid(1)
        trainer.close()

        assert respawned != victim
        assert curves(history) == curves(ref_history)
        assert trainer.health.summary() == reference.health.summary()
        assert trainer.health.employee(1).crashes == 1
        assert trainer.health.employee(1).restarts == 1


# ----------------------------------------------------------------------
# External (remote) workers
# ----------------------------------------------------------------------
class TestRemoteWorkers:
    def test_remote_worker_run_matches_process_backend(
        self, config, ppo, tmp_path
    ):
        """One employee served by `run_remote_worker` dialing in over
        loopback (the `python -m repro worker` path, in-process): the
        run is bitwise-identical to the all-forked process backend."""
        ref_curves, ref_arrays, __ = run_and_fingerprint(
            config, ppo, tmp_path, "ref", backend="process"
        )

        trainer = make_trainer(
            config, ppo, backend="socket", remote_workers=1
        )
        transport = trainer._proc_pool.transport
        agent_factory, env_factory = build_worker_factories(
            "cews", config, ppo=ppo, seed=0
        )
        worker = threading.Thread(
            target=run_remote_worker,
            kwargs=dict(
                index=2,
                address=transport.address,
                token=transport.token,
                agent_factory=agent_factory,
                env_factory=env_factory,
                connect_timeout=30.0,
            ),
            daemon=True,
        )
        worker.start()
        history = trainer.train()
        path = tmp_path / "remote.npz"
        save_checkpoint(trainer, str(path))
        assert trainer._proc_pool.pid(2) == -1  # never forked
        trainer.close()
        worker.join(timeout=30)
        assert not worker.is_alive(), "remote worker never saw SHUTDOWN"

        assert curves(history) == ref_curves
        with np.load(str(path)) as archive:
            for key in ref_arrays:
                assert np.array_equal(archive[key], ref_arrays[key]), key

    def test_bad_token_refused(self, config, ppo):
        from repro.distributed.transport import ChannelClosed

        trainer = make_trainer(
            config, ppo, backend="socket", remote_workers=1, episodes=1
        )
        transport = trainer._proc_pool.transport
        agent_factory, env_factory = build_worker_factories(
            "cews", config, ppo=ppo, seed=0
        )
        with pytest.raises(ChannelClosed, match="refused"):
            run_remote_worker(
                index=2,
                address=transport.address,
                token="not-the-token",
                agent_factory=agent_factory,
                env_factory=env_factory,
                connect_timeout=2.0,
            )
        trainer.close()
