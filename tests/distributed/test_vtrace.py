"""Tests for the V-trace off-policy correction."""

import numpy as np
import pytest

from repro.agents.rollout import discounted_returns
from repro.distributed import vtrace_targets


def on_policy_inputs(horizon=6, gamma=0.9, seed=0):
    rng = np.random.default_rng(seed)
    log_probs = rng.normal(-1.0, 0.3, size=horizon)
    rewards = rng.normal(size=horizon)
    values = rng.normal(size=horizon)
    dones = np.zeros(horizon, dtype=bool)
    dones[-1] = True
    return log_probs, rewards, values, dones, gamma


class TestOnPolicyReduction:
    def test_on_policy_targets_equal_discounted_returns(self):
        """With π = μ and no truncation active, v_t reduces to the
        Monte-Carlo return (λ=1 TD(λ) with full importance weights)."""
        log_probs, rewards, values, dones, gamma = on_policy_inputs()
        trace = vtrace_targets(
            behaviour_log_probs=log_probs,
            target_log_probs=log_probs,
            rewards=rewards,
            values=values,
            dones=dones,
            gamma=gamma,
        )
        expected = discounted_returns(rewards, dones, gamma, 0.0)
        np.testing.assert_allclose(trace.vs, expected, atol=1e-10)

    def test_on_policy_rhos_are_one(self):
        log_probs, rewards, values, dones, gamma = on_policy_inputs()
        trace = vtrace_targets(
            log_probs, log_probs, rewards, values, dones, gamma
        )
        np.testing.assert_allclose(trace.rhos, 1.0)

    def test_on_policy_advantage_is_td_against_vs(self):
        log_probs, rewards, values, dones, gamma = on_policy_inputs()
        trace = vtrace_targets(
            log_probs, log_probs, rewards, values, dones, gamma
        )
        next_vs = np.append(trace.vs[1:], 0.0)
        next_vs[dones] = 0.0
        expected = rewards + gamma * next_vs - values
        np.testing.assert_allclose(trace.advantages, expected, atol=1e-10)


class TestOffPolicyBehaviour:
    def test_rhos_truncated(self):
        behaviour = np.array([-2.0, -2.0])
        target = np.array([0.0, -4.0])  # ratios e^2 and e^-2
        trace = vtrace_targets(
            behaviour,
            target,
            rewards=np.zeros(2),
            values=np.zeros(2),
            dones=np.array([False, True]),
            gamma=0.9,
            clip_rho=1.0,
        )
        assert trace.rhos[0] == pytest.approx(1.0)  # truncated from e^2
        assert trace.rhos[1] == pytest.approx(np.exp(-2.0))

    def test_zero_weight_trajectory_keeps_targets_at_values(self):
        """If the target policy never takes these actions (ratio ~ 0),
        v_t collapses to V(s_t) — no correction-free bootstrapping."""
        behaviour = np.zeros(4)
        target = np.full(4, -50.0)
        values = np.array([1.0, -2.0, 0.5, 3.0])
        trace = vtrace_targets(
            behaviour,
            target,
            rewards=np.ones(4),
            values=values,
            dones=np.array([False, False, False, True]),
            gamma=0.9,
        )
        np.testing.assert_allclose(trace.vs, values, atol=1e-15)
        np.testing.assert_allclose(trace.advantages, 0.0, atol=1e-15)

    def test_done_cuts_bootstrap(self):
        log_probs = np.zeros(3)
        rewards = np.array([1.0, 1.0, 1.0])
        values = np.zeros(3)
        dones = np.array([True, True, True])
        trace = vtrace_targets(
            log_probs, log_probs, rewards, values, dones, gamma=0.9
        )
        np.testing.assert_allclose(trace.vs, [1.0, 1.0, 1.0])

    def test_bootstrap_value_used_when_truncated(self):
        log_probs = np.zeros(1)
        trace = vtrace_targets(
            log_probs,
            log_probs,
            rewards=np.array([1.0]),
            values=np.array([0.0]),
            dones=np.array([False]),
            gamma=0.5,
            bootstrap_value=4.0,
        )
        np.testing.assert_allclose(trace.vs, [3.0])


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            vtrace_targets(
                np.zeros(3), np.zeros(2), np.zeros(2), np.zeros(2),
                np.zeros(2, dtype=bool), 0.9,
            )

    def test_bad_gamma(self):
        z = np.zeros(2)
        with pytest.raises(ValueError, match="gamma"):
            vtrace_targets(z, z, z, z, np.zeros(2, dtype=bool), 0.0)

    def test_bad_clips(self):
        z = np.zeros(2)
        with pytest.raises(ValueError, match="clip"):
            vtrace_targets(z, z, z, z, np.zeros(2, dtype=bool), 0.9, clip_rho=0.0)


class TestVTraceProperties:
    """Hypothesis invariants of the V-trace computation."""

    def test_property_on_policy_equivalence(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from hypothesis.extra.numpy import arrays

        @settings(max_examples=30, deadline=None)
        @given(
            arrays(np.float64, 8, elements=st.floats(-3, 0, allow_nan=False)),
            arrays(np.float64, 8, elements=st.floats(-2, 2, allow_nan=False)),
            arrays(np.float64, 8, elements=st.floats(-2, 2, allow_nan=False)),
            st.floats(0.5, 1.0),
        )
        def check(log_probs, rewards, values, gamma):
            dones = np.zeros(8, dtype=bool)
            dones[-1] = True
            trace = vtrace_targets(
                log_probs, log_probs, rewards, values, dones, gamma
            )
            expected = discounted_returns(rewards, dones, gamma, 0.0)
            np.testing.assert_allclose(trace.vs, expected, atol=1e-8)

        check()

    def test_property_rhos_bounded_by_clip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from hypothesis.extra.numpy import arrays

        @settings(max_examples=30, deadline=None)
        @given(
            arrays(np.float64, 6, elements=st.floats(-4, 0, allow_nan=False)),
            arrays(np.float64, 6, elements=st.floats(-4, 0, allow_nan=False)),
            st.floats(0.2, 2.0),
        )
        def check(behaviour, target, clip_rho):
            trace = vtrace_targets(
                behaviour,
                target,
                rewards=np.zeros(6),
                values=np.zeros(6),
                dones=np.array([False] * 5 + [True]),
                gamma=0.9,
                clip_rho=clip_rho,
            )
            assert np.all(trace.rhos <= clip_rho + 1e-12)
            assert np.all(trace.rhos >= 0)

        check()
