"""Process-backend tests: bitwise identity, fault parity, real worker
death and shared-memory hygiene.

The contract under test (PR 5's tentpole): ``backend="process"`` is
observationally identical to the serial and thread drivers — same
seeded histories, same checkpoints, same fault bookkeeping — while the
transport (pipes + shared-memory slabs) and the worker processes stay
invisible, and no ``/dev/shm`` segment ever outlives the trainer.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro
from repro.agents import PPOConfig
from repro.distributed import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    SHM_PREFIX,
    SlabStale,
    StragglerFault,
    TensorSlab,
    TrainConfig,
    build_trainer,
    load_checkpoint,
    save_checkpoint,
)
from repro.distributed.shm import slab_name
from repro.env import smoke_config


@pytest.fixture
def config():
    return smoke_config(seed=5, horizon=10, num_pois=15)


@pytest.fixture
def ppo():
    return PPOConfig(batch_size=10, epochs=1, learning_rate=1e-3)


def make_trainer(config, ppo, injector=None, **train_overrides):
    defaults = dict(num_employees=3, episodes=2, k_updates=2, seed=0)
    defaults.update(train_overrides)
    return build_trainer(
        "cews",
        config,
        train=TrainConfig(**defaults),
        ppo=ppo,
        fault_injector=injector,
    )


def curves(history):
    return (
        history.curve("kappa"),
        history.curve("policy_loss"),
        history.curve("extrinsic_reward"),
    )


def own_shm_segments():
    """``/dev/shm`` entries created by *this* process (the chief)."""
    prefix = f"{SHM_PREFIX}-{os.getpid()}-"
    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith(prefix))
    except FileNotFoundError:  # non-Linux: nothing to scan
        return []


# ----------------------------------------------------------------------
# Slab transport unit tests
# ----------------------------------------------------------------------
class TestTensorSlab:
    SHAPES = [(3, 4), (7,), ()]

    def test_round_trip_exact_bits(self):
        slab = TensorSlab.create(slab_name(0, "t"), self.SHAPES)
        try:
            rng = np.random.default_rng(0)
            arrays = [rng.standard_normal(shape) for shape in self.SHAPES]
            nbytes = slab.write(arrays, seq=3, episode=1, round_index=2)
            assert nbytes == slab.nbytes
            out = slab.read(expected_seq=3)
            for a, b in zip(arrays, out):
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)
            assert slab.header() == {
                "seq": 3,
                "episode": 1,
                "round": 2,
                "payload_elems": 12 + 7 + 1,
            }
        finally:
            slab.unlink()

    def test_stale_seq_detected(self):
        slab = TensorSlab.create(slab_name(1, "t"), [(2,)])
        try:
            slab.write([np.zeros(2)], seq=5)
            with pytest.raises(SlabStale):
                slab.read(expected_seq=6)
        finally:
            slab.unlink()

    def test_attach_sees_creator_writes(self):
        name = slab_name(2, "t")
        creator = TensorSlab.create(name, [(4,)])
        try:
            payload = np.arange(4, dtype=np.float64)
            creator.write([payload], seq=1)
            attached = TensorSlab.attach(name, [(4,)])
            try:
                assert np.array_equal(attached.read(expected_seq=1)[0], payload)
            finally:
                attached.close()
        finally:
            creator.unlink()

    def test_shape_mismatch_rejected(self):
        slab = TensorSlab.create(slab_name(3, "t"), [(2, 2)])
        try:
            with pytest.raises(ValueError):
                slab.write([np.zeros((3, 3))], seq=1)
            with pytest.raises(ValueError):
                slab.write([np.zeros((2, 2)), np.zeros(1)], seq=1)
        finally:
            slab.unlink()

    def test_unlink_idempotent_and_removes_segment(self):
        slab = TensorSlab.create(slab_name(4, "t"), [(8,)])
        name = slab.name
        assert name in own_shm_segments()
        slab.unlink()
        slab.unlink()  # second call is a no-op
        assert name not in own_shm_segments()


# ----------------------------------------------------------------------
# Bitwise identity across backends
# ----------------------------------------------------------------------
class TestProcessBackendBitwise:
    def test_process_matches_serial_and_thread(self, config, ppo, tmp_path):
        """History floats AND checkpoint contents identical across the
        serial, thread and process backends for one seed."""
        fingerprints = {}
        for backend in ("serial", "thread", "process"):
            trainer = make_trainer(config, ppo, backend=backend)
            history = trainer.train()
            path = tmp_path / f"{backend}.npz"
            save_checkpoint(trainer, str(path))
            trainer.close()
            with np.load(str(path)) as archive:
                arrays = {key: archive[key].copy() for key in archive.files}
            fingerprints[backend] = (curves(history), arrays)
            assert trainer.health.healthy

        ref_curves, ref_arrays = fingerprints["serial"]
        for backend in ("thread", "process"):
            got_curves, got_arrays = fingerprints[backend]
            assert got_curves == ref_curves, backend
            assert sorted(got_arrays) == sorted(ref_arrays)
            for key in ref_arrays:
                assert got_arrays[key].dtype == ref_arrays[key].dtype, key
                assert np.array_equal(got_arrays[key], ref_arrays[key]), (
                    backend,
                    key,
                )

    def test_process_checkpoint_resume_matches_serial(self, config, ppo, tmp_path):
        """A checkpoint saved mid-run restores into a process-backend
        trainer and continues bitwise-identically to the serial driver."""
        straight = make_trainer(config, ppo, backend="serial", episodes=2)
        straight_history = straight.train()
        straight.close()

        first = make_trainer(config, ppo, backend="serial", episodes=2)
        first.train(1)
        path = str(tmp_path / "mid.npz")
        save_checkpoint(first, path)
        first.close()

        resumed = make_trainer(config, ppo, backend="process", episodes=2)
        load_checkpoint(resumed, path)
        tail = resumed.train(1)
        final = {
            key: value.copy()
            for key, value in resumed.global_agent.state_dict().items()
        }
        resumed.close()

        assert curves(tail)[0] == [straight_history.curve("kappa")[1]]
        for key, value in straight.global_agent.state_dict().items():
            assert np.array_equal(value, final[key]), key


# ----------------------------------------------------------------------
# Fault parity with the thread backend
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestProcessBackendFaults:
    def test_process_injected_crash_matches_thread(self, config, ppo):
        """The forwarded FaultPlan fires inside the worker and maps onto
        the same crash/restart/degraded bookkeeping — and the
        degraded-quorum gradient rescale matches byte-for-byte."""
        outcomes = {}
        for backend in ("thread", "process"):
            injector = FaultInjector(
                FaultPlan(events=(CrashFault(employee=1, episode=0, times=100),))
            )
            trainer = make_trainer(
                config,
                ppo,
                injector=injector,
                backend=backend,
                quorum_fraction=0.5,
                max_retries=1,
            )
            history = trainer.train()
            trainer.close()
            outcomes[backend] = (curves(history), trainer.health.summary())

        assert outcomes["process"][0] == outcomes["thread"][0]
        assert outcomes["process"][1] == outcomes["thread"][1]
        assert outcomes["process"][1]["crashes"] == 2
        assert outcomes["process"][1]["restarts"] == 1
        assert outcomes["process"][1]["degraded_rounds"] == 2

    def test_process_injected_crash_gradient_round(self, config, ppo):
        injector = FaultInjector(
            FaultPlan(events=(CrashFault(employee=2, episode=0, round=1, times=100),))
        )
        trainer = make_trainer(
            config,
            ppo,
            injector=injector,
            backend="process",
            quorum_fraction=0.5,
            max_retries=0,
        )
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 2
        assert trainer.health.employee(2).crashes == 1
        assert trainer.health.degraded_rounds == 1

    def test_process_straggler_timeout_degrades(self, config, ppo):
        injector = FaultInjector(
            FaultPlan(events=(StragglerFault(employee=0, episode=0, delay=2.0),))
        )
        trainer = make_trainer(
            config,
            ppo,
            injector=injector,
            backend="process",
            quorum_fraction=0.5,
            employee_timeout=0.5,
            max_retries=0,
        )
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 2
        assert trainer.health.employee(0).timeouts >= 1
        assert trainer.health.degraded_episodes >= 1
        assert trainer.health.employee(0).restarts >= 1
        assert own_shm_segments() == []

    def test_process_sigkill_mid_explore_matches_thread_crash(self, config, ppo):
        """Hard worker death: SIGKILL a worker mid-EXPLORE.  The chief
        records a crash, respawns + re-seeds the worker from its RNG
        mirror, and the degraded-quorum episode matches the
        thread-backend injected-crash run byte-for-byte."""
        # Thread reference: one injected crash, employee 1, episode 0.
        injector = FaultInjector(
            FaultPlan(events=(CrashFault(employee=1, episode=0, times=1),))
        )
        reference = make_trainer(
            config,
            ppo,
            injector=injector,
            backend="thread",
            quorum_fraction=0.5,
            max_retries=0,
        )
        ref_history = reference.train()
        reference.close()

        # Process run: a long worker-side straggle parks employee 1 in
        # before_task (RNG untouched) so the SIGKILL lands mid-EXPLORE.
        injector = FaultInjector(
            FaultPlan(
                events=(StragglerFault(employee=1, episode=0, delay=60.0, times=1),)
            )
        )
        trainer = make_trainer(
            config,
            ppo,
            injector=injector,
            backend="process",
            quorum_fraction=0.5,
            max_retries=0,
        )
        victim = trainer._proc_pool.pid(1)

        def kill_when_parked():
            time.sleep(1.0)  # the worker is asleep in before_task by now
            os.kill(victim, signal.SIGKILL)

        killer = threading.Thread(target=kill_when_parked, daemon=True)
        killer.start()
        history = trainer.train()
        killer.join()
        respawned = trainer._proc_pool.pid(1)
        segments_before_close = own_shm_segments()
        trainer.close()

        assert respawned != victim  # the worker really was respawned
        assert curves(history) == curves(ref_history)
        assert trainer.health.summary() == reference.health.summary()
        assert trainer.health.employee(1).crashes == 1
        assert trainer.health.employee(1).restarts == 1
        assert trainer.health.degraded_rounds == 2
        # The crash did not leak segments: same slabs before close, none
        # after (the respawn reattached the existing slabs).
        assert len(segments_before_close) == 6  # 3 employees x (w, g)
        assert own_shm_segments() == []


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------
class TestProcessShmLifecycle:
    def test_no_segments_after_normal_close(self, config, ppo):
        trainer = make_trainer(config, ppo, backend="process", episodes=1)
        names = trainer._proc_pool.slab_names()
        assert len(names) == 6
        for name in names:
            assert name in own_shm_segments()
        trainer.train()
        trainer.close()
        assert own_shm_segments() == []

    def test_shm_flat_across_revive_cycles(self, config, ppo):
        """Regression: ``revive`` must eagerly unlink the stale slab pair
        when it allocates replacements — the ``/dev/shm`` segment count
        stays exactly flat across N revive cycles, then drops to zero."""
        trainer = make_trainer(config, ppo, backend="process", episodes=1)
        pool = trainer._proc_pool
        arrays = [p.data for p in trainer._param_tensors]
        assert len(own_shm_segments()) == 6
        for cycle in range(4):
            state = trainer.employees[1].rng.bit_generator.state
            pool.revive(1, arrays, state, episode=0)
            segments = own_shm_segments()
            assert len(segments) == 6, (
                f"revive cycle {cycle} leaked: {segments}"
            )
        history = trainer.train()
        trainer.close()
        assert len(history.logs) == 1
        assert own_shm_segments() == []

    def test_close_idempotent(self, config, ppo):
        trainer = make_trainer(config, ppo, backend="process", episodes=1)
        trainer.train()
        trainer.close()
        trainer.close()
        assert own_shm_segments() == []

    def test_no_segments_after_keyboard_interrupt(self, config, ppo, tmp_path):
        """SIGINT an entire process-backend run; the atexit hook must
        unlink every slab on the way out."""
        child_source = (
            "import time\n"
            "from repro.agents import PPOConfig\n"
            "from repro.distributed import TrainConfig, build_trainer\n"
            "from repro.env import smoke_config\n"
            "trainer = build_trainer(\n"
            "    'cews', smoke_config(seed=5, horizon=10, num_pois=15),\n"
            "    train=TrainConfig(num_employees=2, episodes=1, k_updates=1,\n"
            "                      seed=0, backend='process'),\n"
            "    ppo=PPOConfig(batch_size=10, epochs=1),\n"
            ")\n"
            "print('SLABS ' + ' '.join(trainer._proc_pool.slab_names()), flush=True)\n"
            "print('READY', flush=True)\n"
            "while True:\n"
            "    time.sleep(0.1)\n"
        )
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-c", child_source],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        slabs = []
        try:
            deadline = time.monotonic() + 60
            for line in child.stdout:
                if line.startswith("SLABS "):
                    slabs = line.split()[1:]
                if line.strip() == "READY":
                    break
                assert time.monotonic() < deadline, "child never became ready"
            assert slabs, "child reported no slabs"
            for name in slabs:
                assert os.path.exists(os.path.join("/dev/shm", name)), name
            child.send_signal(signal.SIGINT)
            child.wait(timeout=60)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)
            child.stdout.close()
        for name in slabs:
            assert not os.path.exists(os.path.join("/dev/shm", name)), (
                f"segment {name} leaked after KeyboardInterrupt"
            )
