"""Unit tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.distributed import (
    CheckpointFault,
    CorruptionFault,
    CrashFault,
    FaultInjector,
    FaultPlan,
    InjectedCheckpointInterrupt,
    InjectedCrash,
    StragglerFault,
)
from repro.distributed.faults import EXPLORE_ROUND

pytestmark = pytest.mark.faults


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.empty
        assert plan.of_type(CrashFault) == []

    def test_rejects_unknown_specs(self):
        with pytest.raises(TypeError):
            FaultPlan(events=("not a fault",))

    def test_corruption_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            CorruptionFault(0, 0, mode="garbage")
        with pytest.raises(ValueError, match="buffer"):
            CorruptionFault(0, 0, buffer="unknown")

    def test_random_plan_is_seed_deterministic(self):
        kwargs = dict(
            num_employees=4,
            episodes=10,
            k_updates=2,
            crash_rate=0.3,
            straggler_rate=0.3,
            corrupt_rate=0.3,
            checkpoint_interrupts=(1, 3),
        )
        first = FaultPlan.random(seed=7, **kwargs)
        second = FaultPlan.random(seed=7, **kwargs)
        other = FaultPlan.random(seed=8, **kwargs)
        assert first.events == second.events
        assert first.events != other.events
        assert len(first.of_type(CheckpointFault)) == 2

    def test_random_plan_zero_rates_is_empty(self):
        plan = FaultPlan.random(seed=0, num_employees=4, episodes=10)
        assert plan.empty


class TestInjectorCrash:
    def test_crash_fires_on_matching_cell_only(self):
        plan = FaultPlan(events=(CrashFault(employee=1, episode=2),))
        injector = FaultInjector(plan)
        injector.before_task(0, 2, EXPLORE_ROUND)  # different employee
        injector.before_task(1, 1, EXPLORE_ROUND)  # different episode
        injector.before_task(1, 2, 0)  # different round
        with pytest.raises(InjectedCrash):
            injector.before_task(1, 2, EXPLORE_ROUND)
        assert len(injector.fired_of(CrashFault)) == 1

    def test_transient_crash_succeeds_on_retry(self):
        plan = FaultPlan(events=(CrashFault(0, 0, times=1),))
        injector = FaultInjector(plan)
        with pytest.raises(InjectedCrash):
            injector.before_task(0, 0, EXPLORE_ROUND)
        injector.before_task(0, 0, EXPLORE_ROUND)  # retry passes

    def test_hard_crash_fires_repeatedly(self):
        plan = FaultPlan(events=(CrashFault(0, 0, times=3),))
        injector = FaultInjector(plan)
        for __ in range(3):
            with pytest.raises(InjectedCrash):
                injector.before_task(0, 0, EXPLORE_ROUND)
        injector.before_task(0, 0, EXPLORE_ROUND)


class TestInjectorStraggle:
    def test_straggler_sleeps_injected_delay(self):
        slept = []
        plan = FaultPlan(events=(StragglerFault(0, 0, delay=0.25),))
        injector = FaultInjector(plan, sleep=slept.append)
        injector.before_task(0, 0, EXPLORE_ROUND)
        assert slept == [0.25]
        injector.before_task(0, 0, EXPLORE_ROUND)  # times=1: no second sleep
        assert slept == [0.25]

    def test_straggle_then_crash_same_cell(self):
        slept = []
        plan = FaultPlan(
            events=(StragglerFault(0, 0, delay=0.1), CrashFault(0, 0))
        )
        injector = FaultInjector(plan, sleep=slept.append)
        with pytest.raises(InjectedCrash):
            injector.before_task(0, 0, EXPLORE_ROUND)
        assert slept == [0.1]


class TestInjectorCorrupt:
    def test_nan_corruption_mutates_first_array(self):
        plan = FaultPlan(events=(CorruptionFault(0, 0, round=1, mode="nan"),))
        injector = FaultInjector(plan)
        arrays = [np.ones(3), np.ones(2)]
        injector.corrupt_arrays(0, 0, 1, arrays, "policy")
        assert np.isnan(arrays[0]).all()
        np.testing.assert_array_equal(arrays[1], np.ones(2))

    def test_explode_corruption_scales_all_arrays(self):
        plan = FaultPlan(events=(CorruptionFault(0, 0, round=0, mode="explode"),))
        injector = FaultInjector(plan)
        arrays = [np.ones(3), np.ones(2)]
        injector.corrupt_arrays(0, 0, 0, arrays, "policy")
        np.testing.assert_array_equal(arrays[0], np.full(3, 1e12))

    def test_buffer_selector_respected(self):
        plan = FaultPlan(events=(CorruptionFault(0, 0, round=0, buffer="curiosity"),))
        injector = FaultInjector(plan)
        arrays = [np.ones(3)]
        injector.corrupt_arrays(0, 0, 0, arrays, "policy")
        np.testing.assert_array_equal(arrays[0], np.ones(3))
        injector.corrupt_arrays(0, 0, 0, arrays, "curiosity")
        assert np.isnan(arrays[0]).all()

    def test_no_match_no_mutation(self):
        injector = FaultInjector(FaultPlan())
        arrays = [np.ones(3)]
        injector.corrupt_arrays(0, 0, 0, arrays, "policy")
        np.testing.assert_array_equal(arrays[0], np.ones(3))


class TestInjectorCheckpointInterrupt:
    def test_interrupt_fires_on_scheduled_save_index(self, tmp_path):
        plan = FaultPlan(events=(CheckpointFault(save_index=1, truncate=False),))
        injector = FaultInjector(plan)
        target = tmp_path / "t.tmp"
        target.write_bytes(b"x" * 100)
        injector.on_checkpoint_write(str(target))  # save #0: fine
        with pytest.raises(InjectedCheckpointInterrupt):
            injector.on_checkpoint_write(str(target))  # save #1 dies
        injector.on_checkpoint_write(str(target))  # save #2: fine

    def test_interrupt_truncates_partial_write(self, tmp_path):
        plan = FaultPlan(events=(CheckpointFault(save_index=0, truncate=True),))
        injector = FaultInjector(plan)
        target = tmp_path / "t.tmp"
        target.write_bytes(b"x" * 100)
        with pytest.raises(InjectedCheckpointInterrupt):
            injector.on_checkpoint_write(str(target))
        assert target.stat().st_size < 100
