"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env import CrowdsensingEnv, ScenarioConfig, smoke_config
from repro.experiments.scales import Scale


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_config() -> ScenarioConfig:
    """A very small scenario used across env/agent tests."""
    return smoke_config(seed=3, horizon=12, num_pois=12, num_workers=2)


@pytest.fixture
def tiny_env(tiny_config) -> CrowdsensingEnv:
    return CrowdsensingEnv(tiny_config, reward_mode="sparse")


@pytest.fixture
def tiny_scale() -> Scale:
    """A scale preset small enough for experiment-runner tests."""
    return Scale(
        name="smoke",  # reuses smoke sweep-value tables
        grid=8,
        size=8.0,
        num_pois=15,
        num_workers=2,
        num_stations=1,
        horizon=10,
        energy_budget=6.0,
        episodes=2,
        num_employees=2,
        k_updates=1,
        batch_size=10,
        eval_episodes=1,
    )


def finite_difference_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


@pytest.fixture
def gradcheck():
    """Fixture returning a gradient checker for Tensor-valued functions."""
    from repro import nn

    def check(fn, x: np.ndarray, atol: float = 1e-6) -> None:
        tensor = nn.Tensor(x.copy(), requires_grad=True)
        out = fn(tensor)
        out.backward()
        analytic = tensor.grad
        numeric = finite_difference_grad(lambda arr: fn(nn.Tensor(arr)).item(), x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)

    return check
