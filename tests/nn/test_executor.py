"""Execution-plan gates: fast path ≡ slow path, byte for byte.

The PR 9 executor promises that replaying a compiled plan (arena
buffers + fused elementwise chains) is *bitwise* indistinguishable from
walking the autograd tape, and that the fast path silently steps aside
— re-dispatching through the patchable tape — the moment any instrument
(sanitizer, tracer, profiler) is installed.  These tests pin both
halves, plus the escape rules: nothing a caller can reach from
``Planner.step`` may alias arena storage.
"""

import os
import pickle

import numpy as np
import pytest

from repro import nn
from repro.agents import CEWSAgent, PPOConfig
from repro.agents.ppo import make_ppo_planner, ppo_step
from repro.env import CrowdsensingEnv, smoke_config
from repro.nn import Planner, alloc_stats, fast_path_allowed, is_arena_backed
from repro.nn import reset_alloc_stats


@pytest.fixture(scope="module")
def workload():
    """The CEWS PPO minibatch workload (the hot path the plan exists for)."""
    config = smoke_config(seed=3, horizon=40)
    agent = CEWSAgent(config, ppo=PPOConfig(batch_size=16, epochs=1), seed=0)
    env = CrowdsensingEnv(config, reward_mode="sparse", scenario=agent.scenario)
    buffer, __ = agent.collect_episode(env, np.random.default_rng(0))
    batch = next(iter(buffer.minibatches(16, np.random.default_rng(0))))
    return agent, batch


def grads_of(network):
    return [p.grad.copy() for p in network.parameters()]


def tape_reference(agent, batch):
    agent.network.zero_grad()
    stats = ppo_step(agent.network, batch, agent.ppo)
    return stats, grads_of(agent.network)


class TestPlanEqualsTape:
    def test_planned_update_matches_tape_bitwise(self, workload):
        agent, batch = workload
        ref_stats, ref_grads = tape_reference(agent, batch)

        planner = make_ppo_planner(agent.network, agent.ppo)
        for step in range(3):  # build + validate, then two pure replays
            agent.network.zero_grad()
            stats = ppo_step(agent.network, batch, agent.ppo, planner=planner)
            assert planner.last_path == "plan", (step, planner.last_reason)
            assert stats == ref_stats
            for got, want in zip(grads_of(agent.network), ref_grads):
                assert got.tobytes() == want.tobytes()

    def test_cews_workload_never_falls_back(self, workload):
        """Every op the CEWS PPO update emits has a plan kernel: after the
        one build, repeated steps are all plan replays (the no-fallback
        acceptance gate — an unsupported op would silently eat the 2x)."""
        agent, batch = workload
        planner = make_ppo_planner(agent.network, agent.ppo)
        for __ in range(5):
            agent.network.zero_grad()
            ppo_step(agent.network, batch, agent.ppo, planner=planner)
        assert planner.stats["built"] == 1
        assert planner.stats["plan_runs"] == 5
        assert planner.stats["tape_runs"] == 0
        assert planner.stats["unsupported"] == 0
        assert planner.stats["validation_failed"] == 0

    def test_ablations_also_match_tape(self, workload):
        """Arena-off and fusion-off plans hold the same byte contract."""
        agent, batch = workload
        __, ref_grads = tape_reference(agent, batch)
        for arena, fuse in ((False, True), (True, False), (False, False)):
            planner = make_ppo_planner(agent.network, agent.ppo, arena=arena, fuse=fuse)
            agent.network.zero_grad()
            ppo_step(agent.network, batch, agent.ppo, planner=planner)
            assert planner.last_path == "plan", (arena, fuse, planner.last_reason)
            for got, want in zip(grads_of(agent.network), ref_grads):
                assert got.tobytes() == want.tobytes()

    def test_unpickled_batch_builds_a_plan(self, workload):
        """Process-worker shard payloads arrive unpickled, so every input
        array is a view of a pickle buffer; the plan must still resolve
        them (buffer-identity seeding) instead of rejecting the program."""
        agent, batch = workload
        __, ref_grads = tape_reference(agent, batch)
        planner = make_ppo_planner(agent.network, agent.ppo)
        agent.network.zero_grad()
        ppo_step(
            agent.network, pickle.loads(pickle.dumps(batch)), agent.ppo,
            planner=planner,
        )
        assert planner.last_path == "plan", planner.last_reason
        assert planner.stats["unsupported"] == 0
        for got, want in zip(grads_of(agent.network), ref_grads):
            assert got.tobytes() == want.tobytes()

    def test_new_shape_signature_builds_second_plan(self, workload):
        agent, __ = workload
        config = smoke_config(seed=3, horizon=40)
        env = CrowdsensingEnv(config, reward_mode="sparse", scenario=agent.scenario)
        buffer, __ = agent.collect_episode(env, np.random.default_rng(1))
        small = next(iter(buffer.minibatches(8, np.random.default_rng(0))))
        large = next(iter(buffer.minibatches(16, np.random.default_rng(0))))
        planner = make_ppo_planner(agent.network, agent.ppo)
        for batch in (small, large, small, large):
            agent.network.zero_grad()
            ppo_step(agent.network, batch, agent.ppo, planner=planner)
            assert planner.last_path == "plan", planner.last_reason
        assert planner.stats["built"] == 2
        assert planner.stats["plan_runs"] == 4


class TestInstrumentsForceTheTape:
    """Any observer must keep seeing every op: installed instruments flip
    ``fast_path_allowed`` and the planner re-dispatches through the tape
    — then returns to plan replay the moment the instrument leaves."""

    def test_profiler_forces_tape_then_plan_resumes(self, workload):
        from repro.obs import OpProfiler

        agent, batch = workload
        planner = make_ppo_planner(agent.network, agent.ppo)
        agent.network.zero_grad()
        ppo_step(agent.network, batch, agent.ppo, planner=planner)
        assert planner.last_path == "plan"

        profiler = OpProfiler().enable()
        try:
            ok, reason = fast_path_allowed()
            # The profiler patches Tensor.backward, so the pristine-surface
            # check trips before the explicit profiler-activity check.
            assert not ok and ("profiler" in reason or "patched" in reason)
            agent.network.zero_grad()
            ppo_step(agent.network, batch, agent.ppo, planner=planner)
            assert planner.last_path == "tape"
        finally:
            profiler.disable()
        agent.network.zero_grad()
        ppo_step(agent.network, batch, agent.ppo, planner=planner)
        assert planner.last_path == "plan"

    def test_tracer_forces_tape(self, workload, tmp_path):
        from repro.obs import Tracer, trace_path_for

        agent, batch = workload
        planner = make_ppo_planner(agent.network, agent.ppo)
        tracer = Tracer(trace_path_for(str(tmp_path / "t"))).install()
        try:
            agent.network.zero_grad()
            ppo_step(agent.network, batch, agent.ppo, planner=planner)
            assert planner.last_path == "tape"
            assert planner.last_reason == "tracer installed"
        finally:
            tracer.uninstall()

    def test_sanitizer_forces_tape(self, workload):
        from repro.analysis import Sanitizer

        agent, batch = workload
        planner = make_ppo_planner(agent.network, agent.ppo)
        with Sanitizer():
            agent.network.zero_grad()
            ppo_step(agent.network, batch, agent.ppo, planner=planner)
            assert planner.last_path == "tape"

    def test_env_escape_hatch_forces_tape(self, workload, monkeypatch):
        agent, batch = workload
        planner = make_ppo_planner(agent.network, agent.ppo)
        monkeypatch.setenv("REPRO_NO_PLANS", "1")
        agent.network.zero_grad()
        ppo_step(agent.network, batch, agent.ppo, planner=planner)
        assert planner.last_path == "tape"
        assert planner.last_reason == "REPRO_NO_PLANS"

    def test_no_grad_forces_tape_path_refusal(self):
        with nn.no_grad():
            ok, reason = fast_path_allowed()
        assert not ok and reason == "grad disabled"


class TestArenaEscapeSafety:
    """Everything ``Planner.step`` hands out must be caller-owned memory:
    outputs and parameter gradients are copied out of (or never placed
    in) the arena, so nothing observable is invalidated by the next
    step's slab reuse (the RPL018 contract, enforced dynamically)."""

    def test_outputs_and_grads_never_arena_backed(self, workload):
        agent, batch = workload
        planner = make_ppo_planner(agent.network, agent.ppo)
        for __ in range(2):
            agent.network.zero_grad()
            ppo_step(agent.network, batch, agent.ppo, planner=planner)
        assert planner.last_path == "plan"
        for param in agent.network.parameters():
            assert not is_arena_backed(param.grad)
            assert not is_arena_backed(param.data)

    def test_repeated_replays_do_not_corrupt_results(self, workload):
        """If an escaped alias existed, the next replay would overwrite
        it; byte-stable grads across interleaved replays prove none do."""
        agent, batch = workload
        planner = make_ppo_planner(agent.network, agent.ppo)
        agent.network.zero_grad()
        ppo_step(agent.network, batch, agent.ppo, planner=planner)
        first = grads_of(agent.network)
        agent.network.zero_grad()
        ppo_step(agent.network, batch, agent.ppo, planner=planner)
        for held, again in zip(first, grads_of(agent.network)):
            assert held.tobytes() == again.tobytes()

    def test_alloc_stats_record_arena_hits(self, workload):
        agent, batch = workload
        reset_alloc_stats()
        planner = make_ppo_planner(agent.network, agent.ppo)
        agent.network.zero_grad()
        ppo_step(agent.network, batch, agent.ppo, planner=planner)
        stats = alloc_stats()
        assert stats, "plan build must record per-op allocation counts"
        requested = sum(cell[0] for cell in stats.values())
        served = sum(cell[1] for cell in stats.values())
        assert 0 < served <= requested
        reset_alloc_stats()
        assert alloc_stats() == {}
