"""ForwardPlanner gates: forward-only plans under no_grad, byte for byte.

The serving extension of the PR 9 executor: a :class:`nn.ForwardPlanner`
compiles forward-only programs (no loss, no backward schedule) and — the
point — its fast path stays allowed under :class:`nn.no_grad`, which is
exactly the mode policy inference runs in.  Replay must be bitwise-equal
to the tape, reflect in-place ``load_state_dict`` weight swaps (the hot
reload path), and step aside for instruments like any other plan.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import fast_path_allowed
from repro.nn.functional import relu


@pytest.fixture
def mlp():
    rng = np.random.default_rng(0)
    layers = [nn.Linear(6, 16, rng=rng), nn.Linear(16, 4, rng=rng)]

    def program(inputs):
        x = nn.Tensor(inputs["x"])
        h = relu(layers[0](x))
        out = layers[1](h)
        return {"out": out}

    return layers, program


def tape_out(program, inputs):
    with nn.no_grad():
        return {name: t.data for name, t in program(inputs).items()}


class TestForwardPlanReplay:
    def test_no_grad_allows_forward_only_fast_path(self):
        with nn.no_grad():
            assert not fast_path_allowed()[0]
            ok, reason = fast_path_allowed(forward_only=True)
        assert ok, reason

    def test_replay_matches_tape_bitwise(self, mlp):
        __, program = mlp
        planner = nn.ForwardPlanner(program, name="test")
        inputs = {"x": np.random.default_rng(1).normal(size=(3, 6))}
        reference = tape_out(program, inputs)
        with nn.no_grad():
            first = planner.step(inputs)  # build + validate
            second = planner.step(inputs)  # pure replay
        assert planner.last_path == "plan"
        assert planner.stats["plan_runs"] >= 1
        assert planner.stats["validation_failed"] == 0
        for name in reference:
            assert first[name].tobytes() == reference[name].tobytes()
            assert second[name].tobytes() == reference[name].tobytes()

    def test_outputs_are_caller_owned(self, mlp):
        """Replay outputs must not alias plan-internal storage."""
        __, program = mlp
        planner = nn.ForwardPlanner(program, name="test")
        inputs = {"x": np.random.default_rng(1).normal(size=(2, 6))}
        with nn.no_grad():
            planner.step(inputs)
            first = planner.step(inputs)["out"].copy()
            second = planner.step(inputs)["out"]
        assert first.tobytes() == second.tobytes()

    def test_replay_sees_in_place_weight_swap(self, mlp):
        """The hot-reload contract: load_state_dict writes through the
        parameter arrays the plan's slots reference."""
        layers, program = mlp
        planner = nn.ForwardPlanner(program, name="test")
        inputs = {"x": np.random.default_rng(1).normal(size=(2, 6))}
        with nn.no_grad():
            planner.step(inputs)
            planner.step(inputs)
        assert planner.last_path == "plan"

        for layer in layers:
            state = {k: v + 0.25 for k, v in layer.state_dict().items()}
            layer.load_state_dict(state)
        reference = tape_out(program, inputs)
        with nn.no_grad():
            replay = planner.step(inputs)
        assert planner.last_path == "plan"  # same signature, same plan
        assert replay["out"].tobytes() == reference["out"].tobytes()

    def test_new_signature_builds_second_plan(self, mlp):
        __, program = mlp
        planner = nn.ForwardPlanner(program, name="test")
        with nn.no_grad():
            planner.step({"x": np.zeros((2, 6))})
            planner.step({"x": np.zeros((5, 6))})
        assert planner.stats["built"] == 2

    def test_plan_cache_cap_falls_back_to_tape(self, mlp):
        __, program = mlp
        planner = nn.ForwardPlanner(program, name="test", max_plans=2)
        with nn.no_grad():
            for rows in (1, 2, 3, 4):
                planner.step({"x": np.zeros((rows, 6))})
        assert planner.stats["built"] == 2
        assert planner.stats["tape_runs"] >= 2
        assert planner.last_reason == "plan cache full"

    def test_env_escape_hatch_forces_tape(self, mlp, monkeypatch):
        __, program = mlp
        monkeypatch.setenv("REPRO_NO_PLANS", "1")
        planner = nn.ForwardPlanner(program, name="test")
        with nn.no_grad():
            planner.step({"x": np.zeros((2, 6))})
        assert planner.last_path == "tape"
        assert planner.last_reason == "REPRO_NO_PLANS"

    def test_grad_mode_also_replays(self, mlp):
        """forward_only lifts the no_grad refusal without requiring it."""
        __, program = mlp
        planner = nn.ForwardPlanner(program, name="test")
        inputs = {"x": np.random.default_rng(2).normal(size=(2, 6))}
        planner.step(inputs)
        planner.step(inputs)
        assert planner.last_path == "plan"
