"""Property-based tests for the autograd core (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import _unbroadcast
from tests.conftest import finite_difference_grad

finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    elements=st.floats(-3.0, 3.0, allow_nan=False),
)


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_sum_gradient_is_ones(arr):
    t = nn.Tensor(arr, requires_grad=True)
    t.sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(arr))


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_linearity_of_grad(arr):
    """grad of (a*x).sum() is a for any constant a."""
    t = nn.Tensor(arr, requires_grad=True)
    (t * 2.5).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(arr, 2.5))


@settings(max_examples=30, deadline=None)
@given(finite_arrays)
def test_tanh_gradcheck(arr):
    t = nn.Tensor(arr.copy(), requires_grad=True)
    t.tanh().sum().backward()
    numeric = finite_difference_grad(
        lambda x: nn.Tensor(x).tanh().sum().item(), arr.copy()
    )
    np.testing.assert_allclose(t.grad, numeric, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(2, 5)),
        elements=st.floats(-5.0, 5.0, allow_nan=False),
    )
)
def test_softmax_always_a_distribution(arr):
    out = F.softmax(nn.Tensor(arr)).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(2, 5)),
        elements=st.floats(-5.0, 5.0, allow_nan=False),
    )
)
def test_entropy_bounded_by_log_n(arr):
    entropy = F.entropy_from_logits(nn.Tensor(arr)).data
    assert np.all(entropy >= -1e-9)
    assert np.all(entropy <= np.log(arr.shape[-1]) + 1e-9)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3)),
        elements=st.floats(-2.0, 2.0, allow_nan=False),
    ),
    st.sampled_from([(0,), (1,), (2,), None]),
)
def test_sum_then_grad_shape_matches(arr, axis):
    t = nn.Tensor(arr, requires_grad=True)
    out = t.sum(axis=axis[0] if axis else None)
    out.sum().backward() if out.size > 1 else out.backward()
    assert t.grad.shape == arr.shape


@settings(max_examples=40, deadline=None)
@given(
    st.tuples(st.integers(1, 4), st.integers(1, 4)),
    st.tuples(st.integers(1, 4), st.integers(1, 4)),
)
def test_unbroadcast_inverts_broadcast(big_shape, small_shape):
    """For any broadcastable pair, unbroadcast returns the small shape."""
    small = np.ones(small_shape)
    try:
        broadcast = np.broadcast_shapes(big_shape, small_shape)
    except ValueError:
        return  # not broadcastable; nothing to test
    grad = np.ones(broadcast)
    out = _unbroadcast(grad, small_shape)
    assert out.shape == small_shape
    # Total mass is conserved: each small element receives one contribution
    # per broadcast copy.
    assert out.sum() == np.prod(broadcast)


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 4), st.integers(2, 4)),
        elements=st.floats(-2.0, 2.0, allow_nan=False),
    )
)
def test_matmul_grad_matches_finite_difference(arr):
    other = np.linspace(-1, 1, arr.shape[1] * 3).reshape(arr.shape[1], 3)

    def loss(x):
        return ((nn.Tensor(x) @ nn.Tensor(other)) ** 2).sum().item()

    t = nn.Tensor(arr.copy(), requires_grad=True)
    ((t @ nn.Tensor(other)) ** 2).sum().backward()
    numeric = finite_difference_grad(loss, arr.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 3), st.integers(2, 6)),
        elements=st.floats(-4.0, 4.0, allow_nan=False),
    )
)
def test_layer_norm_output_statistics(arr):
    out = F.layer_norm(nn.Tensor(arr)).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
    # Variance is bounded by 1 (eps shrinks it slightly below for constant rows).
    assert np.all(out.var(axis=-1) <= 1.0 + 1e-8)
