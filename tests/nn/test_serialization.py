"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro import nn


def test_save_load_round_trip(tmp_path, rng):
    model = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
    path = tmp_path / "model.npz"
    nn.save_module(model, path)

    other = nn.Sequential(
        nn.Linear(3, 4, rng=np.random.default_rng(9)),
        nn.ReLU(),
        nn.Linear(4, 2, rng=np.random.default_rng(10)),
    )
    nn.load_module(other, path)
    x = nn.Tensor(rng.normal(size=(2, 3)))
    np.testing.assert_array_equal(model(x).data, other(x).data)


def test_save_creates_parent_dirs(tmp_path, rng):
    path = tmp_path / "deep" / "nested" / "model.npz"
    nn.save_module(nn.Linear(2, 2, rng=rng), path)
    assert path.exists()


def test_load_state_dict_file_contents(tmp_path, rng):
    lin = nn.Linear(2, 2, rng=rng)
    path = tmp_path / "lin.npz"
    nn.save_module(lin, path)
    state = nn.load_state_dict_file(path)
    assert set(state) == {"weight", "bias"}
    np.testing.assert_array_equal(state["weight"], lin.weight.data)


def test_load_into_wrong_architecture_fails(tmp_path, rng):
    nn.save_module(nn.Linear(2, 2, rng=rng), tmp_path / "m.npz")
    wrong = nn.Linear(3, 3, rng=rng)
    with pytest.raises(ValueError, match="shape"):
        nn.load_module(wrong, tmp_path / "m.npz")


def test_agent_state_dict_round_trip(tmp_path, tiny_config):
    """Full agent checkpoints (network + curiosity) restore exactly."""
    from repro.agents import CEWSAgent
    from repro.env import CrowdsensingEnv

    agent = CEWSAgent(tiny_config, seed=1)
    state = agent.state_dict()

    clone = CEWSAgent(tiny_config, seed=2)
    clone.load_state_dict(state)
    env = CrowdsensingEnv(tiny_config, reward_mode="sparse", scenario=agent.scenario)
    env.reset()
    rng_a = np.random.default_rng(0)
    rng_b = np.random.default_rng(0)
    action_a = agent.act(env, rng_a)
    action_b = clone.act(env, rng_b)
    np.testing.assert_array_equal(action_a.move, action_b.move)
    np.testing.assert_array_equal(action_a.charge, action_b.charge)
