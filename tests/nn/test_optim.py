"""Tests for optimizers and gradient utilities."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.modules import Parameter


def make_param(values):
    return Parameter(np.asarray(values, dtype=np.float64))


class TestOptimizerBase:
    def test_rejects_empty_params(self):
        with pytest.raises(ValueError, match="no trainable"):
            nn.SGD([], lr=0.1)

    def test_rejects_frozen_only_params(self):
        p = make_param([1.0])
        p.requires_grad = False
        with pytest.raises(ValueError, match="no trainable"):
            nn.SGD([p], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError, match="learning rate"):
            nn.SGD([make_param([1.0])], lr=0.0)

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.array([1.0])
        opt = nn.SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_apply_gradients_count_mismatch(self):
        opt = nn.SGD([make_param([1.0])], lr=0.1)
        with pytest.raises(ValueError, match="gradients"):
            opt.apply_gradients([np.ones(1), np.ones(1)])

    def test_apply_gradients_steps(self):
        p = make_param([1.0])
        opt = nn.SGD([p], lr=0.5)
        opt.apply_gradients([np.array([2.0])])
        np.testing.assert_allclose(p.data, [0.0])


class TestSGD:
    def test_basic_step(self):
        p = make_param([1.0, 2.0])
        p.grad = np.array([0.5, 1.0])
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 1.9])

    def test_none_grad_skipped(self):
        p = make_param([1.0])
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = nn.SGD([p], lr=1.0, momentum=0.5)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.5, p=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_bad_momentum_rejected(self):
        with pytest.raises(ValueError, match="momentum"):
            nn.SGD([make_param([1.0])], lr=0.1, momentum=1.0)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # With bias correction the first Adam step is ~lr in magnitude.
        p = make_param([0.0])
        p.grad = np.array([3.7])
        nn.Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = nn.Adam([p], lr=0.2)
        for __ in range(200):
            p.grad = 2 * (p.data - 1.0)
            opt.step()
        np.testing.assert_allclose(p.data, [1.0], atol=1e-3)

    def test_fits_linear_regression(self, rng):
        lin = nn.Linear(2, 1, rng=rng)
        opt = nn.Adam(lin.parameters(), lr=0.05)
        x = rng.normal(size=(64, 2))
        y = x @ np.array([[2.0], [-1.0]]) + 0.5
        for __ in range(300):
            opt.zero_grad()
            F.mse_loss(lin(nn.Tensor(x)), nn.Tensor(y)).backward()
            opt.step()
        np.testing.assert_allclose(lin.weight.data, [[2.0, -1.0]], atol=1e-2)
        np.testing.assert_allclose(lin.bias.data, [0.5], atol=1e-2)

    def test_bad_betas_rejected(self):
        with pytest.raises(ValueError, match="betas"):
            nn.Adam([make_param([1.0])], betas=(1.0, 0.999))

    def test_state_dict_round_trip(self):
        p = make_param([1.0])
        opt = nn.Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        state = opt.state_dict()

        p2 = make_param([1.0])
        opt2 = nn.Adam([p2], lr=0.1)
        opt2.load_state_dict(state)
        p.grad = np.array([0.5])
        p2.grad = np.array([0.5])
        opt.step()
        opt2.step()
        # p started from post-step value; replay p2 from the same point.
        assert opt2._step_count == opt._step_count

    def test_skips_frozen_parameters(self):
        trainable = make_param([1.0])
        frozen = make_param([1.0])
        frozen.requires_grad = False
        opt = nn.Adam([trainable, frozen], lr=0.1)
        assert len(opt.params) == 1


class TestGradClipping:
    def test_global_norm(self):
        a, b = make_param([3.0]), make_param([4.0])
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        assert nn.global_grad_norm([a, b]) == pytest.approx(5.0)

    def test_norm_ignores_none(self):
        a, b = make_param([1.0]), make_param([1.0])
        a.grad = np.array([2.0])
        assert nn.global_grad_norm([a, b]) == pytest.approx(2.0)

    def test_clip_scales_down(self):
        a, b = make_param([1.0]), make_param([1.0])
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        pre = nn.clip_grad_norm([a, b], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert nn.global_grad_norm([a, b]) == pytest.approx(1.0)
        # Direction preserved.
        np.testing.assert_allclose(a.grad / b.grad, [0.75])

    def test_clip_noop_when_under(self):
        a = make_param([1.0])
        a.grad = np.array([0.5])
        nn.clip_grad_norm([a], max_norm=1.0)
        np.testing.assert_allclose(a.grad, [0.5])
