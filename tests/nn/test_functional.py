"""Tests for functional ops: convolution, pooling, norms, losses."""

import numpy as np
import pytest
from scipy import signal

from repro import nn
from repro.nn import functional as F
from tests.conftest import finite_difference_grad


def reference_conv2d(x, w, b, stride=1, padding=0):
    """Direct (slow) cross-correlation for checking the im2col version."""
    batch, in_c, h, wdt = x.shape
    out_c, __, k, __ = w.shape
    if padding:
        x = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)])
        h, wdt = h + 2 * padding, wdt + 2 * padding
    out_h = (h - k) // stride + 1
    out_w = (wdt - k) // stride + 1
    out = np.zeros((batch, out_c, out_h, out_w))
    for n in range(batch):
        for o in range(out_c):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[n, :, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[n, o, i, j] = (patch * w[o]).sum()
            if b is not None:
                out[n, o] += b[o]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_reference(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(nn.Tensor(x), nn.Tensor(w), nn.Tensor(b), stride=stride, padding=padding)
        expected = reference_conv2d(x, w, b, stride=stride, padding=padding)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_matches_scipy_single_channel(self, rng):
        x = rng.normal(size=(1, 1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        out = F.conv2d(nn.Tensor(x), nn.Tensor(w))
        expected = signal.correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(out.data[0, 0], expected, atol=1e-10)

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(nn.Tensor(x), nn.Tensor(w))
        np.testing.assert_allclose(out.data, reference_conv2d(x, w, None), atol=1e-10)

    def test_input_gradcheck(self, gradcheck, rng):
        w = nn.Tensor(rng.normal(size=(2, 2, 3, 3)))
        b = nn.Tensor(rng.normal(size=2))
        gradcheck(
            lambda t: (F.conv2d(t, w, b, stride=2, padding=1) ** 2).sum(),
            rng.normal(size=(2, 2, 5, 5)),
            atol=1e-5,
        )

    def test_weight_gradcheck(self, rng):
        x = rng.normal(size=(2, 2, 5, 5))
        w0 = rng.normal(size=(2, 2, 3, 3))

        def loss(w):
            return (
                F.conv2d(nn.Tensor(x), nn.Tensor(w), stride=1, padding=1) ** 2
            ).sum().item()

        wt = nn.Tensor(w0.copy(), requires_grad=True)
        (F.conv2d(nn.Tensor(x), wt, stride=1, padding=1) ** 2).sum().backward()
        numeric = finite_difference_grad(loss, w0.copy())
        np.testing.assert_allclose(wt.grad, numeric, atol=1e-5)

    def test_bias_gradient(self, rng):
        x = rng.normal(size=(2, 1, 3, 3))
        w = nn.Tensor(rng.normal(size=(2, 1, 3, 3)))
        b = nn.Tensor(np.zeros(2), requires_grad=True)
        F.conv2d(nn.Tensor(x), w, b).sum().backward()
        # Each bias unit contributes once per (batch, spatial) output.
        np.testing.assert_allclose(b.grad, [2.0, 2.0])

    def test_rejects_wrong_dims(self, rng):
        with pytest.raises(ValueError, match="4-D"):
            F.conv2d(nn.Tensor(np.zeros((3, 4, 4))), nn.Tensor(np.zeros((1, 3, 3, 3))))

    def test_rejects_channel_mismatch(self):
        with pytest.raises(ValueError, match="channels"):
            F.conv2d(
                nn.Tensor(np.zeros((1, 2, 4, 4))), nn.Tensor(np.zeros((1, 3, 3, 3)))
            )

    def test_rejects_rect_kernel(self):
        with pytest.raises(ValueError, match="square"):
            F.conv2d(
                nn.Tensor(np.zeros((1, 1, 4, 4))), nn.Tensor(np.zeros((1, 1, 3, 2)))
            )

    def test_rejects_kernel_larger_than_input(self):
        with pytest.raises(ValueError, match="smaller"):
            F.conv2d(
                nn.Tensor(np.zeros((1, 1, 2, 2))), nn.Tensor(np.zeros((1, 1, 3, 3)))
            )


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(nn.Tensor(x), 2)
        np.testing.assert_array_equal(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_grad_goes_to_argmax(self):
        x = nn.Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_array_equal(x.grad[0, 0], expected)

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(nn.Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self, gradcheck, rng):
        gradcheck(lambda t: (F.avg_pool2d(t, 2) ** 2).sum(), rng.normal(size=(1, 2, 4, 4)))

    def test_strided_max_pool(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        out = F.max_pool2d(nn.Tensor(x), 3, stride=2)
        assert out.shape == (1, 1, 2, 2)
        assert out.data[0, 0, 0, 0] == x[0, 0, :3, :3].max()


class TestNormsAndActivations:
    def test_layer_norm_zero_mean_unit_var(self, rng):
        x = rng.normal(2.0, 3.0, size=(4, 8))
        out = F.layer_norm(nn.Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_affine(self, rng):
        x = rng.normal(size=(2, 4))
        w = nn.Tensor(np.full(4, 2.0))
        b = nn.Tensor(np.full(4, 1.0))
        out = F.layer_norm(nn.Tensor(x), w, b)
        plain = F.layer_norm(nn.Tensor(x))
        np.testing.assert_allclose(out.data, plain.data * 2.0 + 1.0)

    def test_layer_norm_gradcheck(self, gradcheck, rng):
        gradcheck(lambda t: (F.layer_norm(t) ** 2).sum(), rng.normal(size=(3, 5)))

    def test_softmax_rows_sum_to_one(self, rng):
        out = F.softmax(nn.Tensor(rng.normal(size=(5, 7))))
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_stable_for_huge_logits(self):
        out = F.softmax(nn.Tensor([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            F.log_softmax(nn.Tensor(x)).data,
            np.log(F.softmax(nn.Tensor(x)).data),
            atol=1e-10,
        )

    def test_activation_wrappers(self, rng):
        x = rng.normal(size=(3,))
        np.testing.assert_array_equal(F.relu(nn.Tensor(x)).data, np.maximum(x, 0))
        np.testing.assert_allclose(F.tanh(nn.Tensor(x)).data, np.tanh(x))
        np.testing.assert_allclose(
            F.sigmoid(nn.Tensor(x)).data, 1 / (1 + np.exp(-x))
        )


class TestLosses:
    def test_mse_value(self):
        loss = F.mse_loss(nn.Tensor([1.0, 3.0]), nn.Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)

    def test_mse_target_detached(self):
        target = nn.Tensor([1.0], requires_grad=True)
        pred = nn.Tensor([2.0], requires_grad=True)
        F.mse_loss(pred, target).backward()
        assert pred.grad is not None
        assert target.grad is None

    def test_smooth_l1_quadratic_and_linear_regions(self):
        small = F.smooth_l1_loss(nn.Tensor([0.5]), nn.Tensor([0.0]))
        assert small.item() == pytest.approx(0.125)
        large = F.smooth_l1_loss(nn.Tensor([3.0]), nn.Tensor([0.0]))
        assert large.item() == pytest.approx(2.5)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(4, 5))
        targets = np.array([0, 2, 4, 1])
        loss = F.cross_entropy(nn.Tensor(logits), targets)
        logp = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        manual = -logp[np.arange(4), targets].mean()
        assert loss.item() == pytest.approx(manual)

    def test_cross_entropy_gradcheck(self, gradcheck, rng):
        targets = np.array([1, 0, 2])
        gradcheck(
            lambda t: F.cross_entropy(t, targets), rng.normal(size=(3, 4))
        )

    def test_entropy_from_logits_uniform_is_log_n(self):
        out = F.entropy_from_logits(nn.Tensor(np.zeros((1, 8))))
        assert out.data[0] == pytest.approx(np.log(8))

    def test_entropy_nonnegative(self, rng):
        out = F.entropy_from_logits(nn.Tensor(rng.normal(size=(10, 5)) * 5))
        assert np.all(out.data >= 0)
