"""Parity gates for the optimized hot paths in :mod:`repro.nn.functional`.

The PR-4 optimizations (cached kernel plans with ``sliding_window_view``
gathers and strided col2im, the fused softmax family, ``no_grad`` tape
elision) all promise *bitwise* equivalence with the code they replaced.
These tests pin that promise three ways:

* against the **legacy implementation** (fancy-index im2col + ``np.add.at``
  scatter, composed softmax graphs) re-created locally, byte for byte;
* against a **naive reference** (quadruple-loop convolution) numerically;
* against **finite differences** for the analytic gradients.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.functional import _KernelPlan, _PLAN_CACHE, _plan_for
from repro.nn.tensor import Tensor


# ---------------------------------------------------------------------------
# Legacy im2col machinery (the seed implementation, kept as the oracle)
# ---------------------------------------------------------------------------
def legacy_im2col_indices(x_shape, kernel, stride):
    __, channels, height, width = x_shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel * kernel).reshape(-1, 1)
    return k, i, j


def legacy_gather(x_data, kernel, stride):
    k_idx, i_idx, j_idx = legacy_im2col_indices(x_data.shape, kernel, stride)
    return x_data[:, k_idx, i_idx, j_idx]


def legacy_scatter(grad_cols, x_data, kernel, stride):
    k_idx, i_idx, j_idx = legacy_im2col_indices(x_data.shape, kernel, stride)
    grad_x = np.zeros_like(x_data)
    np.add.at(grad_x, (slice(None), k_idx, i_idx, j_idx), grad_cols)
    return grad_x


def naive_conv2d(x, weight, bias=None, stride=1, padding=0):
    """Reference cross-correlation: explicit loops, no im2col."""
    batch, in_channels, height, width = x.shape
    out_channels, __, kernel, __ = weight.shape
    padded = np.zeros((batch, in_channels, height + 2 * padding, width + 2 * padding))
    padded[:, :, padding : padding + height, padding : padding + width] = x
    out_h = (padded.shape[2] - kernel) // stride + 1
    out_w = (padded.shape[3] - kernel) // stride + 1
    out = np.zeros((batch, out_channels, out_h, out_w))
    for n in range(batch):
        for o in range(out_channels):
            for oh in range(out_h):
                for ow in range(out_w):
                    patch = padded[
                        n,
                        :,
                        oh * stride : oh * stride + kernel,
                        ow * stride : ow * stride + kernel,
                    ]
                    out[n, o, oh, ow] = np.sum(patch * weight[o])
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out


SWEEP = [
    (stride, padding, spatial)
    for stride in (1, 2)
    for padding in (0, 1, 2)
    for spatial in ((6, 6), (7, 9), (5, 8))
]


class TestConv2dSweep:
    @pytest.mark.parametrize("stride,padding,spatial", SWEEP)
    def test_forward_matches_naive_loop(self, stride, padding, spatial):
        rng = np.random.default_rng(11)
        height, width = spatial
        x = rng.normal(size=(2, 3, height, width))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        expected = naive_conv2d(x, w, b, stride=stride, padding=padding)
        got = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        assert got.shape == expected.shape
        np.testing.assert_allclose(got.data, expected, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("stride,padding,spatial", SWEEP)
    def test_gather_bitwise_matches_legacy_index_gather(self, stride, padding, spatial):
        rng = np.random.default_rng(7)
        height, width = spatial
        height, width = height + 2 * padding, width + 2 * padding
        x = rng.normal(size=(2, 3, height, width))
        plan = _plan_for(x.shape, 3, stride)
        new = plan.gather(x)
        old = legacy_gather(x, 3, stride)
        assert new.shape == old.shape
        assert new.tobytes() == old.tobytes()
        # The einsum bit-freeze also depends on the stride pattern: the
        # legacy cols were an (R, P, N)-contiguous buffer viewed (N, R, P).
        assert new.strides == old.strides

    @pytest.mark.parametrize("stride,padding,spatial", SWEEP)
    def test_scatter_bitwise_matches_add_at(self, stride, padding, spatial):
        rng = np.random.default_rng(13)
        height, width = spatial
        height, width = height + 2 * padding, width + 2 * padding
        x = np.zeros((2, 3, height, width))
        plan = _plan_for(x.shape, 3, stride)
        grad_cols = rng.normal(
            size=(2, 3 * 3 * 3, plan.out_h * plan.out_w)
        )
        new = plan.scatter_add(grad_cols, x)
        old = legacy_scatter(grad_cols, x, 3, stride)
        assert new.tobytes() == old.tobytes()

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 2)])
    def test_gradients_match_finite_differences(self, stride, padding):
        rng = np.random.default_rng(5)
        x_data = rng.normal(size=(1, 2, 6, 6))
        w_data = rng.normal(size=(3, 2, 3, 3))
        b_data = rng.normal(size=3)

        def loss_of(x_arr, w_arr, b_arr):
            out = F.conv2d(
                Tensor(x_arr), Tensor(w_arr), Tensor(b_arr),
                stride=stride, padding=padding,
            )
            return float((out * out).sum().item())

        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        (out * out).sum().backward()

        eps = 1e-6
        for tensor, arr in ((x, x_data), (w, w_data), (b, b_data)):
            flat = arr.reshape(-1)
            grad = tensor.grad.reshape(-1)
            for idx in rng.choice(flat.size, size=min(8, flat.size), replace=False):
                bumped = flat.copy()
                bumped[idx] += eps
                plus = loss_of(
                    *(bumped.reshape(arr.shape) if a is arr else a
                      for a in (x_data, w_data, b_data))
                )
                bumped[idx] -= 2 * eps
                minus = loss_of(
                    *(bumped.reshape(arr.shape) if a is arr else a
                      for a in (x_data, w_data, b_data))
                )
                numeric = (plus - minus) / (2 * eps)
                assert grad[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-6)


class TestPoolingParity:
    @pytest.mark.parametrize("kernel,stride", [(2, 2), (2, 1), (3, 2)])
    def test_max_pool_forward_backward_bitwise(self, kernel, stride):
        rng = np.random.default_rng(3)
        x_data = rng.normal(size=(2, 3, 7, 8))

        # Legacy path: index gather + argmax + put_along_axis + add.at.
        x = Tensor(x_data, requires_grad=True)
        out = F.max_pool2d(x, kernel, stride)
        out.sum().backward()

        cols = legacy_gather(x_data, kernel, stride)
        batch = x_data.shape[0]
        channels = x_data.shape[1]
        out_h = (x_data.shape[2] - kernel) // stride + 1
        out_w = (x_data.shape[3] - kernel) // stride + 1
        ref_cols = cols.reshape(batch, channels, kernel * kernel, out_h * out_w)
        argmax = ref_cols.argmax(axis=2)
        expected = np.take_along_axis(
            ref_cols, argmax[:, :, None, :], axis=2
        ).squeeze(2).reshape(batch, channels, out_h, out_w)
        assert out.data.tobytes() == expected.tobytes()

        grad_cols = np.zeros((batch, channels, kernel * kernel, out_h * out_w))
        np.put_along_axis(
            grad_cols, argmax[:, :, None, :],
            np.ones((batch, channels, 1, out_h * out_w)), axis=2,
        )
        expected_grad = legacy_scatter(
            grad_cols.reshape(batch, channels * kernel * kernel, -1), x_data,
            kernel, stride,
        )
        assert x.grad.tobytes() == expected_grad.tobytes()

    def test_avg_pool_backward_bitwise(self):
        rng = np.random.default_rng(4)
        x_data = rng.normal(size=(2, 2, 6, 6))
        x = Tensor(x_data, requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()

        window = 4
        grad_cols = np.repeat(
            np.ones((2, 2, 1, 9)) / window, window, axis=2
        ).reshape(2, 2 * window, -1)
        expected = legacy_scatter(grad_cols, x_data, 2, 2)
        assert x.grad.tobytes() == expected.tobytes()


class TestPlanCache:
    def test_plans_are_reused_per_shape_key(self):
        _PLAN_CACHE.clear()
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        F.conv2d(x, w, stride=1, padding=1)
        first = dict(_PLAN_CACHE)
        F.conv2d(x, w, stride=1, padding=1)
        assert dict(_PLAN_CACHE) == first  # same plan object, no rebuild
        key = (3, 10, 10, 3, 1)  # padded shape
        assert key in _PLAN_CACHE
        assert isinstance(_PLAN_CACHE[key], _KernelPlan)

    def test_cache_cap_clears_instead_of_growing_unbounded(self):
        _PLAN_CACHE.clear()
        try:
            for idx in range(F._PLAN_CACHE_MAX + 3):
                _plan_for((1, 1, 8 + idx, 8 + idx), 3, 1)
            assert len(_PLAN_CACHE) <= F._PLAN_CACHE_MAX
        finally:
            _PLAN_CACHE.clear()

    def test_batch_size_not_part_of_key(self):
        _PLAN_CACHE.clear()
        a = _plan_for((1, 3, 8, 8), 3, 1)
        b = _plan_for((64, 3, 8, 8), 3, 1)
        assert a is b


# ---------------------------------------------------------------------------
# Fused softmax family vs the composed autograd graphs they replaced
# ---------------------------------------------------------------------------
def composed_softmax(x, axis=-1):
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def composed_log_softmax(x, axis=-1):
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def composed_entropy(logits, axis=-1):
    logp = composed_log_softmax(logits, axis=axis)
    p = composed_softmax(logits, axis=axis)
    return -(p * logp).sum(axis=axis)


class TestFusedSoftmaxFamily:
    @pytest.mark.parametrize("shape,axis", [((5, 9), -1), ((2, 4, 9), -1), ((6, 3), 0)])
    def test_softmax_forward_and_grad_bitwise(self, shape, axis):
        rng = np.random.default_rng(21)
        data = rng.normal(size=shape) * 3.0
        grad_seed = rng.normal(size=shape)

        x_new = Tensor(data, requires_grad=True)
        out_new = F.softmax(x_new, axis=axis)
        (out_new * Tensor(grad_seed)).sum().backward()

        x_old = Tensor(data, requires_grad=True)
        out_old = composed_softmax(x_old, axis=axis)
        (out_old * Tensor(grad_seed)).sum().backward()

        assert out_new.data.tobytes() == out_old.data.tobytes()
        assert x_new.grad.tobytes() == x_old.grad.tobytes()

    @pytest.mark.parametrize("shape,axis", [((5, 9), -1), ((2, 4, 9), -1), ((6, 3), 0)])
    def test_log_softmax_forward_and_grad_bitwise(self, shape, axis):
        rng = np.random.default_rng(22)
        data = rng.normal(size=shape) * 3.0
        grad_seed = rng.normal(size=shape)

        x_new = Tensor(data, requires_grad=True)
        (F.log_softmax(x_new, axis=axis) * Tensor(grad_seed)).sum().backward()

        x_old = Tensor(data, requires_grad=True)
        (composed_log_softmax(x_old, axis=axis) * Tensor(grad_seed)).sum().backward()

        assert x_new.grad.tobytes() == x_old.grad.tobytes()

    @pytest.mark.parametrize("shape,axis", [((5, 9), -1), ((2, 4, 9), -1)])
    def test_entropy_forward_and_grad_bitwise(self, shape, axis):
        rng = np.random.default_rng(23)
        data = rng.normal(size=shape) * 2.0

        x_new = Tensor(data, requires_grad=True)
        out_new = F.entropy_from_logits(x_new, axis=axis)
        out_new.sum().backward()

        x_old = Tensor(data, requires_grad=True)
        out_old = composed_entropy(x_old, axis=axis)
        out_old.sum().backward()

        assert out_new.data.tobytes() == out_old.data.tobytes()
        assert x_new.grad.tobytes() == x_old.grad.tobytes()

    def test_shared_consumer_grads_bitwise(self):
        """The PPO pattern: log-prob pick AND entropy from the same logits.

        The composed entropy staged its softmax-branch and log-softmax-
        branch contributions as *separate* floating-point additions into
        the shared logits' gradient, interleaved with the log-prob
        contribution.  The fused op must register its parent twice to
        replay that exact accumulation order — this test locks it in.
        """
        rng = np.random.default_rng(24)
        data = rng.normal(size=(10, 9)) * 2.0
        picks = rng.integers(0, 9, size=10)
        rows = np.arange(10)

        def loss_new(x):
            logp = F.log_softmax(x, axis=-1)
            picked = logp[rows, picks]
            entropy = F.entropy_from_logits(x, axis=-1)
            return picked.mean() - 0.01 * entropy.mean()

        def loss_old(x):
            logp = composed_log_softmax(x, axis=-1)
            picked = logp[rows, picks]
            entropy = composed_entropy(x, axis=-1)
            return picked.mean() - 0.01 * entropy.mean()

        x_new = Tensor(data, requires_grad=True)
        loss_new(x_new).backward()
        x_old = Tensor(data, requires_grad=True)
        loss_old(x_old).backward()

        assert x_new.grad.tobytes() == x_old.grad.tobytes()


# ---------------------------------------------------------------------------
# no_grad semantics
# ---------------------------------------------------------------------------
class TestNoGrad:
    def test_values_identical_tape_elided(self):
        rng = np.random.default_rng(31)
        data = rng.normal(size=(4, 9))
        x = Tensor(data, requires_grad=True)

        taped = F.softmax(x) @ Tensor(rng.normal(size=(9, 3)))
        with nn.no_grad():
            untaped = F.softmax(x) @ Tensor(rng.normal(size=(9, 3)))
        # Re-seed to reproduce the same weight draw.
        rng = np.random.default_rng(31)
        rng.normal(size=(4, 9))
        w = Tensor(rng.normal(size=(9, 3)))
        with nn.no_grad():
            again = F.softmax(x) @ w

        assert taped.requires_grad
        assert not untaped.requires_grad
        assert untaped._parents == ()
        assert untaped._backward is None
        assert again.data.tobytes() == taped.data.tobytes()

    def test_nesting_and_restore(self):
        assert nn.is_grad_enabled()
        with nn.no_grad():
            assert not nn.is_grad_enabled()
            with nn.no_grad():
                assert not nn.is_grad_enabled()
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with nn.no_grad():
                raise RuntimeError("boom")
        assert nn.is_grad_enabled()

    def test_thread_local(self):
        import threading

        seen = {}

        def worker():
            seen["worker"] = nn.is_grad_enabled()

        with nn.no_grad():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["worker"] is True  # other threads unaffected

    def test_backward_through_no_grad_output_raises(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with nn.no_grad():
            out = (x * 2.0).sum()
        # The output is detached from the tape: backward() refuses, the
        # same error a plain non-grad tensor raises.
        with pytest.raises(RuntimeError, match="does not require grad"):
            out.backward()
        assert x.grad is None

    def test_leaf_requires_grad_survives(self):
        with nn.no_grad():
            x = Tensor(np.ones(3), requires_grad=True)
        assert x.requires_grad  # explicit leaves are unaffected
        (x * 2.0).sum().backward()
        assert x.grad is not None


# ---------------------------------------------------------------------------
# Fused channel layer norm
# ---------------------------------------------------------------------------
def composed_channel_layer_norm(x, weight, bias, eps=1e-5):
    """The historical ChannelLayerNorm.forward composition, node for node."""
    batch = x.shape[0]
    channels = weight.shape[0]
    flat = x.reshape(batch, -1)
    mu = flat.mean(axis=-1, keepdims=True)
    var = flat.var(axis=-1, keepdims=True)
    normalized = (flat - mu) / (var + eps).sqrt()
    normalized = normalized.reshape(*x.shape)
    scale = weight.reshape(1, channels, 1, 1)
    shift = bias.reshape(1, channels, 1, 1)
    return normalized * scale + shift


class TestFusedChannelLayerNorm:
    """The fused (C, H, W) layer norm is bitwise-identical to the
    twelve-node composition it replaced — forward and gradients, with the
    input both as a leaf and as an interior (conv-output-like) node."""

    SHAPES = [(8, 8, 8, 8), (16, 16, 4, 4), (3, 16, 5, 7), (1, 8, 2, 2)]

    @pytest.mark.parametrize("shape", SHAPES)
    def test_forward_bitwise(self, shape):
        rng = np.random.default_rng(hash(shape) % 2**32)
        channels = shape[1]
        x_data = rng.normal(size=shape)
        w_data = rng.normal(size=channels) + 1.0
        b_data = rng.normal(size=channels)
        fused = F.channel_layer_norm(
            Tensor(x_data.copy()), Tensor(w_data.copy()), Tensor(b_data.copy())
        )
        composed = composed_channel_layer_norm(
            Tensor(x_data.copy()), Tensor(w_data.copy()), Tensor(b_data.copy())
        )
        assert fused.data.tobytes() == composed.data.tobytes()

    @pytest.mark.parametrize("shape", SHAPES)
    def test_backward_bitwise_interior_input(self, shape):
        # The CNN applies the norm to conv outputs (interior tape nodes);
        # the grouping of the four input-gradient contributions only
        # matters there, so that is what the parity drives.
        rng = np.random.default_rng(1 + hash(shape) % 2**32)
        channels = shape[1]
        y_data = rng.normal(size=shape)
        w_data = rng.normal(size=channels) + 1.0
        b_data = rng.normal(size=channels)
        downstream = rng.normal(size=shape)

        results = []
        for fn in (
            lambda x, w, b: F.channel_layer_norm(x, w, b),
            composed_channel_layer_norm,
        ):
            y = Tensor(y_data.copy(), requires_grad=True)
            w = Tensor(w_data.copy(), requires_grad=True)
            b = Tensor(b_data.copy(), requires_grad=True)
            x = y * 1.0  # interior node, like a conv output
            out = fn(x, w, b)
            (out * downstream).sum().backward()
            results.append((y.grad.copy(), w.grad.copy(), b.grad.copy()))
        for got, want in zip(results[0], results[1]):
            assert got.tobytes() == want.tobytes()

    def test_module_uses_fused_op(self):
        norm = nn.ChannelLayerNorm(8)
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(4, 8, 6, 6)), requires_grad=True)
        out = norm.forward(x)
        reference = composed_channel_layer_norm(
            Tensor(x.data.copy()), Tensor(norm.weight.data.copy()),
            Tensor(norm.bias.data.copy()),
        )
        assert out.data.tobytes() == reference.data.tobytes()
        # Fused: one tape node between input and output.
        assert out._parents[0] is x

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError, match="4-D"):
            F.channel_layer_norm(Tensor(np.ones((3, 4))), Tensor(np.ones(4)), Tensor(np.ones(4)))
