"""Tests for the autograd Tensor core."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import _unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = nn.Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype.kind == "f"

    def test_from_int_array_becomes_float(self):
        t = nn.Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "f"

    def test_scalar(self):
        t = nn.Tensor(2.5)
        assert t.item() == 2.5
        assert t.size == 1

    def test_requires_grad_default_false(self):
        assert not nn.Tensor([1.0]).requires_grad

    def test_numpy_returns_same_buffer(self):
        arr = np.ones(3)
        t = nn.Tensor(arr)
        assert t.numpy() is arr

    def test_detach_cuts_graph(self):
        a = nn.Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        c = b * 3
        assert not c.requires_grad

    def test_copy_is_independent(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0
        assert b.requires_grad

    def test_len_and_repr(self):
        t = nn.Tensor([1.0, 2.0])
        assert len(t) == 2
        assert "Tensor" in repr(t)


class TestArithmetic:
    def test_add(self):
        out = nn.Tensor([1.0, 2.0]) + nn.Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_scalar_right_and_left(self):
        t = nn.Tensor([1.0])
        np.testing.assert_array_equal((t + 1).data, [2.0])
        np.testing.assert_array_equal((1 + t).data, [2.0])

    def test_sub_rsub(self):
        t = nn.Tensor([1.0])
        np.testing.assert_array_equal((t - 3).data, [-2.0])
        np.testing.assert_array_equal((3 - t).data, [2.0])

    def test_mul_div(self):
        t = nn.Tensor([2.0])
        np.testing.assert_array_equal((t * 3).data, [6.0])
        np.testing.assert_array_equal((t / 4).data, [0.5])
        np.testing.assert_array_equal((4 / t).data, [2.0])

    def test_neg_pow(self):
        t = nn.Tensor([2.0])
        np.testing.assert_array_equal((-t).data, [-2.0])
        np.testing.assert_array_equal((t ** 3).data, [8.0])

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            nn.Tensor([2.0]) ** nn.Tensor([3.0])

    def test_comparisons_return_bool_arrays(self):
        t = nn.Tensor([1.0, 3.0])
        assert (t > 2.0).tolist() == [False, True]
        assert (t < 2.0).tolist() == [True, False]
        assert (t >= 3.0).tolist() == [False, True]
        assert (t <= 1.0).tolist() == [True, False]


class TestBackwardBasics:
    def test_simple_chain(self):
        x = nn.Tensor([3.0], requires_grad=True)
        y = x * x + 2 * x  # dy/dx = 2x + 2 = 8
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = nn.Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = nn.Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # x used twice: y = x*x + x*x -> dy/dx = 4x
        x = nn.Tensor([2.0], requires_grad=True)
        a = x * x
        b = x * x
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_shared_subexpression(self):
        x = nn.Tensor([2.0], requires_grad=True)
        shared = x * 3
        out = (shared + shared * 2).sum()  # 3x + 6x = 9x
        out.backward()
        np.testing.assert_allclose(x.grad, [9.0])

    def test_backward_requires_scalar_without_grad(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        (x * 2).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_backward_wrong_grad_shape_rejected(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="shape"):
            (x * 2).backward(np.ones(3))

    def test_backward_on_non_grad_tensor_rejected(self):
        with pytest.raises(RuntimeError):
            nn.Tensor([1.0]).backward()

    def test_no_grad_tracking_when_not_required(self):
        x = nn.Tensor([1.0])
        y = x * 2
        assert y._backward is None
        assert not y.requires_grad


class TestBroadcastGradients:
    def test_unbroadcast_prepended_axes(self):
        grad = np.ones((4, 3))
        out = _unbroadcast(grad, (3,))
        np.testing.assert_array_equal(out, [4.0, 4.0, 4.0])

    def test_unbroadcast_stretched_axis(self):
        grad = np.ones((4, 3))
        out = _unbroadcast(grad, (4, 1))
        np.testing.assert_array_equal(out, np.full((4, 1), 3.0))

    def test_broadcast_add_gradients(self):
        a = nn.Tensor(np.ones((2, 3)), requires_grad=True)
        b = nn.Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))
        np.testing.assert_array_equal(b.grad, [2.0, 2.0, 2.0])

    def test_broadcast_mul_gradients(self):
        a = nn.Tensor(np.full((2, 3), 2.0), requires_grad=True)
        b = nn.Tensor(np.full((1, 3), 3.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_array_equal(a.grad, np.full((2, 3), 3.0))
        np.testing.assert_array_equal(b.grad, np.full((1, 3), 4.0))

    def test_scalar_broadcast(self):
        a = nn.Tensor(np.ones((2, 2)), requires_grad=True)
        s = nn.Tensor(2.0, requires_grad=True)
        (a * s).sum().backward()
        np.testing.assert_allclose(s.grad, 4.0)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "fn_name",
        ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"],
    )
    def test_gradcheck_elementwise(self, fn_name, gradcheck, rng):
        x = rng.uniform(0.2, 2.0, size=(3, 4))  # positive for log/sqrt
        gradcheck(lambda t: getattr(t, fn_name)().sum(), x)

    def test_relu_grad_zero_below(self):
        x = nn.Tensor([-1.0, 2.0], requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0])

    def test_clip_grad_zero_outside(self):
        x = nn.Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_minimum_values_and_grads(self):
        a = nn.Tensor([1.0, 5.0], requires_grad=True)
        b = nn.Tensor([3.0, 2.0], requires_grad=True)
        a.maximum(b).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [1.0, 0.0])
        a.zero_grad(); b.zero_grad()
        a.minimum(b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = nn.Tensor(np.arange(6.0).reshape(2, 3))
        assert x.sum().item() == 15.0
        np.testing.assert_array_equal(x.sum(axis=0).data, [3.0, 5.0, 7.0])
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_matches_numpy(self, rng):
        arr = rng.normal(size=(3, 4))
        x = nn.Tensor(arr)
        np.testing.assert_allclose(x.mean().item(), arr.mean())
        np.testing.assert_allclose(x.mean(axis=0).data, arr.mean(axis=0))

    def test_mean_gradient(self):
        x = nn.Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 1 / 8))

    def test_var_matches_numpy(self, rng):
        arr = rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            nn.Tensor(arr).var(axis=1).data, arr.var(axis=1), atol=1e-12
        )

    def test_var_gradient(self, gradcheck, rng):
        gradcheck(lambda t: t.var(axis=-1).sum(), rng.normal(size=(3, 4)))

    def test_max_gradient_single(self):
        x = nn.Tensor([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_max_gradient_splits_ties(self):
        x = nn.Tensor([5.0, 5.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_max_axis(self, rng):
        arr = rng.normal(size=(3, 4))
        np.testing.assert_array_equal(
            nn.Tensor(arr).max(axis=1).data, arr.max(axis=1)
        )


class TestMatmul:
    def test_2d_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        np.testing.assert_allclose((nn.Tensor(a) @ nn.Tensor(b)).data, a @ b)

    def test_2d_gradcheck(self, gradcheck, rng):
        b = nn.Tensor(rng.normal(size=(4, 2)))
        gradcheck(lambda t: ((t @ b) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_vector_cases(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=4)
        assert np.isclose((nn.Tensor(a) @ nn.Tensor(b)).item(), a @ b)
        m = rng.normal(size=(4, 2))
        np.testing.assert_allclose((nn.Tensor(a) @ nn.Tensor(m)).data, a @ m)
        np.testing.assert_allclose((nn.Tensor(m.T) @ nn.Tensor(a)).data, m.T @ a)

    def test_vector_gradients(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        b = nn.Tensor([3.0, 4.0], requires_grad=True)
        (a @ b).backward()
        np.testing.assert_array_equal(a.grad, [3.0, 4.0])
        np.testing.assert_array_equal(b.grad, [1.0, 2.0])

    def test_batched_matmul_gradcheck(self, gradcheck, rng):
        b = nn.Tensor(rng.normal(size=(4, 5)))
        gradcheck(lambda t: ((t @ b) ** 2).sum(), rng.normal(size=(2, 3, 4)))


class TestShapeOps:
    def test_reshape_and_grad(self):
        x = nn.Tensor(np.arange(6.0), requires_grad=True)
        y = x.reshape(2, 3)
        assert y.shape == (2, 3)
        (y * 2).sum().backward()
        np.testing.assert_array_equal(x.grad, np.full(6, 2.0))

    def test_reshape_tuple_arg(self):
        assert nn.Tensor(np.zeros(6)).reshape((3, 2)).shape == (3, 2)

    def test_flatten(self):
        assert nn.Tensor(np.zeros((2, 3))).flatten().shape == (6,)

    def test_transpose_default_and_grad(self, rng):
        arr = rng.normal(size=(2, 3))
        x = nn.Tensor(arr, requires_grad=True)
        y = x.T
        np.testing.assert_array_equal(y.data, arr.T)
        y.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 3)))

    def test_transpose_axes(self, rng):
        arr = rng.normal(size=(2, 3, 4))
        np.testing.assert_array_equal(
            nn.Tensor(arr).transpose(2, 0, 1).data, arr.transpose(2, 0, 1)
        )

    def test_getitem_fancy_index_grad(self):
        x = nn.Tensor(np.arange(6.0), requires_grad=True)
        picked = x[np.array([0, 0, 5])]
        picked.sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0, 0, 0, 0, 0, 1.0])

    def test_getitem_slice_grad(self):
        x = nn.Tensor(np.arange(6.0), requires_grad=True)
        x[2:4].sum().backward()
        np.testing.assert_array_equal(x.grad, [0, 0, 1, 1, 0, 0])

    def test_pad2d_roundtrip_grad(self, gradcheck, rng):
        gradcheck(lambda t: (t.pad2d(1) ** 2).sum(), rng.normal(size=(1, 2, 3, 3)))

    def test_pad2d_zero_is_identity(self):
        x = nn.Tensor(np.ones((1, 1, 2, 2)))
        assert x.pad2d(0) is x


class TestCombinators:
    def test_concat_values_and_grads(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        b = nn.Tensor([3.0], requires_grad=True)
        out = nn.concat([a, b])
        np.testing.assert_array_equal(out.data, [1.0, 2.0, 3.0])
        (out * nn.Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 2.0])
        np.testing.assert_array_equal(b.grad, [3.0])

    def test_concat_axis1(self, rng):
        a, b = rng.normal(size=(2, 2)), rng.normal(size=(2, 3))
        out = nn.concat([nn.Tensor(a), nn.Tensor(b)], axis=1)
        np.testing.assert_array_equal(out.data, np.concatenate([a, b], axis=1))

    def test_stack_values_and_grads(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        b = nn.Tensor([3.0, 4.0], requires_grad=True)
        out = nn.stack([a, b])
        assert out.shape == (2, 2)
        (out * nn.Tensor([[1.0, 1.0], [2.0, 2.0]])).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])
        np.testing.assert_array_equal(b.grad, [2.0, 2.0])

    def test_where_values_and_grads(self):
        a = nn.Tensor([1.0, 2.0], requires_grad=True)
        b = nn.Tensor([10.0, 20.0], requires_grad=True)
        out = nn.where(np.array([True, False]), a, b)
        np.testing.assert_array_equal(out.data, [1.0, 20.0])
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0])

    def test_zeros_ones_helpers(self):
        assert nn.zeros((2, 2)).data.sum() == 0
        assert nn.ones((2, 2)).data.sum() == 4
        assert nn.zeros(3, requires_grad=True).requires_grad

    def test_ensure_tensor_passthrough(self):
        t = nn.Tensor([1.0])
        assert nn.ensure_tensor(t) is t
        assert isinstance(nn.ensure_tensor([1.0]), nn.Tensor)
