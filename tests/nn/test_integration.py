"""End-to-end learning tests for the nn framework.

These verify the whole stack — conv layers, layer norm, distributions,
Adam — can actually fit small synthetic problems, which catches subtle
gradient bugs that pointwise gradchecks miss.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F


class TestEndToEndLearning:
    def test_cnn_classifies_quadrant_patterns(self, rng):
        """A tiny CNN learns to classify which quadrant of the image a
        bright blob sits in."""
        def make_sample(label):
            image = rng.normal(0, 0.1, size=(1, 8, 8))
            row = 1 if label in (0, 1) else 5
            col = 1 if label in (0, 2) else 5
            image[0, row : row + 2, col : col + 2] += 2.0
            return image

        labels = rng.integers(0, 4, size=96)
        images = np.stack([make_sample(label) for label in labels])

        model = nn.Sequential(
            nn.Conv2d(1, 4, kernel_size=3, stride=2, padding=1, rng=rng),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(4 * 4 * 4, 4, rng=rng),
        )
        optimizer = nn.Adam(model.parameters(), lr=5e-3)
        for __ in range(120):
            optimizer.zero_grad()
            logits = model(nn.Tensor(images))
            F.cross_entropy(logits, labels).backward()
            optimizer.step()

        predictions = np.argmax(model(nn.Tensor(images)).data, axis=1)
        accuracy = (predictions == labels).mean()
        assert accuracy > 0.95

    def test_policy_gradient_bandit(self, rng):
        """REINFORCE on a 4-armed bandit converges to the best arm."""
        logits = nn.Parameter(np.zeros(4))
        optimizer = nn.Adam([logits], lr=0.1)
        arm_rewards = np.array([0.1, 0.9, 0.3, 0.2])
        for __ in range(200):
            dist = nn.Categorical(logits.reshape(1, 4))
            action = int(dist.sample(rng)[0])
            reward = arm_rewards[action] + rng.normal(0, 0.05)
            optimizer.zero_grad()
            loss = -dist.log_prob(np.array([action])) * (reward - arm_rewards.mean())
            loss.sum().backward()
            optimizer.step()
        final = nn.Categorical(logits.reshape(1, 4)).probs()[0]
        assert np.argmax(final) == 1
        assert final[1] > 0.5

    def test_layernorm_network_trains_with_large_input_scale(self, rng):
        """Layer norm lets training survive badly scaled inputs."""
        x = rng.normal(0, 100.0, size=(64, 8))
        y = (x[:, 0] > 0).astype(np.int64)
        model = nn.Sequential(
            nn.Linear(8, 16, rng=rng),
            nn.LayerNorm(16),
            nn.ReLU(),
            nn.Linear(16, 2, rng=rng),
        )
        optimizer = nn.Adam(model.parameters(), lr=1e-2)
        for __ in range(150):
            optimizer.zero_grad()
            F.cross_entropy(model(nn.Tensor(x)), y).backward()
            optimizer.step()
        predictions = np.argmax(model(nn.Tensor(x)).data, axis=1)
        assert (predictions == y).mean() > 0.9


class TestSoftplus:
    def test_values(self, rng):
        x = rng.normal(size=10)
        np.testing.assert_allclose(
            F.softplus(nn.Tensor(x)).data, np.log1p(np.exp(x)), atol=1e-10
        )

    def test_stable_for_large_inputs(self):
        out = F.softplus(nn.Tensor([800.0, -800.0]))
        assert np.all(np.isfinite(out.data))
        assert out.data[0] == pytest.approx(800.0)
        assert out.data[1] == pytest.approx(0.0, abs=1e-10)

    def test_gradient_is_sigmoid(self):
        x = nn.Tensor([0.0, 2.0, -2.0], requires_grad=True)
        F.softplus(x).sum().backward()
        np.testing.assert_allclose(x.grad, 1 / (1 + np.exp(-x.data)))

    def test_gradcheck(self, gradcheck, rng):
        gradcheck(lambda t: F.softplus(t).sum(), rng.normal(size=(3, 3)))
