"""Tests for the nn extras: schedulers, RMSprop, dropout, one-hot, flatten."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.modules import Parameter


def make_param(values):
    return Parameter(np.asarray(values, dtype=np.float64))


class TestSchedulers:
    def make_opt(self):
        return nn.SGD([make_param([1.0])], lr=1.0)

    def test_linear_decay_endpoints(self):
        opt = self.make_opt()
        sched = nn.LinearDecay(opt, total_steps=10, final_lr=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0 - 0.09)
        for __ in range(20):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_step_decay(self):
        opt = self.make_opt()
        sched = nn.StepDecay(opt, every=2, gamma=0.5)
        lrs = [sched.step() for __ in range(5)]
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25])

    def test_cosine_decay_monotone_to_final(self):
        opt = self.make_opt()
        sched = nn.CosineDecay(opt, total_steps=8, final_lr=0.01)
        lrs = [sched.step() for __ in range(8)]
        assert all(b <= a + 1e-12 for a, b in zip(lrs, lrs[1:]))
        assert lrs[-1] == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (nn.LinearDecay, {"total_steps": 0}),
            (nn.LinearDecay, {"total_steps": 5, "final_lr": 0.0}),
            (nn.StepDecay, {"every": 0}),
            (nn.StepDecay, {"every": 1, "gamma": 0.0}),
            (nn.CosineDecay, {"total_steps": 0}),
        ],
    )
    def test_validation(self, cls, kwargs):
        with pytest.raises(ValueError):
            cls(self.make_opt(), **kwargs)


class TestRMSprop:
    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = nn.RMSprop([p], lr=0.05)
        for __ in range(300):
            p.grad = 2 * (p.data - 1.0)
            opt.step()
        np.testing.assert_allclose(p.data, [1.0], atol=1e-2)

    def test_skips_none_grads(self):
        p = make_param([1.0])
        nn.RMSprop([p]).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            nn.RMSprop([make_param([1.0])], alpha=1.0)


class TestFlattenGradients:
    def test_round_trip(self):
        a = make_param(np.ones((2, 3)))
        b = make_param(np.ones(4))
        a.grad = np.full((2, 3), 2.0)
        b.grad = np.full(4, 3.0)
        flat = nn.flatten_gradients([a, b])
        assert flat.shape == (10,)
        back = nn.unflatten_vector(flat, [a, b])
        np.testing.assert_array_equal(back[0], a.grad)
        np.testing.assert_array_equal(back[1], b.grad)

    def test_none_grads_become_zeros(self):
        a = make_param(np.ones(3))
        flat = nn.flatten_gradients([a])
        np.testing.assert_array_equal(flat, np.zeros(3))

    def test_unflatten_size_mismatch(self):
        a = make_param(np.ones(3))
        with pytest.raises(ValueError, match="elements"):
            nn.unflatten_vector(np.zeros(4), [a])

    def test_empty(self):
        assert nn.flatten_gradients([]).shape == (0,)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_multidim(self):
        out = F.one_hot(np.array([[0, 1], [1, 0]]), 2)
        assert out.shape == (2, 2, 2)
        np.testing.assert_array_equal(out.sum(axis=-1), np.ones((2, 2)))

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            F.one_hot(np.array([3]), 3)

    def test_bad_num_classes(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0]), 0)


class TestDropout:
    def test_preserves_expectation(self, rng):
        x = nn.Tensor(np.ones((200, 200)))
        out = F.dropout(x, p=0.4, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_zero_fraction(self, rng):
        x = nn.Tensor(np.ones(10_000))
        out = F.dropout(x, p=0.3, rng=rng)
        zero_fraction = (out.data == 0).mean()
        assert zero_fraction == pytest.approx(0.3, abs=0.02)

    def test_eval_mode_identity(self, rng):
        x = nn.Tensor(np.ones(5))
        assert F.dropout(x, p=0.5, rng=rng, training=False) is x

    def test_p_zero_identity(self, rng):
        x = nn.Tensor(np.ones(5))
        assert F.dropout(x, p=0.0, rng=rng) is x

    def test_gradient_masked_identically(self, rng):
        x = nn.Tensor(np.ones(100), requires_grad=True)
        out = F.dropout(x, p=0.5, rng=rng)
        out.sum().backward()
        # Gradient is the same mask/scale applied in forward.
        np.testing.assert_array_equal(x.grad, out.data)

    def test_bad_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(nn.Tensor([1.0]), p=1.0, rng=rng)


class TestDropoutModule:
    def test_train_mode_drops(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        out = layer(nn.Tensor(np.ones(10_000)))
        assert (out.data == 0).mean() == pytest.approx(0.5, abs=0.02)

    def test_eval_mode_passthrough(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        layer.training = False
        x = nn.Tensor(np.ones(100))
        assert layer(x) is x

    def test_in_sequential(self, rng):
        model = nn.Sequential(
            nn.Linear(4, 8, rng=rng), nn.Dropout(0.2, rng=rng), nn.Linear(8, 2, rng=rng)
        )
        out = model(nn.Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
