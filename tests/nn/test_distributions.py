"""Tests for the Categorical and Bernoulli policy distributions."""

import numpy as np
import pytest

from repro import nn


class TestCategorical:
    def test_probs_sum_to_one(self, rng):
        dist = nn.Categorical(nn.Tensor(rng.normal(size=(6, 4))))
        np.testing.assert_allclose(dist.probs().sum(axis=-1), 1.0)

    def test_sampling_matches_probs(self, rng):
        logits = nn.Tensor(np.log(np.array([[0.7, 0.2, 0.1]])))
        dist = nn.Categorical(logits)
        samples = np.array([dist.sample(rng)[0] for __ in range(4000)])
        freqs = np.bincount(samples, minlength=3) / len(samples)
        np.testing.assert_allclose(freqs, [0.7, 0.2, 0.1], atol=0.03)

    def test_mode(self):
        dist = nn.Categorical(nn.Tensor([[0.0, 5.0, 1.0]]))
        assert dist.mode()[0] == 1

    def test_log_prob_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        dist = nn.Categorical(nn.Tensor(logits))
        actions = np.array([0, 2, 1, 1])
        logp = dist.log_prob(actions).data
        manual = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        np.testing.assert_allclose(logp, manual[np.arange(4), actions])

    def test_log_prob_gradient_direction(self):
        # Increasing the log-prob of an action should raise its logit.
        logits = nn.Tensor(np.zeros((1, 3)), requires_grad=True)
        dist = nn.Categorical(logits)
        dist.log_prob(np.array([1])).sum().backward()
        assert logits.grad[0, 1] > 0
        assert logits.grad[0, 0] < 0

    def test_log_prob_shape_mismatch(self, rng):
        dist = nn.Categorical(nn.Tensor(rng.normal(size=(4, 3))))
        with pytest.raises(ValueError, match="shape"):
            dist.log_prob(np.zeros((5,), dtype=int))

    def test_multi_axis_batch(self, rng):
        logits = rng.normal(size=(2, 3, 5))
        dist = nn.Categorical(nn.Tensor(logits))
        actions = rng.integers(0, 5, size=(2, 3))
        assert dist.log_prob(actions).shape == (2, 3)
        assert dist.sample(rng).shape == (2, 3)
        assert dist.entropy().shape == (2, 3)

    def test_entropy_bounds(self, rng):
        uniform = nn.Categorical(nn.Tensor(np.zeros((1, 4))))
        assert uniform.entropy().data[0] == pytest.approx(np.log(4))
        peaked = nn.Categorical(nn.Tensor([[100.0, 0.0, 0.0, 0.0]]))
        assert peaked.entropy().data[0] == pytest.approx(0.0, abs=1e-6)

    def test_kl_divergence_self_is_zero(self, rng):
        logits = nn.Tensor(rng.normal(size=(3, 4)))
        dist = nn.Categorical(logits)
        np.testing.assert_allclose(dist.kl_divergence(dist).data, 0.0, atol=1e-12)

    def test_kl_divergence_nonnegative(self, rng):
        p = nn.Categorical(nn.Tensor(rng.normal(size=(5, 4))))
        q = nn.Categorical(nn.Tensor(rng.normal(size=(5, 4))))
        assert np.all(p.kl_divergence(q).data >= -1e-12)

    def test_masked_logits_never_sampled(self, rng):
        logits = np.zeros((1, 4))
        logits[0, 2] = -1e9
        dist = nn.Categorical(nn.Tensor(logits))
        samples = [dist.sample(rng)[0] for __ in range(500)]
        assert 2 not in samples


class TestBernoulli:
    def test_probs_are_sigmoid(self, rng):
        logits = rng.normal(size=5)
        dist = nn.Bernoulli(nn.Tensor(logits))
        np.testing.assert_allclose(dist.probs(), 1 / (1 + np.exp(-logits)))

    def test_sampling_frequency(self, rng):
        dist = nn.Bernoulli(nn.Tensor(np.full(4000, np.log(3.0))))  # p = 0.75
        samples = dist.sample(rng)
        assert samples.mean() == pytest.approx(0.75, abs=0.03)

    def test_mode(self):
        dist = nn.Bernoulli(nn.Tensor([-1.0, 1.0]))
        np.testing.assert_array_equal(dist.mode(), [0, 1])

    def test_log_prob_matches_manual(self, rng):
        logits = rng.normal(size=6)
        dist = nn.Bernoulli(nn.Tensor(logits))
        outcomes = (rng.random(6) < 0.5).astype(np.float64)
        p = 1 / (1 + np.exp(-logits))
        manual = outcomes * np.log(p) + (1 - outcomes) * np.log(1 - p)
        np.testing.assert_allclose(dist.log_prob(outcomes).data, manual, atol=1e-10)

    def test_log_prob_stable_for_extreme_logits(self):
        dist = nn.Bernoulli(nn.Tensor([60.0, -60.0]))
        logp = dist.log_prob(np.array([1.0, 0.0])).data
        assert np.all(np.isfinite(logp))
        np.testing.assert_allclose(logp, 0.0, atol=1e-10)

    def test_log_prob_shape_mismatch(self):
        dist = nn.Bernoulli(nn.Tensor(np.zeros(3)))
        with pytest.raises(ValueError, match="shape"):
            dist.log_prob(np.zeros(4))

    def test_entropy_max_at_half(self):
        dist = nn.Bernoulli(nn.Tensor([0.0]))
        assert dist.entropy().data[0] == pytest.approx(np.log(2))

    def test_entropy_near_zero_when_certain(self):
        dist = nn.Bernoulli(nn.Tensor([50.0]))
        assert dist.entropy().data[0] == pytest.approx(0.0, abs=1e-6)

    def test_log_prob_gradient(self):
        logits = nn.Tensor(np.zeros(2), requires_grad=True)
        dist = nn.Bernoulli(logits)
        dist.log_prob(np.array([1.0, 0.0])).sum().backward()
        # d/dz log p(1) = 1 - sigmoid(z) = 0.5; d/dz log p(0) = -sigmoid(z).
        np.testing.assert_allclose(logits.grad, [0.5, -0.5])
