"""Tests for the module/layer system."""

import numpy as np
import pytest

from repro import nn


class TestModuleRegistration:
    def test_parameters_collected_in_order(self, rng):
        lin = nn.Linear(3, 2, rng=rng)
        names = [name for name, __ in lin.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_module_names(self, rng):
        seq = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
        names = [name for name, __ in seq.named_parameters()]
        assert names == ["layer0.weight", "layer0.bias", "layer2.weight", "layer2.bias"]

    def test_num_parameters(self, rng):
        lin = nn.Linear(3, 2, rng=rng)
        assert lin.num_parameters() == 3 * 2 + 2

    def test_zero_grad_clears_all(self, rng):
        lin = nn.Linear(3, 2, rng=rng)
        lin(nn.Tensor(np.ones((1, 3)))).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None and lin.bias.grad is None

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)


class TestStateDict:
    def test_round_trip(self, rng):
        a = nn.Linear(3, 2, rng=rng)
        b = nn.Linear(3, 2, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        np.testing.assert_array_equal(a.bias.data, b.bias.data)

    def test_state_dict_is_a_copy(self, rng):
        lin = nn.Linear(2, 2, rng=rng)
        state = lin.state_dict()
        state["weight"][...] = 0.0
        assert not np.all(lin.weight.data == 0.0)

    def test_missing_key_raises(self, rng):
        lin = nn.Linear(2, 2, rng=rng)
        with pytest.raises(KeyError, match="missing"):
            lin.load_state_dict({"weight": np.zeros((2, 2))})

    def test_shape_mismatch_raises(self, rng):
        lin = nn.Linear(2, 2, rng=rng)
        state = lin.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape"):
            lin.load_state_dict(state)

    def test_copy_from(self, rng):
        a = nn.Linear(3, 2, rng=rng)
        b = nn.Linear(3, 2, rng=np.random.default_rng(1))
        b.copy_from(a)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_copy_from_structural_mismatch(self, rng):
        a = nn.Linear(3, 2, rng=rng)
        b = nn.Linear(2, 3, rng=rng)
        with pytest.raises(ValueError, match="differ"):
            b.copy_from(a)


class TestLinear:
    def test_output_shape_and_value(self, rng):
        lin = nn.Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = lin(nn.Tensor(x))
        assert out.shape == (5, 3)
        np.testing.assert_allclose(out.data, x @ lin.weight.data.T + lin.bias.data)

    def test_no_bias(self, rng):
        lin = nn.Linear(4, 3, rng=rng, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    @pytest.mark.parametrize("init_name", ["kaiming", "xavier", "orthogonal"])
    def test_init_kinds(self, rng, init_name):
        lin = nn.Linear(8, 8, rng=rng, weight_init=init_name)
        assert lin.weight.data.std() > 0

    def test_orthogonal_init_is_orthogonal(self, rng):
        lin = nn.Linear(6, 6, rng=rng, weight_init="orthogonal", gain=1.0)
        product = lin.weight.data @ lin.weight.data.T
        np.testing.assert_allclose(product, np.eye(6), atol=1e-10)

    def test_unknown_init_rejected(self, rng):
        with pytest.raises(ValueError, match="weight_init"):
            nn.Linear(2, 2, rng=rng, weight_init="nope")


class TestConv2dModule:
    def test_shapes(self, rng):
        conv = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1, rng=rng)
        out = conv(nn.Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_output_size_helper(self, rng):
        conv = nn.Conv2d(1, 1, kernel_size=3, stride=2, padding=1, rng=rng)
        assert conv.output_size(8, 8) == (4, 4)
        assert conv.output_size(7, 9) == (4, 5)

    def test_gradients_flow_to_weights(self, rng):
        conv = nn.Conv2d(1, 2, kernel_size=3, rng=rng)
        conv(nn.Tensor(rng.normal(size=(1, 1, 5, 5)))).sum().backward()
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None


class TestNorms:
    def test_layer_norm_learnable(self, rng):
        ln = nn.LayerNorm(4)
        out = ln(nn.Tensor(rng.normal(size=(2, 4))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
        out.sum().backward()
        assert ln.weight.grad is not None

    def test_channel_layer_norm_normalizes_whole_map(self, rng):
        cln = nn.ChannelLayerNorm(3)
        x = rng.normal(5.0, 2.0, size=(2, 3, 4, 4))
        out = cln(nn.Tensor(x))
        flattened = out.data.reshape(2, -1)
        np.testing.assert_allclose(flattened.mean(axis=1), 0.0, atol=1e-9)
        np.testing.assert_allclose(flattened.std(axis=1), 1.0, atol=1e-3)

    def test_channel_layer_norm_rejects_non_4d(self):
        with pytest.raises(ValueError, match="4-D"):
            nn.ChannelLayerNorm(2)(nn.Tensor(np.zeros((2, 2))))


class TestEmbedding:
    def test_lookup(self, rng):
        emb = nn.Embedding(10, 4, rng=rng)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out.data[0], out.data[1])

    def test_out_of_range_raises(self, rng):
        emb = nn.Embedding(5, 2, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_frozen_embedding_gets_no_grad(self, rng):
        emb = nn.Embedding(5, 2, rng=rng, frozen=True)
        out = emb(np.array([0, 1]))
        assert not out.requires_grad

    def test_trainable_embedding_gets_grad(self, rng):
        emb = nn.Embedding(5, 2, rng=rng)
        emb(np.array([0, 0])).sum().backward()
        np.testing.assert_array_equal(emb.weight.grad[0], [2.0, 2.0])
        np.testing.assert_array_equal(emb.weight.grad[2], [0.0, 0.0])


class TestSequentialAndWrappers:
    def test_sequential_applies_in_order(self, rng):
        seq = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.ReLU())
        out = seq(nn.Tensor(np.ones((1, 2))))
        assert np.all(out.data >= 0)

    def test_sequential_len_iter(self, rng):
        seq = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(seq) == 2
        assert all(isinstance(layer, nn.Module) for layer in seq)

    def test_flatten(self, rng):
        out = nn.Flatten()(nn.Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_activation_modules(self, rng):
        x = nn.Tensor(np.array([-1.0, 1.0]))
        assert np.all(nn.ReLU()(x).data == [0.0, 1.0])
        np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh(x.data))
        np.testing.assert_allclose(nn.Sigmoid()(x).data, 1 / (1 + np.exp(-x.data)))

    def test_reprs(self, rng):
        assert "Linear" in repr(nn.Linear(2, 2, rng=rng))
        assert "Conv2d" in repr(nn.Conv2d(1, 1, 3, rng=rng))
        assert "Sequential" in repr(nn.Sequential(nn.ReLU()))
