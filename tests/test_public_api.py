"""Smoke tests of the top-level public API surface."""

import numpy as np
import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_subpackages_importable(self):
        for module in self._subpackages():
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_all_is_complete(self):
        """Every public (non-underscore, non-module) name appears in __all__."""
        import types

        for module in self._subpackages():
            public = {
                name
                for name, value in vars(module).items()
                if not name.startswith("_") and not isinstance(value, types.ModuleType)
            }
            missing = public - set(module.__all__)
            assert not missing, f"{module.__name__}: missing from __all__: {sorted(missing)}"
            assert len(module.__all__) == len(set(module.__all__)), module.__name__

    @staticmethod
    def _subpackages():
        import repro.agents
        import repro.analysis
        import repro.curiosity
        import repro.distributed
        import repro.env
        import repro.experiments
        import repro.nn
        import repro.obs
        import repro.utils

        return (
            repro.agents,
            repro.analysis,
            repro.curiosity,
            repro.distributed,
            repro.env,
            repro.experiments,
            repro.nn,
            repro.obs,
            repro.utils,
        )


class TestQuickstartFlow:
    """The README quickstart must work exactly as documented."""

    def test_readme_quickstart(self):
        trainer = repro.build_trainer(
            "cews",
            repro.smoke_config(horizon=8, num_pois=10),
            train=repro.TrainConfig(num_employees=2, episodes=2, k_updates=1),
            ppo=repro.PPOConfig(batch_size=8, epochs=1),
        )
        history = trainer.train()
        trainer.close()
        assert np.isfinite(history.logs[-1].kappa)

    def test_evaluate_scripted_agent(self):
        config = repro.smoke_config(horizon=8, num_pois=10)
        env = repro.CrowdsensingEnv(config, reward_mode="dense")
        metrics = repro.evaluate_policy(
            repro.GreedyAgent(), env, np.random.default_rng(0)
        )
        assert 0.0 <= metrics.kappa <= 1.0


class TestSeedingUtils:
    def test_spawn_rngs_independent(self):
        from repro.utils import spawn_rngs

        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_spawn_rngs_deterministic(self):
        from repro.utils import spawn_rngs

        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second

    def test_spawn_validation(self):
        from repro.utils import spawn_rngs

        with pytest.raises(ValueError):
            spawn_rngs(0, 0)

    def test_rng_from(self):
        from repro.utils import rng_from

        gen = np.random.default_rng(0)
        assert rng_from(gen) is gen
        assert isinstance(rng_from(5), np.random.Generator)
        assert isinstance(rng_from(None), np.random.Generator)
