"""Shared fixtures for the observability suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import PPOConfig
from repro.distributed import TrainConfig, build_trainer, save_checkpoint
from repro.env import smoke_config
from repro.obs import MetricsRegistry, get_profiler, get_tracer, set_registry


def seeded_cews_run(checkpoint_path, backend=None, **train_overrides):
    """One deterministic 2-episode CEWS training run.

    Returns ``(curves, checkpoint_arrays)`` where ``curves`` are the
    per-episode float series of the history and ``checkpoint_arrays`` is
    the full content of the saved checkpoint (parameters, Adam moments,
    RNG states, manifest+checksum) — the bitwise fingerprint of the run.
    ``backend`` picks the employee driver (serial/thread/process); the
    fingerprint must not depend on it.
    """
    trainer = build_trainer(
        "cews",
        smoke_config(seed=5, horizon=10, num_pois=15),
        train=TrainConfig(
            num_employees=2,
            episodes=2,
            k_updates=1,
            seed=0,
            backend=backend,
            **train_overrides,
        ),
        ppo=PPOConfig(batch_size=10, epochs=1),
    )
    history = trainer.train()
    save_checkpoint(trainer, str(checkpoint_path))
    trainer.close()
    curves = (
        history.curve("kappa"),
        history.curve("rho"),
        history.curve("policy_loss"),
        history.curve("value_loss"),
        history.curve("extrinsic_reward"),
    )
    with np.load(str(checkpoint_path)) as archive:
        arrays = {key: archive[key].copy() for key in archive.files}
    return curves, arrays


def assert_runs_bitwise_equal(first, second):
    """Histories float-equal and checkpoint arrays byte-equal."""
    curves_a, arrays_a = first
    curves_b, arrays_b = second
    assert curves_a == curves_b
    assert sorted(arrays_a) == sorted(arrays_b)
    for key in arrays_a:
        assert arrays_a[key].dtype == arrays_b[key].dtype, key
        assert np.array_equal(arrays_a[key], arrays_b[key]), key


@pytest.fixture
def registry():
    """Swap in a fresh default registry; restore the old one afterwards."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture(autouse=True)
def no_leaked_instrumentation():
    """A failing test must not leave a tracer/profiler installed."""
    yield
    tracer = get_tracer()
    if tracer is not None:
        tracer.uninstall()
    profiler = get_profiler()
    if profiler is not None:
        profiler.disable()
