"""Metrics federation: worker deltas, chief folding, straggler lag."""

from __future__ import annotations

import pytest

from repro.obs.federation import (
    FEDERATION_SCHEMA_VERSION,
    WorkerTelemetry,
    collect_delta,
    fold_into,
    update_employee_lag,
)
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs


class _Stats:
    policy_loss = 0.5
    value_loss = 0.25
    entropy = 1.5
    clip_fraction = 0.1
    approx_kl = 0.01


class _Result:
    intrinsic_reward = 0.75
    extrinsic_reward = -2.0


class TestWorkerTelemetry:
    def test_first_collect_ships_everything_observed(self):
        telemetry = WorkerTelemetry()
        telemetry.note_command("EXPLORE")
        telemetry.observe_phase("explore", 0.2)
        telemetry.note_episode(_Result())
        delta = telemetry.collect()
        assert delta["schema"] == FEDERATION_SCHEMA_VERSION
        metrics = delta["metrics"]
        assert metrics["repro_worker_commands_total"]["series"][("EXPLORE",)] == 1.0
        assert metrics["repro_worker_episodes_total"]["series"][()] == 1.0
        assert metrics["repro_worker_intrinsic_reward"]["series"][()] == 0.75
        phase = metrics["repro_phase_seconds"]
        assert phase["kind"] == "histogram"
        assert phase["series"][("explore",)]["count"] == 1

    def test_quiet_interval_collects_none(self):
        telemetry = WorkerTelemetry()
        telemetry.note_command("SYNC")
        assert telemetry.collect() is not None
        assert telemetry.collect() is None

    def test_counter_delta_is_increment_not_total(self):
        telemetry = WorkerTelemetry()
        telemetry.note_command("MINIBATCH")
        telemetry.collect()
        telemetry.note_command("MINIBATCH")
        telemetry.note_command("MINIBATCH")
        delta = telemetry.collect()
        series = delta["metrics"]["repro_worker_commands_total"]["series"]
        assert series[("MINIBATCH",)] == 2.0

    def test_gauge_ships_only_on_change(self):
        telemetry = WorkerTelemetry()
        telemetry.note_stats(_Stats())
        delta = telemetry.collect()
        assert delta["metrics"]["repro_worker_policy_loss"]["series"][()] == 0.5
        telemetry.note_stats(_Stats())  # same values: no delta
        assert telemetry.collect() is None

    def test_histogram_delta_contains_bucket_counts(self):
        telemetry = WorkerTelemetry()
        telemetry.observe_phase("gradients", 0.003)
        telemetry.collect()
        telemetry.observe_phase("gradients", 0.004)
        delta = telemetry.collect()
        state = delta["metrics"]["repro_phase_seconds"]["series"][("gradients",)]
        assert state["count"] == 1
        assert sum(state["counts"]) >= 1
        assert state["sum"] == pytest.approx(0.004)


class TestFoldInto:
    def _delta(self):
        telemetry = WorkerTelemetry()
        telemetry.note_command("EXPLORE")
        telemetry.observe_phase("explore", 0.2)
        telemetry.note_episode(_Result())
        return telemetry.collect()

    def test_folded_series_carry_worker_and_host_labels(self):
        chief = MetricsRegistry()
        folded = fold_into(chief, self._delta(), worker=3, host="nodeA")
        assert folded > 0
        text = chief.render_prometheus()
        assert (
            'repro_worker_commands_total{op="EXPLORE",worker="3",host="nodeA"} 1'
            in text
        )
        assert 'phase="explore",worker="3",host="nodeA"' in text

    def test_two_workers_fold_into_distinct_series(self):
        chief = MetricsRegistry()
        fold_into(chief, self._delta(), worker=0, host="h")
        fold_into(chief, self._delta(), worker=1, host="h")
        text = chief.render_prometheus()
        assert 'worker="0",host="h"' in text
        assert 'worker="1",host="h"' in text

    def test_repeated_counter_folds_accumulate(self):
        chief = MetricsRegistry()
        fold_into(chief, self._delta(), worker=0)
        fold_into(chief, self._delta(), worker=0)
        snapshot = chief.get("repro_worker_commands_total").snapshot()
        (value,) = [
            v for k, v in snapshot["series"].items() if 'worker="0"' in k
        ]
        assert value == 2.0

    def test_unknown_schema_dropped(self):
        chief = MetricsRegistry()
        assert fold_into(chief, {"schema": 99, "metrics": {}}, worker=0) == 0
        assert fold_into(chief, None, worker=0) == 0

    def test_label_layout_collision_skipped_not_fatal(self, caplog):
        chief = MetricsRegistry()
        # Chief already owns the name without fleet extras: folding must
        # skip it (never truncate worker/host) but fold the rest.
        chief.counter("repro_worker_commands_total", "", labelnames=("op",))
        with caplog.at_level("WARNING", logger="repro.obs.federation"):
            folded = fold_into(chief, self._delta(), worker=0, host="h")
        assert folded > 0
        assert any("cannot fold" in r.message for r in caplog.records)
        text = chief.render_prometheus()
        assert 'repro_worker_episodes_total{worker="0",host="h"} 1' in text
        collided = [
            line
            for line in text.splitlines()
            if line.startswith("repro_worker_commands_total")
            and 'worker="0"' in line
        ]
        assert collided == []

    def test_chief_unlabelled_rendering_unchanged_by_extras(self):
        chief = MetricsRegistry()
        own = chief.counter(
            "repro_worker_episodes_total", "x", extra_labelnames=("worker", "host")
        )
        own.inc()
        assert "repro_worker_episodes_total 1" in chief.render_prometheus()


class TestEmployeeLag:
    def test_gauge_records_delta_to_median(self):
        registry = MetricsRegistry()
        stragglers = update_employee_lag(
            {0: 1.0, 1: 1.0, 2: 5.0}, registry=registry
        )
        assert stragglers == [2]
        snapshot = registry.get("repro_employee_lag_seconds").snapshot()
        series = snapshot["series"]
        assert series['repro_employee_lag_seconds{employee="2"}'] == 4.0
        assert series['repro_employee_lag_seconds{employee="0"}'] == 0.0

    def test_empty_and_uniform_fleets_have_no_stragglers(self):
        registry = MetricsRegistry()
        assert update_employee_lag({}, registry=registry) == []
        assert update_employee_lag({0: 0.5, 1: 0.5}, registry=registry) == []

    def test_threshold_scales_with_k(self):
        registry = MetricsRegistry()
        durations = {0: 1.0, 1: 1.0, 2: 2.5}
        assert update_employee_lag(durations, registry=registry, k=2.0) == [2]
        assert update_employee_lag(durations, registry=registry, k=3.0) == []
