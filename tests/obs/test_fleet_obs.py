"""Fleet observability end to end on the real employee backends.

The PR 8 acceptance gates exercised here:

* trace context propagates to process/socket workers, which emit their
  own ``employee.*`` spans carrying ``worker``/``host`` labels — and the
  chief's synthetic stand-ins never double-count once the real span
  arrives;
* metrics federation exposes per-worker labelled series (including the
  ``repro_employee_lag_seconds`` straggler gauge) in the chief registry;
* the whole stack — tracing + federation — leaves the seeded run
  bitwise-identical to an uninstrumented one, and so does disabling
  federation.
"""

from __future__ import annotations

import pytest

from repro.obs import Tracer, read_trace, summarize_trace, trace_path_for
from repro.obs.trace import dedupe_synthetic, render_trace_summary

from .conftest import assert_runs_bitwise_equal, seeded_cews_run

pytestmark = pytest.mark.obs

#: 2 employees x 2 episodes: each explores exactly once per episode.
EXPECTED_EXPLORES = 4


def _fleet_run(tmp_path, backend, name="fleet"):
    """A seeded run with tracing + federation on; returns (run, records)."""
    path = trace_path_for(str(tmp_path / name))
    with Tracer(path):
        run = seeded_cews_run(tmp_path / f"{name}.npz", backend=backend)
    return run, dedupe_synthetic(read_trace(path))


def _explore_spans(records):
    return [
        record
        for record in records
        if record["type"] == "span" and record["name"] == "employee.explore"
    ]


class TestProcessFleet:
    def test_workers_emit_their_own_spans(self, tmp_path, registry):
        _, records = _fleet_run(tmp_path, "process")
        explore = _explore_spans(records)
        assert len(explore) == EXPECTED_EXPLORES
        for record in explore:
            attrs = record["attrs"]
            assert not attrs.get("synthetic"), "real spans, not chief stand-ins"
            assert "worker" in attrs and "host" in attrs
        workers = {record["attrs"]["worker"] for record in explore}
        assert workers == {0, 1}

    def test_summary_has_per_host_worker_table(self, tmp_path, registry):
        _, records = _fleet_run(tmp_path, "process")
        summary = summarize_trace(records)
        hosted = [
            key
            for key in summary["by_host_worker"]
            if key.startswith("employee.explore[")
        ]
        assert len(hosted) >= 2  # one row per employee
        assert "per-host/per-worker timings" in render_trace_summary(summary)

    def test_federation_exposes_per_worker_series_and_lag(
        self, tmp_path, registry
    ):
        _fleet_run(tmp_path, "process")
        text = registry.render_prometheus()
        per_worker = {
            line.split("{")[0]
            for line in text.splitlines()
            if 'worker="' in line and not line.startswith("#")
        }
        assert len(per_worker) >= 3
        assert any(name.startswith("repro_worker_") for name in per_worker)
        lag = registry.get("repro_employee_lag_seconds").snapshot()["series"]
        assert 'repro_employee_lag_seconds{employee="0"}' in lag
        assert 'repro_employee_lag_seconds{employee="1"}' in lag

    def test_full_fleet_obs_is_bitwise_invisible(self, tmp_path, registry):
        baseline = seeded_cews_run(tmp_path / "plain.npz")
        run, records = _fleet_run(tmp_path, "process")
        assert_runs_bitwise_equal(baseline, run)
        assert records, "instrumented run must actually have traced"

    def test_disabling_federation_is_also_bitwise_invisible(
        self, tmp_path, registry
    ):
        run = seeded_cews_run(
            tmp_path / "nofed.npz", backend="process", federate=False
        )
        # Snapshot before the (federating) baseline run shares the registry.
        text = registry.render_prometheus()
        assert 'worker="' not in text
        assert "repro_employee_lag_seconds" not in text
        baseline = seeded_cews_run(tmp_path / "plain.npz")
        assert_runs_bitwise_equal(baseline, run)


@pytest.mark.transport
class TestSocketFleet:
    def test_socket_fleet_spans_federation_and_bitwise(
        self, tmp_path, registry
    ):
        baseline = seeded_cews_run(tmp_path / "plain.npz")
        run, records = _fleet_run(tmp_path, "socket")
        assert_runs_bitwise_equal(baseline, run)

        explore = _explore_spans(records)
        assert len(explore) == EXPECTED_EXPLORES
        assert {record["attrs"]["worker"] for record in explore} == {0, 1}
        assert all(record["attrs"].get("host") for record in explore)

        text = registry.render_prometheus()
        assert 'worker="0"' in text and 'worker="1"' in text
        lag = registry.get("repro_employee_lag_seconds").snapshot()["series"]
        assert len(lag) == 2
