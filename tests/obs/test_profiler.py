"""Autograd profiler: patching contract, stats, bitwise equivalence."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.obs import OpProfiler, get_profiler, profile_env_enabled
from repro.obs.profiler import _FUNCTIONAL_OPS, _TENSOR_OPS

from .conftest import assert_runs_bitwise_equal, seeded_cews_run

pytestmark = pytest.mark.obs


class TestPatchingContract:
    def test_enable_disable_restores_every_callable(self):
        tensor_before = {name: Tensor.__dict__[name] for name in _TENSOR_OPS}
        functional_before = {name: getattr(F, name) for name in _FUNCTIONAL_OPS}
        backward_before = Tensor.backward

        profiler = OpProfiler().enable()
        assert Tensor.__dict__["__add__"] is not tensor_before["__add__"]
        assert getattr(F, "conv2d") is not functional_before["conv2d"]
        assert Tensor.backward is not backward_before
        profiler.disable()

        for name, orig in tensor_before.items():
            assert Tensor.__dict__[name] is orig, name
        for name, orig in functional_before.items():
            assert getattr(F, name) is orig, name
        assert Tensor.backward is backward_before

    def test_double_enable_rejected(self):
        first = OpProfiler().enable()
        try:
            with pytest.raises(RuntimeError, match="already enabled"):
                OpProfiler().enable()
        finally:
            first.disable()
        assert get_profiler() is None

    def test_context_manager(self):
        with OpProfiler() as profiler:
            assert profiler.enabled
            assert get_profiler() is profiler
        assert not profiler.enabled
        assert get_profiler() is None

    def test_idempotent_enable_and_disable(self):
        profiler = OpProfiler()
        profiler.disable()  # no-op before enable
        profiler.enable()
        profiler.enable()  # no-op while enabled
        profiler.disable()
        profiler.disable()

    def test_env_toggle(self):
        assert profile_env_enabled({"REPRO_PROFILE": "1"})
        assert profile_env_enabled({"REPRO_PROFILE": "yes"})
        assert not profile_env_enabled({})


class TestStats:
    def test_records_tensor_and_functional_ops(self):
        with OpProfiler() as profiler:
            a = Tensor(np.ones((4, 3)))
            b = Tensor(np.ones((3, 5)), requires_grad=True)
            out = (a @ b).tanh().sum()
            out.backward()
        names = {stats.name for stats in profiler.hotspots()}
        assert {"__matmul__", "tanh", "sum", "backward"} <= names
        matmul = next(s for s in profiler.hotspots() if s.name == "__matmul__")
        assert matmul.calls == 1
        assert matmul.flops == 2 * 4 * 5 * 3
        assert matmul.bytes > 0
        assert matmul.total_s >= matmul.self_s >= 0.0

    def test_composite_ops_count_zero_flops(self):
        with OpProfiler() as profiler:
            x = Tensor(np.ones((2, 3)))
            weight = Tensor(np.ones((4, 3)))
            bias = Tensor(np.zeros(4))
            F.linear(x, weight, bias)
        by_name = {s.name: s for s in profiler.hotspots()}
        assert by_name["linear"].flops == 0
        assert by_name["__matmul__"].flops > 0  # the leaf does the counting
        # Self time of the composite excludes its profiled children.
        assert by_name["linear"].self_s <= by_name["linear"].total_s

    def test_values_unchanged_by_profiling(self):
        a = np.linspace(-1.0, 1.0, 12).reshape(3, 4)
        plain = Tensor(a).sigmoid().mean().item()
        with OpProfiler():
            profiled = Tensor(a).sigmoid().mean().item()
        assert plain == profiled  # bitwise, not approx

    def test_reset_and_render(self):
        with OpProfiler() as profiler:
            Tensor(np.ones(3)).sum()
        assert "autograd hot spots" in profiler.render_table()
        assert "self %" in profiler.render_table()
        assert "op call(s)" in profiler.summary()
        profiler.reset()
        assert profiler.render_table() == "profiler: no ops recorded"
        assert profiler.total_time() == 0.0


class TestBitwiseEquivalence:
    """Acceptance gate: profiling off/on/off yields identical training."""

    def test_profiled_run_bitwise_identical(self, tmp_path):
        baseline = seeded_cews_run(tmp_path / "baseline.npz")

        profiler = OpProfiler().enable()
        try:
            profiled = seeded_cews_run(tmp_path / "profiled.npz")
        finally:
            profiler.disable()
        assert_runs_bitwise_equal(baseline, profiled)
        assert profiler.hotspots(), "profiler saw no ops during training"

        # After disable the unwrapped framework behaves identically too.
        post = seeded_cews_run(tmp_path / "post.npz")
        assert_runs_bitwise_equal(baseline, post)

    def test_profile_of_training_covers_hot_ops(self, tmp_path):
        with OpProfiler() as profiler:
            seeded_cews_run(tmp_path / "run.npz")
        names = {stats.name for stats in profiler.hotspots()}
        assert "backward" in names
        assert "conv2d" in names
        total = profiler.total_time()
        assert total > 0.0
        assert sum(s.self_s for s in profiler.hotspots()) == pytest.approx(total)
