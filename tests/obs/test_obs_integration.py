"""End-to-end observability: instrumented training runs.

The acceptance criteria exercised here:

* a seeded run with tracing installed is bitwise-identical (history
  floats AND checkpoint contents) to an uninstrumented one;
* a fault-injected run surfaces quarantine / crash / restart both as
  trace events and in the metrics snapshot;
* fault recovery logs WARNING records carrying the employee index.
"""

import logging

import pytest

from repro.agents import PPOConfig
from repro.distributed import (
    CorruptionFault,
    CrashFault,
    FaultInjector,
    FaultPlan,
    TrainConfig,
    build_trainer,
)
from repro.env import smoke_config
from repro.obs import Tracer, summarize_trace, trace_path_for

from .conftest import assert_runs_bitwise_equal, seeded_cews_run

pytestmark = pytest.mark.obs


def make_faulty_trainer(injector):
    return build_trainer(
        "cews",
        smoke_config(seed=5, horizon=10, num_pois=15),
        train=TrainConfig(
            num_employees=3,
            episodes=2,
            k_updates=2,
            seed=0,
            quorum_fraction=0.5,
            max_retries=1,
        ),
        ppo=PPOConfig(batch_size=10, epochs=1),
        fault_injector=injector,
    )


class TestTracingIsBitwiseInvisible:
    def test_traced_run_identical_to_plain_run(self, tmp_path):
        baseline = seeded_cews_run(tmp_path / "plain.npz")
        tracer = Tracer(trace_path_for(str(tmp_path / "trace"))).install()
        try:
            traced = seeded_cews_run(tmp_path / "traced.npz")
        finally:
            tracer.uninstall()
        assert_runs_bitwise_equal(baseline, traced)
        assert tracer.records_emitted > 0


class TestBackendsBitwiseUnderInstrumentation:
    """PR 5/6 acceptance gate: the seeded smoke run is bitwise-identical
    across the serial / thread / process / socket employee backends,
    both plain and under the full instrumentation stack (sanitizer +
    tracer + profiler)."""

    def test_backends_identical_plain(self, tmp_path):
        runs = {
            backend: seeded_cews_run(tmp_path / f"{backend}.npz", backend=backend)
            for backend in ("serial", "thread", "process", "socket")
        }
        assert_runs_bitwise_equal(runs["serial"], runs["thread"])
        assert_runs_bitwise_equal(runs["serial"], runs["process"])
        assert_runs_bitwise_equal(runs["serial"], runs["socket"])

    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "socket"])
    def test_backends_identical_fully_instrumented(self, tmp_path, backend):
        from repro.analysis import Sanitizer
        from repro.obs import OpProfiler

        baseline = seeded_cews_run(tmp_path / "plain.npz")
        tracer = Tracer(trace_path_for(str(tmp_path / backend))).install()
        profiler = OpProfiler().enable()
        try:
            with Sanitizer():
                run = seeded_cews_run(
                    tmp_path / f"{backend}.npz", backend=backend
                )
        finally:
            profiler.disable()
            tracer.uninstall()
        assert_runs_bitwise_equal(baseline, run)
        assert tracer.records_emitted > 0

    def test_process_backend_ipc_observability(self, tmp_path, registry):
        """Worker explore/minibatch spans land in the chief trace and the
        slab transport publishes byte/wait metrics."""
        path = trace_path_for(str(tmp_path))
        with Tracer(path):
            seeded_cews_run(tmp_path / "run.npz", backend="process")
        from repro.obs import read_trace

        summary = summarize_trace(read_trace(path))
        names = set(summary["by_name"])
        assert {"employee.explore", "employee.gradients"} <= names

        snapshot = registry.snapshot()
        ipc_bytes = snapshot["repro_ipc_bytes_total"]["series"]
        assert any("broadcast" in key for key in ipc_bytes)
        assert any("gather" in key for key in ipc_bytes)
        assert all(value > 0 for value in ipc_bytes.values())
        assert "repro_ipc_wait_seconds" in snapshot


class TestTraceCoversTheTrainingStack:
    def test_span_names_span_all_layers(self, tmp_path, registry):
        path = trace_path_for(str(tmp_path))
        with Tracer(path) as tracer:
            trainer = make_faulty_trainer(None)
            trainer.train()
            trainer.close()
        from repro.obs import read_trace

        summary = summarize_trace(read_trace(path))
        names = set(summary["by_name"])
        # Chief, phases, employees, autograd, curiosity, env.
        assert {
            "episode",
            "phase.sync",
            "phase.explore",
            "phase.gradients",
            "employee.explore",
            "employee.gradients",
            "chief.apply_gradients",
            "ppo.update",
            "ppo.forward",
            "curiosity.update",
            "curiosity.forward_model",
            "curiosity.intrinsic",
            "env.reset",
            "env.step",
            "policy.act",
        } <= names
        # Per-employee aggregation covers every employee.
        for employee in range(3):
            assert f"employee.explore[{employee}]" in summary["by_employee"]
        assert summary["by_name"]["episode"]["count"] == 2


class TestFaultsAreObservable:
    def test_crash_restart_and_quarantine_in_trace_and_metrics(
        self, tmp_path, registry
    ):
        injector = FaultInjector(
            FaultPlan(
                events=(
                    CrashFault(employee=1, episode=0, times=100),
                    CorruptionFault(employee=0, episode=1, round=0, mode="nan"),
                )
            )
        )
        path = trace_path_for(str(tmp_path))
        with Tracer(path) as tracer:
            trainer = make_faulty_trainer(injector)
            history = trainer.train()
            trainer.close()
        assert len(history.logs) == 2

        # --- in the trace ------------------------------------------------
        from repro.obs import read_trace

        summary = summarize_trace(read_trace(path))
        events = summary["event_counts"]
        assert events.get("fault.crash", 0) >= 1
        assert events.get("fault.restart", 0) >= 1
        assert events.get("fault.quarantine", 0) >= 1
        assert events.get("barrier.degraded", 0) >= 1

        # --- in the metrics snapshot -------------------------------------
        snapshot = registry.snapshot()
        crashes = snapshot["repro_employee_crashes_total"]["series"]
        assert crashes['repro_employee_crashes_total{employee="1"}'] >= 1
        restarts = snapshot["repro_employee_restarts_total"]["series"]
        assert restarts['repro_employee_restarts_total{employee="1"}'] == 1
        rejected = snapshot["repro_gradients_rejected_total"]["series"]
        assert (
            rejected['repro_gradients_rejected_total{kind="policy",employee="0"}']
            == 1
        )
        assert snapshot["repro_episodes_total"]["series"]["repro_episodes_total"] == 2

        # --- and in the Prometheus exposition ----------------------------
        text = registry.render_prometheus()
        assert "repro_employee_crashes_total" in text
        assert "repro_gradients_rejected_total" in text
        assert "repro_phase_seconds_bucket" in text

    def test_history_and_health_published_as_gauges(self, registry):
        trainer = make_faulty_trainer(None)
        trainer.train()
        trainer.close()
        snapshot = registry.snapshot()
        assert snapshot["repro_history_episodes"]["series"]["repro_history_episodes"] == 2
        assert "repro_episode_reward" in snapshot
        assert "repro_health_crashes" in snapshot
        assert "repro_health_restarts" in snapshot

    def test_fault_recovery_logs_warnings_with_employee_index(self, caplog):
        injector = FaultInjector(
            FaultPlan(events=(CrashFault(employee=1, episode=0, times=100),))
        )
        with caplog.at_level(logging.WARNING, logger="repro"):
            trainer = make_faulty_trainer(injector)
            trainer.train()
            trainer.close()
        warnings = [
            record for record in caplog.records if record.levelno == logging.WARNING
        ]
        assert warnings, "expected WARNING fault logs"
        messages = " | ".join(record.getMessage() for record in warnings)
        assert "employee 1" in messages
        assert "restarted" in messages
        assert "episode" in messages
