"""The HTTP exposition endpoint: routes, formats, fleet health."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, ObsServer
from repro.obs.trace import Tracer

pytestmark = pytest.mark.obs


def _get(server, path):
    url = f"{server.address}{path}"
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


@pytest.fixture
def fresh():
    registry = MetricsRegistry()
    with ObsServer(port=0, registry=registry) as server:
        yield server, registry


class TestRoutes:
    def test_metrics_prometheus_format_and_content_type(self, fresh):
        server, registry = fresh
        registry.counter("repro_test_total", "help text").inc(3)
        status, ctype, body = _get(server, "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE repro_test_total counter" in text
        assert "repro_test_total 3" in text

    def test_metrics_json_round_trips(self, fresh):
        server, registry = fresh
        registry.gauge("repro_test_gauge", "").set(1.5)
        status, ctype, body = _get(server, "/metrics.json")
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["repro_test_gauge"]["series"]["repro_test_gauge"] == 1.5

    def test_trace_summary_reads_active_tracer_ring(self, fresh):
        server, _ = fresh
        tracer = Tracer(path=None).install()
        try:
            with tracer.span("phase.explore", episode=0):
                pass
            status, __, body = _get(server, "/trace/summary")
        finally:
            tracer.uninstall()
        assert status == 200
        summary = json.loads(body)
        assert summary["by_name"]["phase.explore"]["count"] == 1

    def test_trace_summary_without_tracer_is_empty(self, fresh):
        server, _ = fresh
        status, __, body = _get(server, "/trace/summary")
        assert status == 200
        assert json.loads(body)["spans"] == 0

    def test_unknown_path_is_404(self, fresh):
        server, _ = fresh
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404


class TestHealthz:
    def test_ok_with_no_fleet(self, fresh):
        server, _ = fresh
        status, __, body = _get(server, "/healthz")
        assert status == 200
        report = json.loads(body)
        assert report == {"status": "ok", "fleet": 0, "down": []}

    def test_ok_with_all_employees_connected(self, fresh):
        server, registry = fresh
        gauge = registry.gauge(
            "repro_fleet_connected", "", labelnames=("employee",)
        )
        gauge.labels(employee=0).set(1)
        gauge.labels(employee=1).set(1)
        status, __, body = _get(server, "/healthz")
        assert status == 200
        assert json.loads(body)["fleet"] == 2

    def test_degraded_when_an_employee_is_down(self, fresh):
        server, registry = fresh
        gauge = registry.gauge(
            "repro_fleet_connected", "", labelnames=("employee",)
        )
        gauge.labels(employee=0).set(1)
        gauge.labels(employee=1).set(0)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/healthz")
        assert excinfo.value.code == 503
        report = json.loads(excinfo.value.read())
        assert report["status"] == "degraded"
        assert report["down"] == ["1"]


class TestLifecycle:
    def test_port_zero_resolves_to_bound_port(self):
        server = ObsServer(port=0, registry=MetricsRegistry()).start()
        try:
            assert server.running
            assert server.port > 0
            assert str(server.port) in server.address
        finally:
            server.stop()
        assert not server.running

    def test_stop_is_idempotent_and_start_restarts(self):
        server = ObsServer(port=0, registry=MetricsRegistry())
        server.start()
        server.stop()
        server.stop()
        server.start()
        try:
            status, __, ___ = _get(server, "/healthz")
            assert status == 200
        finally:
            server.stop()

    def test_scrape_during_writes_never_errors(self, fresh):
        server, registry = fresh
        counter = registry.counter("repro_busy_total", "")
        for _ in range(20):
            counter.inc()
            status, __, ___ = _get(server, "/metrics")
            assert status == 200
