"""Stdlib logging integration: hierarchy, configuration, JSON lines."""

import io
import json
import logging

import pytest

from repro.obs import JsonFormatter, ROOT_LOGGER_NAME, configure_logging, get_logger

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def restore_repro_logger():
    """Reset the repro root logger after each test."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    handlers, level, propagate = list(root.handlers), root.level, root.propagate
    yield
    for handler in list(root.handlers):
        root.removeHandler(handler)
    for handler in handlers:
        root.addHandler(handler)
    root.setLevel(level)
    root.propagate = propagate


class TestGetLogger:
    def test_names_are_prefixed_into_the_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("repro").name == "repro"
        assert get_logger("repro.distributed.trainer").name == "repro.distributed.trainer"
        assert get_logger("mymodule").name == "repro.mymodule"

    def test_silent_by_default(self):
        root = logging.getLogger(ROOT_LOGGER_NAME)
        get_logger("anything")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestConfigureLogging:
    def test_plain_output(self):
        stream = io.StringIO()
        configure_logging(level="INFO", stream=stream)
        get_logger("unit").info("hello %d", 7)
        line = stream.getvalue()
        assert "hello 7" in line
        assert "repro.unit" in line
        assert "INFO" in line

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(level="WARNING", stream=stream)
        get_logger("unit").info("quiet")
        get_logger("unit").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_reconfigure_does_not_stack_handlers(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        configure_logging(stream=stream)
        get_logger("unit").warning("once")
        assert stream.getvalue().count("once") == 1

    def test_json_lines(self):
        stream = io.StringIO()
        configure_logging(level="DEBUG", json=True, stream=stream)
        get_logger("unit").debug("payload %s", "x")
        record = json.loads(stream.getvalue().strip())
        assert record["msg"] == "payload x"
        assert record["level"] == "DEBUG"
        assert record["logger"] == "repro.unit"
        assert record["ts"] > 0

    def test_json_formatter_exception(self):
        formatter = JsonFormatter()
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            record = logging.LogRecord(
                "repro.unit", logging.ERROR, __file__, 1, "failed", (), True
            )
            import sys

            record.exc_info = sys.exc_info()
        payload = json.loads(formatter.format(record))
        assert "RuntimeError: boom" in payload["exc"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="SHOUTY")

    def test_numeric_level_accepted(self):
        stream = io.StringIO()
        logger = configure_logging(level=logging.ERROR, stream=stream)
        assert logger.level == logging.ERROR
