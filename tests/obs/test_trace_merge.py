"""Cross-process trace merging: folding, dedupe, skew-corrected merge.

The Hypothesis property at the bottom is the satellite's contract: for
arbitrary per-worker span forests, arbitrary per-worker clock skew, a
torn trailing line in any worker file, and an arbitrary stream
interleaving, ``merge_traces`` with per-stream skew offsets yields a
valid span tree — unique ids, resolvable parents, and every child span
nested inside its parent's corrected time interval.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    dedupe_synthetic,
    fold_worker_records,
    merge_traces,
    read_trace,
)

pytestmark = pytest.mark.obs


def _span(id, name="s", ts=0.0, dur=1.0, parent=None, **attrs):
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "type": "span",
        "name": name,
        "ts": float(ts),
        "dur": float(dur),
        "id": int(id),
        "parent": parent,
        "attrs": attrs,
    }


class TestFoldWorkerRecords:
    def test_noop_without_tracer(self):
        assert fold_worker_records([_span(1)], worker=0) == 0

    def test_ids_remapped_and_roots_reparented(self):
        tracer = Tracer(path=None).install()
        try:
            with tracer.span("phase.explore") as outer:
                count = fold_worker_records(
                    [_span(1, name="root"), _span(2, name="child", parent=1)],
                    parent=outer.span_id,
                    worker=0,
                )
            assert count == 2
            by_name = {r["name"]: r for r in tracer.ring if r["type"] == "span"}
            root, child = by_name["root"], by_name["child"]
            assert root["parent"] == outer.span_id
            assert child["parent"] == root["id"]
            assert root["id"] != 1  # re-issued in the chief's id space
        finally:
            tracer.uninstall()

    def test_offset_applied_and_raw_records_untouched(self):
        tracer = Tracer(path=None).install()
        raw = [_span(1, ts=100.0)]
        try:
            fold_worker_records(raw, offset=2.5, worker=0)
            (folded,) = [r for r in tracer.ring if r["type"] == "span"]
            assert folded["ts"] == 102.5
            assert raw[0]["ts"] == 100.0  # merge-time correction only
        finally:
            tracer.uninstall()

    def test_labels_folded_into_attrs_none_skipped(self):
        tracer = Tracer(path=None).install()
        try:
            fold_worker_records(
                [_span(1, employee=3)], worker=1, host="vm", pid=None
            )
            (folded,) = [r for r in tracer.ring if r["type"] == "span"]
            assert folded["attrs"]["worker"] == 1
            assert folded["attrs"]["host"] == "vm"
            assert folded["attrs"]["employee"] == 3
            assert "pid" not in folded["attrs"]
        finally:
            tracer.uninstall()

    def test_headers_filtered_out(self):
        tracer = Tracer(path=None).install()
        try:
            header = dict(_span(1), type="header", name="trace")
            assert fold_worker_records([header], worker=0) == 0
        finally:
            tracer.uninstall()


class TestDedupeSynthetic:
    def test_shadowed_synthetic_dropped(self):
        synthetic = _span(
            1, name="employee.explore", employee=0, episode=0, round=-1, synthetic=True
        )
        real = _span(
            2, name="employee.explore", employee=0, episode=0, round=-1, worker=0
        )
        kept = dedupe_synthetic([synthetic, real])
        assert kept == [real]

    def test_unshadowed_synthetic_kept(self):
        synthetic = _span(
            1, name="employee.explore", employee=0, episode=0, round=-1, synthetic=True
        )
        other = _span(
            2, name="employee.explore", employee=1, episode=0, round=-1, worker=1
        )
        kept = dedupe_synthetic([synthetic, other])
        assert synthetic in kept and other in kept

    def test_events_pass_through(self):
        event = dict(_span(1, name="fault.crash"), type="event")
        assert dedupe_synthetic([event]) == [event]


class TestMergeTraces:
    def test_offsets_and_labels_applied_sorted_by_time(self):
        merged = merge_traces(
            [
                {
                    "records": [_span(1, name="b", ts=10.0)],
                    "offset": 5.0,
                    "labels": {"worker": 1},
                },
                {
                    "records": [_span(1, name="a", ts=2.0)],
                    "offset": 0.0,
                    "labels": {"worker": 0},
                },
            ]
        )
        assert [r["name"] for r in merged] == ["a", "b"]
        assert merged[1]["ts"] == 15.0
        assert merged[0]["attrs"]["worker"] == 0
        ids = [r["id"] for r in merged]
        assert len(set(ids)) == len(ids)

    def test_torn_parent_degrades_to_root(self):
        merged = merge_traces(
            [{"records": [_span(2, parent=99)], "offset": 0.0, "labels": {}}]
        )
        assert merged[0]["parent"] is None


# ----------------------------------------------------------------------
# The property: arbitrary forests + skew + torn tails merge to a valid tree
# ----------------------------------------------------------------------
_FOREST = st.recursive(
    st.just(()), lambda children: st.tuples(children, children), max_leaves=8
)


def _linearize(forest, clock, ids, skew, records):
    """Pre-order ids / post-order emission, like the real tracer."""

    def walk(node, parent):
        span_id = next(ids)
        start = next(clock)
        for child in node:
            walk(child, span_id)
        end = next(clock)
        records.append(
            _span(
                span_id,
                name=f"n{span_id}",
                ts=start - skew,  # the worker's skewed wall clock
                dur=end - start,
                parent=parent,
            )
        )

    for tree in forest:
        walk(tree, None)


@given(
    forests=st.lists(
        st.lists(_FOREST, min_size=1, max_size=4), min_size=1, max_size=3
    ),
    skews=st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=3, max_size=3
    ),
    torn_worker=st.integers(min_value=0, max_value=2),
    order_seed=st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_merge_property_valid_tree_after_skew_and_torn_tail(
    tmp_path_factory, forests, skews, torn_worker, order_seed
):
    import itertools

    tmp_path = tmp_path_factory.mktemp("traces")
    clock = itertools.count(1)
    streams = []
    for worker, forest in enumerate(forests):
        skew = skews[worker % len(skews)]
        ids = itertools.count(1)
        records = []
        _linearize(forest, clock, ids, skew, records)
        path = tmp_path / f"worker-{worker}.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        if worker == torn_worker % len(forests) and records:
            # Tear the trailing line mid-record, as a crash would.
            raw = path.read_bytes()
            path.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])
        loaded = read_trace(str(path))
        streams.append(
            {
                "records": loaded,
                "offset": float(skew),
                "labels": {"worker": worker},
            }
        )
    order_seed.shuffle(streams)
    merged = merge_traces(streams)

    ids = [record["id"] for record in merged]
    assert len(set(ids)) == len(ids), "merged ids must be unique"
    by_id = {record["id"]: record for record in merged}
    for record in merged:
        parent_id = record["parent"]
        if parent_id is None:
            continue
        assert parent_id in by_id, "parents resolve or degrade to roots"
        parent = by_id[parent_id]
        assert parent["attrs"]["worker"] == record["attrs"]["worker"]
        # Skew-corrected nesting: the child's interval sits inside its
        # parent's (timestamps are integers off one global clock, so the
        # containment is exact once each stream's offset is applied).
        assert parent["ts"] <= record["ts"]
        assert record["ts"] + record["dur"] <= parent["ts"] + parent["dur"]
    # Corrected timestamps are back on the single true clock: the merge
    # is globally sorted regardless of per-worker skew or interleaving.
    times = [record["ts"] for record in merged]
    assert times == sorted(times)
