"""Tracing: JSONL schema round-trips, span nesting, summaries."""

import json

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    TraceError,
    Tracer,
    build_span_tree,
    event,
    get_tracer,
    read_trace,
    render_trace_summary,
    span,
    summarize_trace,
    trace_env_enabled,
    trace_path_for,
)

pytestmark = pytest.mark.obs


def record_sample(tracer):
    """Emit a small, structured trace: two nested spans + one event."""
    with tracer.span("episode", episode=0):
        with tracer.span("phase.explore", episode=0):
            with tracer.span("employee.explore", employee=1, episode=0):
                pass
            tracer.event("fault.crash", employee=2, episode=0)
    with tracer.span("episode", episode=1):
        pass


class TestTracerCore:
    def test_round_trip_and_schema(self, tmp_path):
        path = trace_path_for(str(tmp_path / "trace"))
        tracer = Tracer(path).install()
        record_sample(tracer)
        tracer.uninstall()

        records = read_trace(path)
        assert records[0]["type"] == "header"
        assert records[0]["attrs"]["pid"] > 0
        for record in records:
            assert record["schema"] == TRACE_SCHEMA_VERSION
            assert set(record) >= {"schema", "type", "name", "ts", "dur", "id", "attrs"}
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names.count("episode") == 2
        assert "employee.explore" in names

    def test_read_trace_accepts_directory(self, tmp_path):
        directory = str(tmp_path / "trace")
        with Tracer(trace_path_for(directory)) as tracer:
            record_sample(tracer)
        assert read_trace(directory)  # resolves dir -> trace.jsonl

    def test_children_written_before_parents(self, tmp_path):
        path = trace_path_for(str(tmp_path))
        with Tracer(path) as tracer:
            record_sample(tracer)
        spans = [r for r in read_trace(path) if r["type"] == "span"]
        position = {r["id"]: i for i, r in enumerate(spans)}
        for record in spans:
            if record["parent"] is not None and record["parent"] in position:
                assert position[record["id"]] < position[record["parent"]]

    def test_span_tree_nesting(self, tmp_path):
        path = trace_path_for(str(tmp_path))
        with Tracer(path) as tracer:
            record_sample(tracer)
        roots = build_span_tree(read_trace(path))
        assert [r.name for r in roots] == ["episode", "episode"]
        first = roots[0]
        assert [c.name for c in first.children] == ["phase.explore"]
        explore = first.children[0]
        assert sorted(c.name for c in explore.children) == [
            "employee.explore",
            "fault.crash",
        ]
        kinds = {c.name: c.kind for c in explore.children}
        assert kinds["fault.crash"] == "event"
        assert {n.name for n in first.walk()} >= {"episode", "phase.explore"}

    def test_orphan_spans_become_roots(self):
        records = [
            {
                "schema": 1, "type": "span", "name": "child", "ts": 1.0,
                "dur": 0.1, "id": 7, "parent": 99, "attrs": {},
            }
        ]
        roots = build_span_tree(records)
        assert [r.name for r in roots] == ["child"]

    def test_ring_buffer_bounded(self):
        tracer = Tracer(ring_size=3).install()
        for index in range(10):
            tracer.event("tick", index=index)
        tracer.uninstall()
        assert len(tracer.ring) == 3
        assert [r["attrs"]["index"] for r in tracer.ring] == [7, 8, 9]

    def test_double_install_rejected(self, tmp_path):
        first = Tracer().install()
        with pytest.raises(RuntimeError, match="already installed"):
            Tracer().install()
        first.uninstall()
        assert get_tracer() is None

    def test_invalid_ring_size(self):
        with pytest.raises(ValueError):
            Tracer(ring_size=0)

    def test_summary_line(self, tmp_path):
        path = trace_path_for(str(tmp_path))
        with Tracer(path) as tracer:
            tracer.event("tick")
        assert "record(s)" in tracer.summary()


class TestModuleHelpers:
    def test_noop_when_uninstalled(self):
        assert get_tracer() is None
        with span("anything", employee=1) as opened:
            assert opened is None  # the shared null span
        event("anything")  # must not raise

    def test_helpers_route_to_active_tracer(self):
        tracer = Tracer().install()
        with span("outer"):
            event("inner")
        tracer.uninstall()
        names = [r["name"] for r in tracer.ring]
        assert names.count("outer") == 1
        assert names.count("inner") == 1
        inner = next(r for r in tracer.ring if r["name"] == "inner")
        outer = next(r for r in tracer.ring if r["name"] == "outer")
        assert inner["parent"] == outer["id"]

    def test_env_toggle(self):
        assert trace_env_enabled({"REPRO_TRACE": "1"})
        assert trace_env_enabled({"REPRO_TRACE": "true"})
        assert not trace_env_enabled({"REPRO_TRACE": "0"})
        assert not trace_env_enabled({})


class TestValidation:
    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def _record(self, **overrides):
        record = {
            "schema": TRACE_SCHEMA_VERSION, "type": "span", "name": "x",
            "ts": 0.0, "dur": 0.0, "id": 1, "parent": None, "attrs": {},
        }
        record.update(overrides)
        return json.dumps(record)

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(self._record() + "\n" + '{"schema": 1, "type": "sp')
        records = read_trace(str(path))
        assert len(records) == 1

    def test_malformed_middle_line_raises(self, tmp_path):
        path = self._write(tmp_path, ["not json", self._record()])
        with pytest.raises(TraceError, match="invalid JSON"):
            read_trace(path)

    def test_missing_field_raises(self, tmp_path):
        broken = json.loads(self._record())
        del broken["name"]
        path = self._write(tmp_path, [json.dumps(broken)])
        with pytest.raises(TraceError, match="missing field"):
            read_trace(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = self._write(tmp_path, [self._record(schema=999)])
        with pytest.raises(TraceError, match="schema"):
            read_trace(path)

    def test_unknown_type_raises(self, tmp_path):
        path = self._write(tmp_path, [self._record(type="mystery")])
        with pytest.raises(TraceError, match="unknown record type"):
            read_trace(path)

    def test_non_object_record_raises(self, tmp_path):
        path = self._write(tmp_path, ["[1, 2]", self._record()])
        with pytest.raises(TraceError, match="not a JSON object"):
            read_trace(path)


class TestSummaries:
    def trace_records(self, tmp_path):
        path = trace_path_for(str(tmp_path))
        with Tracer(path) as tracer:
            record_sample(tracer)
        return read_trace(path)

    def test_summarize_counts(self, tmp_path):
        summary = summarize_trace(self.trace_records(tmp_path))
        assert summary["spans"] == 4
        assert summary["events"] == 1
        assert summary["by_name"]["episode"]["count"] == 2
        assert summary["by_employee"]["employee.explore[1]"]["count"] == 1
        assert summary["event_counts"] == {"fault.crash": 1}
        for agg in summary["by_name"].values():
            assert agg["total"] >= agg["max"] >= 0.0

    def test_render_contains_tables(self, tmp_path):
        text = render_trace_summary(summarize_trace(self.trace_records(tmp_path)))
        assert "per-span timings" in text
        assert "per-employee timings" in text
        assert "employee.explore[1]" in text
        assert "fault.crash" in text
