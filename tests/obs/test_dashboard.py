"""ASCII dashboard: rendering cadence, curves, phase timings."""

import io
from types import SimpleNamespace

import pytest

from repro.obs import Dashboard, MetricsRegistry

pytestmark = pytest.mark.obs


def fake_log(episode, reward=1.0, kappa=0.5, rho=0.1):
    return SimpleNamespace(
        episode=episode,
        extrinsic_reward=reward,
        intrinsic_reward=0.02,
        kappa=kappa,
        xi=0.4,
        rho=rho,
        policy_loss=-0.1,
        value_loss=0.3,
        entropy=1.2,
    )


class TestDashboard:
    def test_render_empty(self):
        assert "no episodes" in Dashboard(registry=MetricsRegistry()).render()

    def test_single_episode_snapshot(self):
        dash = Dashboard(registry=MetricsRegistry())
        dash._logs.append(fake_log(0))
        out = dash.render()
        assert "episode 0" in out
        assert "kappa 0.500" in out
        assert "reward" in out

    def test_curves_appear_after_two_episodes(self):
        dash = Dashboard(registry=MetricsRegistry())
        dash._logs.extend([fake_log(0, kappa=0.2), fake_log(1, kappa=0.8)])
        out = dash.render()
        assert "collection ratio / energy efficiency" in out

    def test_every_controls_cadence(self):
        stream = io.StringIO()
        dash = Dashboard(every=2, stream=stream, registry=MetricsRegistry())
        dash.on_episode_end(fake_log(0))
        assert stream.getvalue() == ""
        dash.on_episode_end(fake_log(1))
        assert "episode 1" in stream.getvalue()

    def test_every_validation(self):
        with pytest.raises(ValueError, match="every"):
            Dashboard(every=0)

    def test_phase_lines_from_registry(self):
        registry = MetricsRegistry()
        phases = registry.histogram(
            "repro_phase_seconds", "phase wall time", labelnames=("phase",)
        )
        phases.labels(phase="explore").observe(0.25)
        phases.labels(phase="gradients").observe(0.05)
        dash = Dashboard(registry=registry)
        dash._logs.append(fake_log(0))
        out = dash.render()
        assert "phase wall time:" in out
        assert "explore" in out
        assert "gradients" in out

    def test_fleet_table_from_transport_gauges(self):
        registry = MetricsRegistry()
        connected = registry.gauge(
            "repro_fleet_connected", "connection state", labelnames=("employee",)
        )
        generation = registry.gauge(
            "repro_fleet_generation", "generation", labelnames=("employee",)
        )
        heartbeat = registry.gauge(
            "repro_transport_heartbeat_age_seconds",
            "heartbeat age",
            labelnames=("employee",),
        )
        connected.labels(employee=0).set(1)
        connected.labels(employee=1).set(0)
        generation.labels(employee=0).set(0)
        generation.labels(employee=1).set(2)
        heartbeat.labels(employee=0).set(0.12)
        dash = Dashboard(registry=registry)
        dash._logs.append(fake_log(0))
        out = dash.render()
        assert "fleet:" in out
        assert "employee 0" in out and "up" in out
        assert "employee 1" in out and "DOWN" in out
        assert "gen   2" in out
        assert "hb   0.12s ago" in out

    def test_no_fleet_table_without_socket_transport(self):
        dash = Dashboard(registry=MetricsRegistry())
        dash._logs.append(fake_log(0))
        assert "fleet:" not in dash.render()

    def test_writes_go_to_stream_not_stdout(self, capsys):
        stream = io.StringIO()
        dash = Dashboard(stream=stream, registry=MetricsRegistry())
        dash.on_episode_end(fake_log(0))
        assert capsys.readouterr().out == ""
        assert stream.getvalue()
