"""The crash flight recorder: ring bounds, bundles, validation."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    auto_dump,
    get_flight_recorder,
    validate_bundle,
)
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Tracer

pytestmark = pytest.mark.obs


@pytest.fixture
def recorder(tmp_path):
    rec = FlightRecorder(directory=str(tmp_path / "flight")).install()
    yield rec
    rec.uninstall()


class TestRecording:
    def test_sink_captures_spans_from_the_tracer(self, recorder):
        tracer = Tracer(path=None).install()
        try:
            with tracer.span("employee.explore", employee=0):
                pass
            tracer.event("fault.crash", employee=0)
        finally:
            tracer.uninstall()
        path = recorder.dump("test")
        bundle = validate_bundle(path)
        names = [record["name"] for record in bundle["spans"]]
        assert "employee.explore" in names
        assert "fault.crash" in names

    def test_header_records_not_buffered(self, recorder):
        tracer = Tracer(path=None).install()
        tracer.uninstall()
        bundle = validate_bundle(recorder.dump("test"))
        assert all(r["name"] != "trace" for r in bundle["spans"])

    def test_span_ring_is_bounded(self, tmp_path):
        rec = FlightRecorder(directory=str(tmp_path), max_spans=4).install()
        try:
            tracer = Tracer(path=None).install()
            try:
                for index in range(10):
                    with tracer.span("s", i=index):
                        pass
            finally:
                tracer.uninstall()
            bundle = validate_bundle(rec.dump("test"))
        finally:
            rec.uninstall()
        assert len(bundle["spans"]) == 4
        assert [r["attrs"]["i"] for r in bundle["spans"]] == [6, 7, 8, 9]

    def test_bad_bounds_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(directory=str(tmp_path), max_spans=0)
        with pytest.raises(ValueError):
            FlightRecorder(directory=str(tmp_path), max_snapshots=0)

    def test_second_install_rejected(self, recorder, tmp_path):
        other = FlightRecorder(directory=str(tmp_path / "other"))
        with pytest.raises(RuntimeError, match="already installed"):
            other.install()


class TestBundles:
    def test_dump_includes_metrics_snapshot(self, recorder):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            registry.counter("repro_crashes_seen_total", "").inc(2)
            bundle = validate_bundle(recorder.dump("crash", employee=1, episode=3))
        finally:
            set_registry(previous)
        assert bundle["reason"] == "crash"
        assert bundle["extra"] == {"employee": 1, "episode": 3}
        assert bundle["schema"] == FLIGHT_SCHEMA_VERSION
        newest = bundle["metrics"][-1]["metrics"]
        assert newest["repro_crashes_seen_total"]["series"][
            "repro_crashes_seen_total"
        ] == 2.0

    def test_dumps_get_distinct_paths(self, recorder):
        first = recorder.dump("a")
        second = recorder.dump("b")
        assert first != second
        assert os.path.exists(first) and os.path.exists(second)

    def test_auto_dump_uses_installed_recorder(self, recorder):
        path = auto_dump("quarantine", employee=2)
        assert path is not None
        assert validate_bundle(path)["extra"]["employee"] == 2

    def test_auto_dump_is_noop_without_recorder(self):
        assert get_flight_recorder() is None
        assert auto_dump("crash") is None


class TestValidation:
    def test_tampered_bundle_rejected(self, recorder):
        path = recorder.dump("test")
        with open(path, "r", encoding="utf-8") as handle:
            bundle = json.load(handle)
        del bundle["spans"]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle)
        with pytest.raises(ValueError, match="missing field"):
            validate_bundle(path)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            validate_bundle(
                {
                    "schema": 99,
                    "reason": "x",
                    "ts": 0,
                    "pid": 1,
                    "host": "h",
                    "spans": [],
                    "metrics": [],
                    "extra": {},
                }
            )

    def test_malformed_span_rejected(self):
        with pytest.raises(ValueError, match="span 0"):
            validate_bundle(
                {
                    "schema": FLIGHT_SCHEMA_VERSION,
                    "reason": "x",
                    "ts": 0,
                    "pid": 1,
                    "host": "h",
                    "spans": [{"nope": 1}],
                    "metrics": [],
                    "extra": {},
                }
            )

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_bundle([1, 2, 3])
