"""Metrics registry: counters/gauges/histograms, labels, exporters."""

import json
import os

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)

pytestmark = pytest.mark.obs

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "metrics.prom")


def build_reference_registry() -> MetricsRegistry:
    """The fixed registry the Prometheus golden file was rendered from."""
    registry = MetricsRegistry()
    rejected = registry.counter(
        "repro_gradients_rejected_total",
        "Gradient contributions quarantined by the chief",
        labelnames=("kind", "employee"),
    )
    rejected.labels(kind="policy", employee=0).inc()
    rejected.labels(kind="policy", employee=0).inc()
    rejected.labels(kind="curiosity", employee=2).inc(3)
    intrinsic = registry.gauge(
        "repro_intrinsic_reward", "Mean intrinsic reward of the last episode"
    )
    intrinsic.set(0.25)
    waits = registry.histogram(
        "repro_barrier_wait_seconds",
        "Chief time spent waiting on the employee barrier",
        labelnames=("phase",),
        buckets=(0.1, 1.0),
    )
    for value in (0.05, 0.5, 5.0):
        waits.labels(phase="explore").observe(value)
    return registry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("repro_things_total", "things")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self):
        counter = Counter("repro_things_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_labels_are_independent_series(self):
        counter = Counter("repro_things_total", labelnames=("kind",))
        counter.labels(kind="a").inc()
        counter.labels(kind="b").inc(2)
        snapshot = counter.snapshot()
        assert snapshot["series"] == {
            'repro_things_total{kind="a"}': 1.0,
            'repro_things_total{kind="b"}': 2.0,
        }

    def test_wrong_labels_rejected(self):
        counter = Counter("repro_things_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            counter.labels(flavour="a")
        with pytest.raises(ValueError, match="expected labels"):
            counter.labels()

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("0bad")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("repro_ok_total", labelnames=("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_level")
        gauge.set(10.0)
        gauge.dec(3.0)
        gauge.inc(0.5)
        assert gauge.value == 7.5

    def test_labelled_set(self):
        gauge = Gauge("repro_level", labelnames=("phase",))
        gauge.labels(phase="explore").set(-1.5)
        assert gauge.labels(phase="explore").value == -1.5


class TestHistogram:
    def test_bucketing_and_snapshot(self):
        histogram = Histogram("repro_wait_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()["series"]["repro_wait_seconds"]
        assert snapshot["count"] == 3
        assert snapshot["sum"] == pytest.approx(5.55)
        assert snapshot["buckets"] == {"0.1": 1, "1": 1}  # 5.0 only in +Inf

    def test_cumulative_prometheus_buckets(self):
        histogram = Histogram("repro_wait_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = "\n".join(histogram.render())
        assert 'repro_wait_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_wait_seconds_bucket{le="1"} 2' in text
        assert 'repro_wait_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_wait_seconds_count 3" in text

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("repro_x", buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="increasing"):
            Histogram("repro_x", buckets=())

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_a_total")
        assert registry.counter("repro_a_total") is first

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_a_total")
        # Gauge subclasses Counter: the exact-type check must still fire.
        registry.gauge("repro_b")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_b")

    def test_names_and_get(self):
        registry = build_reference_registry()
        assert registry.names() == [
            "repro_barrier_wait_seconds",
            "repro_gradients_rejected_total",
            "repro_intrinsic_reward",
        ]
        assert registry.get("repro_intrinsic_reward").value == 0.25
        assert registry.get("missing") is None

    def test_json_snapshot_round_trips(self):
        payload = json.loads(build_reference_registry().to_json())
        rejected = payload["repro_gradients_rejected_total"]
        assert rejected["kind"] == "counter"
        assert (
            rejected["series"]['repro_gradients_rejected_total{kind="policy",employee="0"}']
            == 2.0
        )

    def test_reset(self):
        registry = build_reference_registry()
        registry.reset()
        assert registry.names() == []

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestPrometheusGolden:
    def test_render_matches_golden_file(self):
        rendered = build_reference_registry().render_prometheus()
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert rendered == handle.read()

    def test_render_is_deterministic(self):
        assert (
            build_reference_registry().render_prometheus()
            == build_reference_registry().render_prometheus()
        )

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
