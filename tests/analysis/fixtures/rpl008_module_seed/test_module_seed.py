"""Known-bad fixture for RPL008: module-level seeding in a test file.

The ``test_*.py`` name makes the linter treat it as a test module; the
``collect_ignore`` in ``tests/analysis/conftest.py`` keeps pytest from
ever importing it — the linter reads it as text only.
"""

import numpy as np

np.random.seed(1234)  # RPL008: module-level global seed
RNG = np.random.default_rng(7)  # RPL008: module-level shared RNG


def test_uses_shared_rng():
    assert RNG.random() >= 0.0
