"""Known-bad fixture: fork-unsafe module state in a worker entrypoint.

Exactly three RPL011 findings: a ``global`` statement, an unseeded
``default_rng()``, and a read of mutable module-level state.
"""

import numpy as np

_episode_cache = {}  # mutable module state: a fork-time snapshot in children


def _bad_worker_main(conn):
    global _episode_cache  # finding 1: global statement post-fork
    rng = np.random.default_rng()  # finding 2: OS-entropy seed differs per fork
    _episode_cache["rng"] = rng  # finding 3: reads module-level mutable state
    conn.send(rng.random())
