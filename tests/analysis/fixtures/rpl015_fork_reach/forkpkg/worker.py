"""Known-bad fixture: fork-side invariants broken in the transitive
closure of a worker entrypoint (not just the entrypoint body itself).
"""

import threading

from . import shared

_mod_lock = threading.Lock()
_counter = 0


def _employee_worker_main(spec, conn):
    # 1: thread spawned before any fork-side re-init call.
    pump = threading.Thread(target=_guarded, args=(conn,))
    pump.start()
    _bump()
    _guarded(conn)


def _bump():
    # 2: `global` rebinding in fork-reachable code.
    global _counter
    _counter += 1
    # 3: write through an in-program module attribute.
    shared.last_seed = _counter


def _guarded(conn):
    # 4: module-level lock acquisition — inherited across fork.
    with _mod_lock:
        conn.send(1)
