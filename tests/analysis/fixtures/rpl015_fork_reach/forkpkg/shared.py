"""Sibling module whose attribute the bad worker scribbles on."""

last_seed = None
