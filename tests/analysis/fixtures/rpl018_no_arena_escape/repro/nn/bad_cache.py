"""Fixture: arena slab references escaping the replay (RPL018 x4)."""

import numpy as np


class SlabCache:
    def __init__(self, arena):
        self._arena = arena
        self._stash = None

    def grab(self, slot):
        # Escape 1: returning the slab hands out memory the next
        # Arena.begin() invalidates.
        return self._arena.buffer(slot)

    def stash(self, slot):
        # Escape 2: attribute storage outlives the replay.
        self._stash = self._arena.buffer(slot)

    def grab_aliased(self, slot):
        buf = self._arena.buffer(slot)
        # Escape 3: returning through a local alias is the same escape.
        return buf

    def stream(self, slots):
        for slot in slots:
            # Escape 4: yielded references cross replay boundaries.
            yield self._arena.buffer(slot)

    def safe_copy(self, slot):
        # Fine: a copy is a fresh allocation, not a slab alias.
        return self._arena.buffer(slot).copy()

    def safe_local_use(self, slot):
        buf = self._arena.buffer(slot)
        return float(np.sum(buf))
