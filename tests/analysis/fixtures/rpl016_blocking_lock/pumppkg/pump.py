"""Known-bad fixture: blocking primitives invoked while holding a lock,
both directly and through a callee (the interprocedural case).
"""

import threading
import time


class FramePump:
    def __init__(self, conn):
        self._lock = threading.Lock()
        self._conn = conn

    def read_frame(self):
        with self._lock:
            # 1: pipe/socket recv under the lock.
            header = self._conn.recv(4)
            # 2: sleep under the lock.
            time.sleep(0.01)
            return header

    def drain(self):
        with self._lock:
            # 3: the callee blocks in poll(timeout) — found through the
            # may_block closure, not a direct scan of this body.
            self._wait_for_data()

    def _wait_for_data(self):
        while not self._conn.poll(1.0):
            pass
