"""Known-bad fixture for RPL010: per-call index allocation in nn hot ops.

The directory layout puts this file under a ``repro/nn/`` subpath so the
path-scoped rule treats it as framework code.  It re-creates the exact
pre-PR-4 im2col/col2im shape: fancy-index gather arrays rebuilt on every
forward and an ``np.add.at`` scatter on every backward.
"""

import numpy as np


def im2col(x, kernel, out_h, out_w):
    rows = np.arange(kernel)  # RPL010: per-call index construction
    i = np.repeat(rows, kernel)  # RPL010: per-call index construction
    j = np.tile(rows, kernel)  # RPL010: per-call index construction
    return x[:, :, i[:, None] + out_h, j[:, None] + out_w]


def col2im_backward(grad_cols, indices, x_shape):
    grad_x = np.zeros(x_shape)
    np.add.at(grad_x, indices, grad_cols)  # RPL010: per-call scatter
    return grad_x


class _KernelPlan:
    def __init__(self, height, kernel):
        # Fine: plan construction runs once per shape and is cached.
        self.offsets = np.arange(height - kernel + 1)


def _plan_for(kernel):
    # Fine: plan builders are the designated home for index arrays.
    return np.tile(np.arange(kernel), kernel)


def suppressed_generic_scatter(full, index, grad):
    # Fine when justified: duplicate-index accumulation has no strided
    # equivalent, so the generic gather backward opts out explicitly.
    np.add.at(full, index, grad)  # reprolint: disable=RPL010
    return full
