"""Known-bad fixture for RPL004: mutable default arguments."""


def accumulate(value, bucket=[]):  # RPL004: list literal default
    bucket.append(value)
    return bucket


def tally(key, counts={}):  # RPL004: dict literal default
    counts[key] = counts.get(key, 0) + 1
    return counts


def collect(item, seen=set()):  # RPL004: set constructor default
    seen.add(item)
    return seen


def safe(value, bucket=None):  # fine: None sentinel
    bucket = [] if bucket is None else bucket
    bucket.append(value)
    return bucket
