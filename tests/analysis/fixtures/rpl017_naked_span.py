"""Known-bad fixture for RPL017: span context managers never entered."""

from repro.obs.trace import get_tracer, span


def dark_phase(tracer, episode):
    span("phase.explore", episode=episode)  # naked: nothing is recorded
    tracer.span("employee.explore", employee=0)  # naked: manager dropped
    get_tracer().span("phase.sync")  # naked: manager dropped
    with span("phase.gradients", episode=episode):  # fine: entered
        pass
    return tracer.span("deferred")  # fine: the caller enters it
