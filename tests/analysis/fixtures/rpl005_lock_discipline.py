"""Known-bad fixture for RPL005: lock-guarded attribute raced."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # fine: construction is single-threaded

    def increment(self):
        with self._lock:
            self._count += 1  # establishes: _count is lock-guarded

    def peek(self):
        return self._count  # RPL005: unguarded read of guarded state

    def _bump_locked(self):
        self._count += 1  # fine: only ever called under the lock

    def double_increment(self):
        with self._lock:
            self._bump_locked()
            self._bump_locked()
