"""Thread 2's path: takes lock_b first, then lock_a — the inversion."""

from .locks import lock_a, lock_b


def backward(payload):
    with lock_b:
        with lock_a:
            return payload
