"""Known-bad fixture: the two locks the sibling modules fight over."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()
