"""Thread 1's path: takes lock_a, then lock_b while still holding it."""

from .locks import lock_a, lock_b


def forward(payload):
    with lock_a:
        with lock_b:
            return payload
