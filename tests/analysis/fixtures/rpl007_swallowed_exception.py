"""Known-bad fixture for RPL007: swallowed exceptions."""


def forward(x):
    try:
        return x.log()
    except:  # RPL007: bare except
        return None


def backward(loss):
    try:
        loss.backward()
    except Exception:  # RPL007: broad and silent
        pass


def tolerable(x):
    try:
        return float(x)
    except ValueError:  # fine: typed and handled
        return 0.0
