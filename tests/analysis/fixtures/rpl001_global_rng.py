"""Known-bad fixture for RPL001: global RNG state."""

import random

import numpy as np


def roll_badly():
    np.random.seed(0)  # RPL001: global numpy seed
    noise = np.random.rand(4)  # RPL001: global numpy draw
    coin = random.random()  # RPL001: stdlib global state
    return noise, coin


def roll_well(rng: np.random.Generator):
    return rng.random(4)  # fine: seeded Generator object
