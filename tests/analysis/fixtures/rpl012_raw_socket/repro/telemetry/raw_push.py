"""Known-bad fixture: raw socket I/O outside the transport package.

Every connection the repo opens must go through
``repro.distributed.transport`` so framing, CRC verification, heartbeat
accounting and chaos injection apply; this module bypasses all of it.
"""

import socket


def push_metrics(host, port, blob):
    sock = socket.create_connection((host, port))  # RPL012: raw construction
    sock.sendall(blob)  # RPL012: unframed bytes
    return sock.recv(4096)  # RPL012: unchecked read
