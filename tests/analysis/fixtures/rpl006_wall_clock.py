"""Known-bad fixture for RPL006: wall-clock in a deterministic path."""

import time


def settle(state):
    time.sleep(0.5)  # RPL006: sleep in a deterministic path
    stamp = time.time()  # RPL006: wall-clock read
    return state, stamp


def measure(fn):
    start = time.perf_counter()  # fine: duration measurement only
    fn()
    return time.perf_counter() - start
