"""Known-bad serving handlers: blocking calls on the asyncio event loop.

Five distinct violations, one per line flagged below; the ``_clean``
handlers at the bottom show the sanctioned shapes (awaited coroutine
APIs, executor off-load) and must stay silent.
"""

import subprocess
import time


def read_exact(conn):
    # Sync helper: fine on a worker thread, poisonous inline on the loop.
    return conn.recv(4096)


async def handle_request(conn, jobs):
    payload = conn.recv(4096)  # RPL019: sync socket read on the loop
    time.sleep(0.005)  # RPL019: sleeps the whole server
    job = jobs.get()  # RPL019: blocking queue wait
    return payload, job


async def handle_shellout(request):
    return subprocess.run(["echo", request])  # RPL019: waits for the child


async def handle_transitive(conn):
    return read_exact(conn)  # RPL019: blocking recv via sync helper


async def handle_clean(reader, loop, pool):
    data = await reader.read(4096)  # awaited asyncio API: non-blocking
    return await loop.run_in_executor(pool, read_exact, data)  # off-loaded


async def handle_clean_lookup(cache, key):
    return cache.get(key, None)  # positional-arg .get is a dict lookup
