"""RPL019 fixture: async handlers that block the event loop."""
