"""Known-bad fixture: every unsanctioned RNG origin RPL014 patrols.

The package chain makes this module ``repro.distributed.bad_rng`` so it
falls inside the rule's distributed-code scope.
"""

import numpy as np

base_seed = 1234  # lowercase module global: not a sanctioned seed root


def make_global_rng():
    # 1: seeded from a module-level variable.
    return np.random.default_rng(base_seed)


def make_unseeded_rng():
    # 2: unseeded — draws OS entropy.
    return np.random.default_rng()


def make_fixed_rng():
    # 3: constant seed with no parameter-derived state restore.
    rng = np.random.default_rng(42)
    return rng


def adopt_baked_state(spec):
    # The construction itself is fine (parameter-derived seed) ...
    rng = np.random.default_rng(spec.seed)
    # 4: ... but restoring bit_generator.state from a constant is not.
    rng.bit_generator.state = {"state": 7}
    return rng
