"""Known-bad fixture for RPL003: in-place tensor state mutation."""


def poke(param, update):
    param.data -= 0.1 * update  # RPL003: optimizer-style write
    param.data[...] = 0.0  # RPL003: wholesale overwrite
    param.grad = update  # RPL003: grad installation


def read_only(param):
    return param.data.sum()  # fine: reads never invalidate the tape
