"""Known-bad fixture for RPL002: dtype narrowing below float64."""

import numpy as np


def narrow(x: np.ndarray) -> np.ndarray:
    halved = x.astype(np.float32)  # RPL002: astype narrowing
    scalar = np.float16(0.5)  # RPL002: narrowed constructor
    fresh = np.zeros(3, dtype="float32")  # RPL002: dtype= keyword
    return halved + scalar + fresh


def keep_double(x: np.ndarray) -> np.ndarray:
    return x.astype(np.float64)  # fine: the framework's dtype
