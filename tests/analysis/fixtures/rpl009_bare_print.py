"""Known-bad fixture for RPL009: bare print() in library code."""


def train_step(loss):
    print("loss:", loss)  # RPL009: stdout from library code
    return loss


def report_progress(episode, kappa):
    if episode % 10 == 0:
        print(f"episode {episode}: kappa={kappa:.3f}")  # RPL009


def tolerable(logger, episode):
    logger.info("episode %d done", episode)  # fine: structured logging
