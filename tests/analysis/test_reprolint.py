"""Tests of the reprolint engine, rule set, suppressions and reporters."""

import json
import os

import pytest

from repro.analysis import (
    RULES,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    parse_suppressions,
    program_rule_table,
    render_json,
    render_sarif,
    render_text,
    rule_table,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# fixture file -> (rule code, expected finding count)
FIXTURE_EXPECTATIONS = {
    "rpl001_global_rng.py": ("RPL001", 3),
    "rpl002_dtype_narrowing.py": ("RPL002", 3),
    "rpl003_tensor_mutation.py": ("RPL003", 3),
    "rpl004_mutable_default.py": ("RPL004", 3),
    "rpl005_lock_discipline.py": ("RPL005", 1),
    "rpl006_wall_clock.py": ("RPL006", 2),
    "rpl007_swallowed_exception.py": ("RPL007", 2),
    os.path.join("rpl008_module_seed", "test_module_seed.py"): ("RPL008", 2),
    "rpl009_bare_print.py": ("RPL009", 2),
    os.path.join("rpl010_index_alloc", "repro", "nn", "hot_ops.py"): ("RPL010", 4),
    os.path.join(
        "rpl011_fork_state", "repro", "distributed", "bad_worker.py"
    ): ("RPL011", 3),
    os.path.join(
        "rpl012_raw_socket", "repro", "telemetry", "raw_push.py"
    ): ("RPL012", 3),
    "rpl017_naked_span.py": ("RPL017", 3),
    os.path.join(
        "rpl018_no_arena_escape", "repro", "nn", "bad_cache.py"
    ): ("RPL018", 4),
}


class TestRegistry:
    def test_all_rules_registered(self):
        assert sorted(RULES) == [f"RPL00{i}" for i in range(1, 10)] + [
            "RPL010",
            "RPL011",
            "RPL012",
            "RPL017",
            "RPL018",
        ]

    def test_rule_table_rows(self):
        rows = rule_table()
        assert [code for code, __, __ in rows] == sorted(RULES)
        for __, name, description in rows:
            assert name and description


class TestFixtureCorpus:
    """Every known-bad fixture trips exactly its own rule."""

    @pytest.mark.parametrize("relpath,expected", sorted(FIXTURE_EXPECTATIONS.items()))
    def test_fixture_trips_its_rule(self, relpath, expected):
        code, count = expected
        findings = lint_file(os.path.join(FIXTURES, relpath))
        assert [f.code for f in findings] == [code] * count
        for finding in findings:
            assert finding.line > 0
            assert finding.rule == RULES[code].name

    def test_fixture_corpus_is_red_as_a_tree(self):
        findings = lint_paths([FIXTURES], excluded_dirs=("__pycache__",))
        codes = {f.code for f in findings}
        assert codes == set(RULES), f"missing rules in corpus: {set(RULES) - codes}"


class TestRepoIsClean:
    """The acceptance gate: the real tree has zero findings."""

    def test_src_is_clean(self):
        assert lint_paths([os.path.join(REPO_ROOT, "src")]) == []

    def test_tests_are_clean(self):
        assert lint_paths([os.path.join(REPO_ROOT, "tests")]) == []

    def test_benchmarks_and_examples_are_clean(self):
        """Satellite sweep: the curated subset (everything except RPL008,
        whose module-seed convention is for pytest files and conflicts
        with the benchmark drivers' explicit seeding style) is clean on
        the script trees."""
        findings = lint_paths(
            [
                os.path.join(REPO_ROOT, "benchmarks"),
                os.path.join(REPO_ROOT, "examples"),
            ],
            ignore=["RPL008"],
        )
        assert findings == []

    def test_rpl005_clean_on_fault_tolerance_modules(self):
        """Satellite sweep: PR 1's shared-state modules pass lock discipline."""
        for name in ("trainer.py", "gradient_buffer.py", "faults.py"):
            path = os.path.join(REPO_ROOT, "src", "repro", "distributed", name)
            assert lint_file(path, select=["RPL005"]) == [], name


class TestSuppressions:
    def test_same_line_suppression(self):
        source = "import numpy as np\nnp.random.seed(0)  # reprolint: disable=RPL001\n"
        assert lint_source(source, "src/repro/foo.py") == []

    def test_standalone_comment_covers_next_line(self):
        source = (
            "import numpy as np\n"
            "# reprolint: disable=RPL001\n"
            "np.random.seed(0)\n"
        )
        assert lint_source(source, "src/repro/foo.py") == []

    def test_wrong_code_does_not_suppress(self):
        source = "import numpy as np\nnp.random.seed(0)  # reprolint: disable=RPL004\n"
        findings = lint_source(source, "src/repro/foo.py")
        assert [f.code for f in findings] == ["RPL001"]

    def test_multiple_codes(self):
        source = (
            "import time\n"
            "def f(x=[]):  # reprolint: disable=RPL004,RPL006\n"
            "    time.sleep(1)  # reprolint: disable=RPL006\n"
        )
        assert lint_source(source, "src/repro/foo.py") == []

    def test_parse_suppressions_map(self):
        mapping = parse_suppressions("x = 1  # reprolint: disable=RPL001\n")
        assert mapping == {1: {"RPL001"}}


class TestPathScoping:
    """Rules honour whitelists keyed on the (pretend) file location."""

    def test_rpl002_exempt_inside_nn(self):
        source = "import numpy as np\ny = x.astype(np.float32)\n"
        assert lint_source(source, "src/repro/nn/tensor.py") == []
        assert [f.code for f in lint_source(source, "src/repro/env/env.py")] == ["RPL002"]

    def test_rpl003_whitelisted_in_optim(self):
        source = "param.data -= lr * update\n"
        assert lint_source(source, "src/repro/nn/optim.py") == []
        assert [f.code for f in lint_source(source, "src/repro/env/env.py")] == ["RPL003"]

    def test_rpl006_fault_injector_may_sleep(self):
        source = "import time\ntime.sleep(1)\n"
        assert lint_source(source, "src/repro/distributed/faults.py") == []
        assert [f.code for f in lint_source(source, "src/repro/env/env.py")] == ["RPL006"]

    def test_rpl006_trainer_backoff_sleeps_but_not_clock_reads(self):
        sleep = "import time\ntime.sleep(1)\n"
        clock = "import time\nt = time.time()\n"
        assert lint_source(sleep, "src/repro/distributed/trainer.py") == []
        assert [
            f.code for f in lint_source(clock, "src/repro/distributed/trainer.py")
        ] == ["RPL006"]

    def test_src_rules_skip_test_files(self):
        # Inside a function so RPL008 (module-level seed) does not apply.
        source = "import numpy as np\ndef seed():\n    np.random.seed(0)\n"
        assert lint_source(source, "tests/test_foo.py") == []
        assert [f.code for f in lint_source(source, "src/repro/foo.py")] == ["RPL001"]

    def test_rpl009_whitelists_cli_and_reporting_modules(self):
        source = "print('hello')\n"
        assert lint_source(source, "src/repro/__main__.py") == []
        assert lint_source(source, "src/repro/analysis/cli.py") == []
        assert lint_source(source, "src/repro/analysis/reporters.py") == []
        assert lint_source(source, "examples/quickstart.py") == []
        assert lint_source(source, "benchmarks/bench_scaling.py") == []
        assert lint_source(source, "tests/test_foo.py") == []
        assert [f.code for f in lint_source(source, "src/repro/env/env.py")] == [
            "RPL009"
        ]

    def test_rpl010_scoped_to_nn_modules(self):
        # np.add.at is legitimate outside the nn framework (the state
        # encoder's density channels genuinely need duplicate
        # accumulation), so the rule only patrols repro/nn/.
        source = "import numpy as np\nnp.add.at(grid, cells, 1.0)\n"
        assert lint_source(source, "src/repro/env/state.py") == []
        assert [f.code for f in lint_source(source, "src/repro/nn/functional.py")] == [
            "RPL010"
        ]

    def test_rpl010_builders_flagged_per_call_but_not_in_plans(self):
        hot = (
            "import numpy as np\n"
            "def conv2d(x, k):\n"
            "    i = np.arange(k)\n"
            "    return np.repeat(i, k)\n"
        )
        plan = (
            "import numpy as np\n"
            "def _plan_for(k):\n"
            "    return np.tile(np.arange(k), k)\n"
            "class _KernelPlan:\n"
            "    def __init__(self, k):\n"
            "        self.idx = np.arange(k)\n"
        )
        assert [f.code for f in lint_source(hot, "src/repro/nn/functional.py")] == [
            "RPL010",
            "RPL010",
        ]
        assert lint_source(plan, "src/repro/nn/functional.py") == []

    def test_rpl012_raw_io_allowed_only_in_transport(self):
        source = (
            "import socket\n"
            "sock = socket.create_connection(('h', 1))\n"
            "sock.sendall(b'x')\n"
        )
        assert (
            lint_source(
                source, "src/repro/distributed/transport/socket_transport.py"
            )
            == []
        )
        assert [
            f.code for f in lint_source(source, "src/repro/obs/push.py")
        ] == ["RPL012", "RPL012"]

    def test_rpl012_pipe_send_without_socket_import_is_fine(self):
        # procpool's multiprocessing pipes share the .send/.recv method
        # names; without a socket import the rule stays out of the way.
        source = "def f(conn):\n    conn.send((1, 2))\n    return conn.recv()\n"
        assert lint_source(source, "src/repro/distributed/procpool.py") == []

    def test_rpl010_suppressible_at_call_site(self):
        source = (
            "import numpy as np\n"
            "def backward(full, index, grad):\n"
            "    np.add.at(full, index, grad)  # reprolint: disable=RPL010\n"
        )
        assert lint_source(source, "src/repro/nn/tensor.py") == []

    def test_rpl011_only_patrols_distributed_worker_entrypoints(self):
        source = (
            "import numpy as np\n"
            "_state = {}\n"
            "def helper():\n"  # not an entrypoint: name + no target= ref
            "    return _state\n"
        )
        assert lint_source(source, "src/repro/distributed/util.py") == []
        worker = source.replace("def helper", "def helper_worker_main")
        assert [
            f.code for f in lint_source(worker, "src/repro/distributed/util.py")
        ] == ["RPL011"]
        # Outside repro/distributed/ the rule stays silent entirely.
        assert lint_source(worker, "src/repro/env/util.py") == []

    def test_rpl011_detects_process_target_entrypoints(self):
        source = (
            "import multiprocessing as mp\n"
            "_plan = []\n"
            "def run(conn):\n"
            "    conn.send(list(_plan))\n"
            "def spawn():\n"
            "    return mp.get_context('fork').Process(target=run, args=(None,))\n"
        )
        findings = lint_source(source, "src/repro/distributed/pool.py")
        assert [f.code for f in findings] == ["RPL011"]
        assert "_plan" in findings[0].message

    def test_rpl011_explicit_spec_worker_is_clean(self):
        source = (
            "import numpy as np\n"
            "SLAB_HEADER = 4\n"  # ALL_CAPS constants stay readable
            "def employee_worker_main(spec, conn):\n"
            "    rng = np.random.default_rng(spec.seed)\n"
            "    local = {}\n"
            "    local['n'] = SLAB_HEADER\n"
            "    conn.send(rng.random())\n"
        )
        assert lint_source(source, "src/repro/distributed/pool.py") == []

    def test_rpl017_flags_naked_spans_only(self):
        source = (
            "from repro.obs.trace import span as trace_span\n"
            "def f(tracer):\n"
            "    trace_span('phase')\n"
            "    with trace_span('ok'):\n"
            "        pass\n"
            "    return tracer.span('deferred')\n"
        )
        assert [f.code for f in lint_source(source, "src/repro/foo.py")] == [
            "RPL017"
        ]
        # Unrelated `.span` receivers (a regex match, say) stay in scope
        # only when the receiver looks like a tracer.
        other = "def g(match):\n    match.span(1)\n"
        assert lint_source(other, "src/repro/foo.py") == []

    def test_rpl008_only_fires_in_test_files(self):
        source = "import numpy as np\nnp.random.seed(0)\n"
        codes = {f.code for f in lint_source(source, "tests/test_foo.py", select=["RPL008"])}
        assert codes == {"RPL008"}
        assert lint_source(source, "src/repro/foo.py", select=["RPL008"]) == []


class TestEngine:
    def test_syntax_error_becomes_rpl000(self):
        findings = lint_source("def broken(:\n", "src/repro/broken.py")
        assert [f.code for f in findings] == ["RPL000"]

    def test_select_and_ignore(self):
        source = "import numpy as np\nnp.random.seed(0)\ndef f(x=[]):\n    pass\n"
        all_codes = [f.code for f in lint_source(source, "src/repro/foo.py")]
        assert all_codes == ["RPL001", "RPL004"]
        assert [
            f.code for f in lint_source(source, "src/repro/foo.py", select=["RPL004"])
        ] == ["RPL004"]
        assert [
            f.code for f in lint_source(source, "src/repro/foo.py", ignore=["RPL004"])
        ] == ["RPL001"]

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            lint_source("x = 1\n", "src/repro/foo.py", select=["RPL999"])

    def test_iter_python_files_skips_fixture_dirs(self):
        files = iter_python_files([os.path.dirname(__file__)])
        assert files, "expected the analysis test modules themselves"
        assert all("fixtures" not in path for path in files)

    def test_lint_paths_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["does/not/exist"])

    def test_findings_sorted_and_locatable(self):
        findings = lint_paths([FIXTURES], excluded_dirs=("__pycache__",))
        assert findings == sorted(findings, key=lambda f: f.sort_key())


class TestReporters:
    def _findings(self):
        return lint_file(os.path.join(FIXTURES, "rpl001_global_rng.py"))

    def test_text_report(self):
        report = render_text(self._findings())
        assert "RPL001" in report
        assert "reprolint: 3 findings" in report
        assert render_text([]) == "reprolint: no findings"

    def test_json_report_round_trips(self):
        payload = json.loads(render_json(self._findings()))
        assert payload["total"] == 3
        assert payload["summary"] == {"RPL001": 3}
        first = payload["findings"][0]
        assert set(first) == {"code", "rule", "path", "line", "col", "message"}

    def test_json_report_empty(self):
        payload = json.loads(render_json([]))
        assert payload == {"findings": [], "summary": {}, "total": 0}


class TestSarifReporter:
    def _findings(self):
        return lint_file(os.path.join(FIXTURES, "rpl001_global_rng.py"))

    def test_sarif_envelope(self):
        payload = json.loads(render_sarif(self._findings()))
        assert payload["version"] == "2.1.0"
        assert "sarif" in payload["$schema"]
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "reprolint"

    def test_sarif_results_locate_findings(self):
        findings = self._findings()
        payload = json.loads(render_sarif(findings))
        results = payload["runs"][0]["results"]
        assert len(results) == len(findings) == 3
        for finding, result in zip(findings, results):
            assert result["ruleId"] == finding.code
            assert result["level"] == "error"
            assert result["message"]["text"] == finding.message
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(
                "rpl001_global_rng.py"
            )
            assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
            assert location["region"]["startLine"] == finding.line
            assert location["region"]["startColumn"] == finding.col + 1

    def test_sarif_rule_metadata_and_index(self):
        table = rule_table() + program_rule_table()
        payload = json.loads(render_sarif(self._findings(), rules=table))
        driver = payload["runs"][0]["tool"]["driver"]
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == [code for code, __, __ in table]
        for result in payload["runs"][0]["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]

    def test_sarif_empty_run(self):
        payload = json.loads(render_sarif([]))
        assert payload["runs"][0]["results"] == []
