"""Tests of the runtime autograd sanitizer (NaN/dtype/leak detection)."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.agents.networks import CNNActorCritic
from repro.analysis import Sanitizer, SanitizerError, env_enabled, is_enabled
from repro.analysis import sanitizer as sanitizer_mod
from repro.nn.tensor import Tensor

pytestmark = pytest.mark.sanitize


@pytest.fixture
def sanitizer():
    """An enabled sanitizer that is always disabled on teardown."""
    s = Sanitizer()
    s.enable()
    try:
        yield s
    finally:
        s.disable()


def _tiny_trainer():
    return repro.build_trainer(
        "cews",
        repro.smoke_config(horizon=8, num_pois=10),
        train=repro.TrainConfig(num_employees=2, episodes=2, k_updates=1, seed=0),
        ppo=repro.PPOConfig(batch_size=8, epochs=1),
        seed=0,
    )


def _train_curves():
    trainer = _tiny_trainer()
    try:
        history = trainer.train()
    finally:
        trainer.close()
    params = [p.data.copy() for p in trainer.global_agent.policy_parameters()]
    return history.curve("kappa"), history.curve("policy_loss"), params


class TestNaNDetection:
    def test_injected_nan_weight_caught_with_conv_provenance(self, sanitizer):
        """A NaN weight in the CEWS CNN is blamed on the conv op that used it."""
        rng = np.random.default_rng(0)
        network = CNNActorCritic(channels=4, grid=8, num_workers=2, rng=rng)
        # Inject: poison one element of the first conv kernel.
        conv_weight = network.conv1.weight
        assert conv_weight.ndim == 4
        conv_weight.data[0, 0, 0, 0] = np.nan

        states = rng.random((1, 4, 8, 8))
        with pytest.raises(SanitizerError) as excinfo:
            network.forward(states)
        finding = excinfo.value.finding
        assert finding.code == "SAN001"
        assert finding.kind == "non-finite"
        assert finding.op == "conv2d"
        assert finding.module == "repro.agents.networks"
        assert "non-finite" in str(excinfo.value)

    def test_clean_forward_backward_has_zero_findings(self, sanitizer):
        rng = np.random.default_rng(1)
        network = CNNActorCritic(channels=4, grid=8, num_workers=2, rng=rng)
        output = network.forward(rng.random((2, 4, 8, 8)))
        loss = output.value.sum() + output.move_logits.sum() + output.charge_logits.sum()
        loss.backward()
        assert sanitizer.findings == []
        assert sanitizer.stats.ops_checked > 0
        assert sanitizer.stats.grads_checked > 0

    def test_nan_gradient_caught_in_backward(self, sanitizer):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True, name="leaf-x")
        y = x * 2.0
        bad_grad = np.array([np.nan, 1.0])
        with pytest.raises(SanitizerError) as excinfo:
            y.backward(bad_grad)
        assert excinfo.value.finding.code == "SAN003"
        assert "leaf-x" in excinfo.value.finding.message

    def test_record_mode_accumulates_instead_of_raising(self):
        with Sanitizer(mode="record") as s:
            x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
            (x.log() * 1.0).sum()  # log(0) = -inf at the op boundary
        codes = [f.code for f in s.findings]
        assert "SAN001" in codes
        assert all(code.startswith("SAN") for code in codes)


class TestDtypeDiscipline:
    def test_float32_entering_the_graph_is_caught(self, sanitizer):
        x = Tensor(np.zeros(3, dtype=np.float32))
        x32 = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        with pytest.raises(SanitizerError) as excinfo:
            x + x32
        finding = excinfo.value.finding
        assert finding.code == "SAN002"
        assert "float32" in finding.message

    def test_float64_passes(self, sanitizer):
        x = Tensor(np.zeros(3), requires_grad=True)
        (x + 1.0).sum().backward()
        assert sanitizer.findings == []


class TestLeakDetector:
    def test_retained_loss_reported_then_cleared(self, sanitizer):
        x = Tensor(np.ones(3), requires_grad=True)
        loss = (x * 2.0).sum()
        loss.backward()
        leaks = sanitizer.leak_report()
        assert leaks, "retained loss tensor should be reported as a leak"
        assert any(leak["op"] == "sum" for leak in leaks)
        for leak in leaks:
            assert set(leak) == {"op", "module", "shape"}
        del loss
        assert sanitizer.leak_report() == []

    def test_dropped_graph_is_not_a_leak(self, sanitizer):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        assert sanitizer.leak_report() == []


class TestZeroOverheadOff:
    def test_enable_disable_restores_original_methods(self):
        orig_make = Tensor.__dict__["_make"].__func__
        orig_accumulate = Tensor._accumulate
        orig_backward = Tensor.backward
        s = Sanitizer().enable()
        assert Tensor.__dict__["_make"].__func__ is not orig_make
        s.disable()
        assert Tensor.__dict__["_make"].__func__ is orig_make
        assert Tensor._accumulate is orig_accumulate
        assert Tensor.backward is orig_backward

    def test_double_enable_rejected(self, sanitizer):
        with pytest.raises(RuntimeError):
            Sanitizer().enable()

    def test_module_level_helpers(self):
        assert not is_enabled()
        s = sanitizer_mod.enable()
        try:
            assert is_enabled()
            assert sanitizer_mod.active() is s
            assert sanitizer_mod.enable() is s  # idempotent
        finally:
            assert sanitizer_mod.disable() is s
        assert not is_enabled()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Sanitizer(mode="explode")


class TestBitwiseEquivalence:
    """Sanitizing must never perturb the numbers; off must equal seed."""

    def test_sanitized_and_plain_runs_are_bitwise_identical(self):
        kappa_plain, loss_plain, params_plain = _train_curves()
        with Sanitizer() as s:
            kappa_sane, loss_sane, params_sane = _train_curves()
        assert s.findings == []
        assert kappa_plain == kappa_sane
        assert loss_plain == loss_sane
        for a, b in zip(params_plain, params_sane):
            assert np.array_equal(a, b)

    def test_run_after_disable_is_bitwise_identical_to_seed(self):
        kappa_before, loss_before, params_before = _train_curves()
        Sanitizer().enable().disable()  # a full enable/disable cycle
        kappa_after, loss_after, params_after = _train_curves()
        assert kappa_before == kappa_after
        assert loss_before == loss_after
        for a, b in zip(params_before, params_after):
            assert np.array_equal(a, b)


class TestEnvToggle:
    def test_env_enabled_parses_truthy_values(self):
        for value in ("1", "true", "Yes", "ON"):
            assert env_enabled({"REPRO_SANITIZE": value})
        for value in ("", "0", "false", "off", "no"):
            assert not env_enabled({"REPRO_SANITIZE": value})
        assert not env_enabled({})

    def test_summary_mentions_counts(self, sanitizer):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 3.0).sum().backward()
        summary = sanitizer.summary()
        assert "op outputs" in summary
        assert "0 finding(s)" in summary
