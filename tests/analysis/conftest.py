"""Keep pytest out of the linter's known-bad fixture corpus.

``fixtures/`` holds deliberately broken modules (one per RPL rule); they
are linted as text by the reprolint tests and must never be imported or
collected.
"""

collect_ignore = ["fixtures"]
