"""Tests of the incremental lint cache and the lint CLI wiring.

The cache is content-addressed: per-file entries key on one file's
content, the program entry keys on the digest of the *whole* closure so
an edit to any import-graph dependency invalidates the interprocedural
findings (conservative superset of true dependency tracking).
"""

import json
import os

import pytest

from repro.analysis import LintCache, lint_file
from repro.analysis import cache as cache_mod
from repro.analysis.cli import main as lint_main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
RED_FIXTURE = os.path.join(FIXTURES, "rpl001_global_rng.py")


class TestFileCache:
    def test_second_lint_is_a_hit_with_identical_findings(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache"))
        cold = lint_file(RED_FIXTURE, cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        warm = lint_file(RED_FIXTURE, cache=cache)
        assert cache.hits == 1
        assert warm == cold

    def test_content_change_invalidates(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import numpy as np\nnp.random.seed(0)\n")
        cache = LintCache(str(tmp_path / "cache"))
        first = lint_file(str(target), cache=cache)
        assert [f.code for f in first] == ["RPL001"]
        target.write_text("x = 1\n")
        second = lint_file(str(target), cache=cache)
        assert second == []
        assert cache.misses == 2

    def test_key_depends_on_rule_selection(self):
        key_all = LintCache.file_key("a.py", "x = 1\n", ["RPL001", "RPL004"])
        key_one = LintCache.file_key("a.py", "x = 1\n", ["RPL001"])
        assert key_all != key_one
        # Order of codes must not matter.
        assert key_all == LintCache.file_key("a.py", "x = 1\n", ["RPL004", "RPL001"])

    def test_program_key_changes_when_any_dependency_changes(self):
        files = [("pkg/a.py", "x = 1\n"), ("pkg/b.py", "y = 2\n")]
        base = LintCache.program_key(files, ["RPL013"])
        # Editing either file — even one the finding does not point into —
        # produces a new key: the whole closure is the dependency set.
        edited_b = [("pkg/a.py", "x = 1\n"), ("pkg/b.py", "y = 3\n")]
        assert LintCache.program_key(edited_b, ["RPL013"]) != base
        # Same content, same key, regardless of iteration order.
        assert LintCache.program_key(list(reversed(files)), ["RPL013"]) == base

    def test_analyzer_edit_invalidates_every_key(self, monkeypatch):
        """Editing a *rule* changes findings without changing any analyzed
        file, so the keys must also cover the analyzer's own source.
        (Regression: an RPL006 whitelist extension left stale findings
        for the unchanged target file in a warm cache.)"""
        file_before = LintCache.file_key("a.py", "x = 1\n", ["RPL001"])
        program_before = LintCache.program_key([("a.py", "x = 1\n")], ["RPL013"])
        monkeypatch.setattr(
            cache_mod, "_analyzer_salt_memo", "different-analyzer-source"
        )
        assert LintCache.file_key("a.py", "x = 1\n", ["RPL001"]) != file_before
        assert (
            LintCache.program_key([("a.py", "x = 1\n")], ["RPL013"])
            != program_before
        )

    def test_read_only_cache_degrades_silently(self, tmp_path):
        blocked = tmp_path / "file"  # a *file*, so makedirs/open must fail
        blocked.write_text("")
        cache = LintCache(str(blocked))
        findings = lint_file(RED_FIXTURE, cache=cache)
        assert [f.code for f in findings] == ["RPL001"] * 3

    def test_prune_keeps_newest(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache"))
        for i in range(6):
            cache.put(f"file-{i:02d}", [])
        assert cache.prune(keep=4) == 2
        remaining = os.listdir(cache.root)
        assert len(remaining) == 4


class TestCli:
    def _run(self, argv, capsys):
        code = lint_main(argv)
        return code, capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        code, out = self._run([str(target), "--no-cache"], capsys)
        assert code == 0
        assert "no findings" in out

    def test_red_fixture_exits_one(self, capsys):
        code, out = self._run([RED_FIXTURE, "--no-cache"], capsys)
        assert code == 1
        assert "RPL001" in out

    def test_unknown_code_exits_two(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        code, out = self._run([str(target), "--select", "RPL999"], capsys)
        assert code == 2

    def test_program_codes_accepted_by_select(self, tmp_path, capsys):
        """RPL013–016 validate against the combined registry."""
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        code, __ = self._run(
            [str(target), "--no-cache", "--program", "--select", "RPL013"], capsys
        )
        assert code == 0

    def test_program_flag_runs_interprocedural_rules(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            "import threading\n"
            "import time\n"
            "guard = threading.Lock()\n"
            "def pump():\n"
            "    with guard:\n"
            "        time.sleep(1)\n"
        )
        no_program, __ = self._run(
            [str(target), "--no-cache", "--select", "RPL016"], capsys
        )
        assert no_program == 0  # per-file engine does not own RPL016
        with_program, out = self._run(
            [str(target), "--no-cache", "--program", "--select", "RPL016"], capsys
        )
        assert with_program == 1
        assert "RPL016" in out

    def test_cache_warm_run_hits(self, tmp_path, capsys, monkeypatch):
        cache_dir = tmp_path / "cache"
        argv = [RED_FIXTURE, "--program", "--cache-dir", str(cache_dir)]
        code_cold, __ = self._run(argv, capsys)
        entries_after_cold = set(os.listdir(cache_dir))
        assert entries_after_cold  # per-file + program entries written
        code_warm, __ = self._run(argv, capsys)
        assert code_cold == code_warm == 1
        assert set(os.listdir(cache_dir)) == entries_after_cold

    def test_no_cache_leaves_no_directory(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        self._run(
            [RED_FIXTURE, "--no-cache", "--cache-dir", str(cache_dir)], capsys
        )
        assert not cache_dir.exists()

    def test_list_rules_covers_both_registries(self, capsys):
        code, out = self._run(["--list-rules"], capsys)
        assert code == 0
        for rule_code in ("RPL001", "RPL012", "RPL013", "RPL016"):
            assert rule_code in out

    def test_json_format_round_trips(self, capsys):
        code, out = self._run([RED_FIXTURE, "--no-cache", "--format", "json"], capsys)
        payload = json.loads(out)
        assert code == 1
        assert payload["summary"] == {"RPL001": 3}

    def test_sarif_flag_is_format_shorthand(self, capsys):
        __, via_flag = self._run([RED_FIXTURE, "--no-cache", "--sarif"], capsys)
        __, via_format = self._run(
            [RED_FIXTURE, "--no-cache", "--format", "sarif"], capsys
        )
        assert json.loads(via_flag) == json.loads(via_format)
