"""Whole-program rule tests: registry, fixture corpus, regressions.

The known-bad fixture packages live under ``tests/analysis/fixtures``;
each trips exactly its own rule with a known count, and the RPL013 pair
is the static half of the lock-order regression (the runtime half lives
in ``test_lockwatch.py``).
"""

import os

import pytest

from repro.analysis import (
    PROGRAM_RULES,
    analyze_files,
    analyze_program,
    program_rule_table,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# fixture package -> (rule code, expected finding count)
PROGRAM_FIXTURE_EXPECTATIONS = {
    "rpl013_lock_order": ("RPL013", 1),
    "rpl014_rng_origin": ("RPL014", 4),
    "rpl015_fork_reach": ("RPL015", 4),
    "rpl016_blocking_lock": ("RPL016", 3),
    "rpl019_event_loop": ("RPL019", 5),
}


def analyze_fixture(name, **kwargs):
    return analyze_program(
        [os.path.join(FIXTURES, name)],
        excluded_dirs=("__pycache__",),
        **kwargs,
    )


class TestRegistry:
    def test_program_rules_registered(self):
        assert sorted(PROGRAM_RULES) == [
            "RPL013",
            "RPL014",
            "RPL015",
            "RPL016",
            "RPL019",
        ]

    def test_rule_table_rows(self):
        rows = program_rule_table()
        assert [code for code, __, __ in rows] == sorted(PROGRAM_RULES)
        for __, name, description in rows:
            assert name and description


class TestFixtureCorpus:
    @pytest.mark.parametrize(
        "package,expected", sorted(PROGRAM_FIXTURE_EXPECTATIONS.items())
    )
    def test_fixture_trips_its_rule_exactly(self, package, expected):
        code, count = expected
        findings = analyze_fixture(package, select=[code])
        assert [f.code for f in findings] == [code] * count
        for finding in findings:
            assert finding.line > 0
            assert finding.rule == PROGRAM_RULES[code].name

    def test_fixture_corpus_is_red_as_a_tree(self):
        dirs = [os.path.join(FIXTURES, name) for name in PROGRAM_FIXTURE_EXPECTATIONS]
        findings = analyze_program(dirs, excluded_dirs=("__pycache__",))
        assert {f.code for f in findings} == set(PROGRAM_RULES)


class TestLockOrderRegression:
    """Satellite: the A(lock1→lock2) / B(lock2→lock1) module pair."""

    def test_cycle_reports_both_acquisition_paths(self):
        findings = analyze_fixture("rpl013_lock_order", select=["RPL013"])
        assert len(findings) == 1
        message = findings[0].message
        assert "lock-order cycle" in message
        # Both named locks appear in the rendered cycle ...
        assert "ordpkg.locks.lock_a (Lock)" in message
        assert "ordpkg.locks.lock_b (Lock)" in message
        # ... and BOTH edges carry their acquisition path: one rooted in
        # alpha.py (a→b), one rooted in beta.py (b→a), ';;'-separated.
        paths = message.split("acquisition paths: ", 1)[1].split(" ;; ")
        assert len(paths) == 2
        assert any("alpha.py" in p for p in paths)
        assert any("beta.py" in p for p in paths)
        # The finding anchors at a real acquisition site.
        assert findings[0].path.endswith("alpha.py")
        assert findings[0].line > 0

    def test_single_order_is_clean(self):
        """Same locks, both modules agreeing on a→b: no cycle."""
        locks = "import threading\nlock_a = threading.Lock()\nlock_b = threading.Lock()\n"
        user = (
            "from locks import lock_a, lock_b\n"
            "def f():\n"
            "    with lock_a:\n"
            "        with lock_b:\n"
            "            pass\n"
        )
        findings = analyze_files(
            [("proj/locks.py", locks), ("proj/user.py", user), ("proj/also.py", user)],
            select=["RPL013"],
        )
        assert findings == []


class TestInterproceduralEdges:
    def test_rpl013_sees_lock_held_across_a_call(self):
        """The cycle only exists through a callee's acquisition."""
        source_a = (
            "import threading\n"
            "lock_a = threading.Lock()\n"
            "lock_b = threading.Lock()\n"
            "def outer():\n"
            "    with lock_a:\n"
            "        middle()\n"
            "def middle():\n"
            "    inner()\n"
            "def inner():\n"
            "    with lock_b:\n"
            "        pass\n"
            "def reversed_order():\n"
            "    with lock_b:\n"
            "        with lock_a:\n"
            "            pass\n"
        )
        findings = analyze_files([("proj/mod.py", source_a)], select=["RPL013"])
        assert [f.code for f in findings] == ["RPL013"]
        # The acquisition path spells out the call chain.
        assert "calls middle" in findings[0].message
        assert "calls inner" in findings[0].message

    def test_rpl016_blocking_reached_through_callee(self):
        source = (
            "import threading\n"
            "import time\n"
            "guard = threading.Lock()\n"
            "def pump():\n"
            "    with guard:\n"
            "        backoff()\n"
            "def backoff():\n"
            "    time.sleep(1)\n"
        )
        findings = analyze_files([("proj/mod.py", source)], select=["RPL016"])
        assert [f.code for f in findings] == ["RPL016"]
        assert "time.sleep" in findings[0].message
        assert "calls backoff" in findings[0].message


class TestSuppressions:
    def test_program_findings_honour_disable_comments(self):
        source = (
            "import threading\n"
            "import time\n"
            "guard = threading.Lock()\n"
            "def pump():\n"
            "    with guard:\n"
            "        time.sleep(1)  # reprolint: disable=RPL016\n"
        )
        assert analyze_files([("proj/mod.py", source)], select=["RPL016"]) == []

    def test_wrong_code_does_not_suppress(self):
        source = (
            "import threading\n"
            "import time\n"
            "guard = threading.Lock()\n"
            "def pump():\n"
            "    with guard:\n"
            "        time.sleep(1)  # reprolint: disable=RPL013\n"
        )
        findings = analyze_files([("proj/mod.py", source)], select=["RPL016"])
        assert [f.code for f in findings] == ["RPL016"]


class TestRngProvenance:
    def _analyze(self, body):
        # A real in-tree directory gives the module a repro.distributed
        # name (module naming walks the on-disk __init__.py chain).
        path = os.path.join(REPO_ROOT, "src", "repro", "distributed", "fake_rng.py")
        return analyze_files([(path, body)], select=["RPL014"])

    def test_param_derived_seed_is_sanctioned(self):
        body = (
            "import numpy as np\n"
            "def worker(spec):\n"
            "    return np.random.default_rng(spec.seed)\n"
        )
        assert self._analyze(body) == []

    def test_seed_then_restore_idiom_is_sanctioned(self):
        body = (
            "import numpy as np\n"
            "def adopt(state):\n"
            "    rng = np.random.default_rng(0)\n"
            "    rng.bit_generator.state = state\n"
            "    return rng\n"
        )
        assert self._analyze(body) == []

    def test_seed_sequence_chain_is_sanctioned(self):
        body = (
            "import numpy as np\n"
            "def spawn(seed, n):\n"
            "    seq = np.random.SeedSequence(seed)\n"
            "    return [np.random.default_rng(s) for s in seq.spawn(n)]\n"
        )
        assert self._analyze(body) == []

    def test_module_global_seed_is_flagged(self):
        body = (
            "import numpy as np\n"
            "shared_seed = 3\n"
            "def worker():\n"
            "    return np.random.default_rng(shared_seed)\n"
        )
        findings = self._analyze(body)
        assert [f.code for f in findings] == ["RPL014"]
        assert "module-level variable" in findings[0].message

    def test_upper_case_module_constant_is_sanctioned(self):
        body = (
            "import numpy as np\n"
            "BASE_SEED = 3\n"
            "def worker(offset):\n"
            "    return np.random.default_rng(BASE_SEED + offset)\n"
        )
        assert self._analyze(body) == []

    def test_out_of_scope_module_is_ignored(self):
        body = (
            "import numpy as np\n"
            "def helper():\n"
            "    return np.random.default_rng()\n"
        )
        path = os.path.join(REPO_ROOT, "src", "repro", "env", "fake_rng.py")
        assert analyze_files([(path, body)], select=["RPL014"]) == []


class TestForkReachability:
    def test_reinit_named_functions_are_exempt(self):
        source = (
            "registry = {}\n"
            "def _employee_worker_main(spec, conn):\n"
            "    my_reset_after_fork()\n"
            "def my_reset_after_fork():\n"
            "    global registry\n"
            "    registry = {}\n"
        )
        assert analyze_files([("proj/w.py", source)], select=["RPL015"]) == []

    def test_thread_after_reinit_is_sanctioned(self):
        source = (
            "import threading\n"
            "def _employee_worker_main(spec, conn):\n"
            "    my_reset_after_fork()\n"
            "    t = threading.Thread(target=print)\n"
            "    t.start()\n"
            "def my_reset_after_fork():\n"
            "    pass\n"
        )
        assert analyze_files([("proj/w.py", source)], select=["RPL015"]) == []


class TestEventLoopBlocking:
    """RPL019: blocking calls inside async def bodies in serving code."""

    def test_transitive_finding_spells_out_the_call_chain(self):
        findings = analyze_fixture("rpl019_event_loop", select=["RPL019"])
        transitive = [f for f in findings if "handle_transitive" in f.message]
        assert len(transitive) == 1
        assert "calls read_exact" in transitive[0].message
        assert "socket/pipe recv" in transitive[0].message

    def test_awaited_and_offloaded_calls_are_exempt(self):
        source = (
            "import time\n"
            "async def clean(reader, loop, pool):\n"
            "    data = await reader.read(64)\n"
            "    return await loop.run_in_executor(pool, time.sleep, 1)\n"
        )
        assert analyze_files([("proj/serve/h.py", source)], select=["RPL019"]) == []

    def test_sync_functions_are_not_reported_directly(self):
        source = (
            "def pump(conn):\n"
            "    return conn.recv(64)\n"
        )
        assert analyze_files([("proj/serve/h.py", source)], select=["RPL019"]) == []

    def test_out_of_scope_async_code_is_ignored(self):
        source = (
            "import time\n"
            "async def slow():\n"
            "    time.sleep(1)\n"
        )
        assert analyze_files([("proj/train/h.py", source)], select=["RPL019"]) == []

    def test_in_scope_async_sleep_is_flagged(self):
        source = (
            "import time\n"
            "async def slow():\n"
            "    time.sleep(1)\n"
        )
        findings = analyze_files([("proj/serve/h.py", source)], select=["RPL019"])
        assert [f.code for f in findings] == ["RPL019"]
        assert "time.sleep" in findings[0].message
        assert "run_in_executor" in findings[0].message

    def test_async_callee_is_its_own_finding_not_the_callers(self):
        source = (
            "import time\n"
            "async def inner():\n"
            "    time.sleep(1)\n"
            "async def outer():\n"
            "    await inner()\n"
        )
        findings = analyze_files([("proj/serve/h.py", source)], select=["RPL019"])
        assert len(findings) == 1
        assert "async def inner" in findings[0].message


class TestRealTreeIsClean:
    """The acceptance gate: the whole-program pass on src/ finds nothing
    (every true positive fixed or suppressed with a written reason)."""

    def test_src_program_pass_is_clean(self):
        assert analyze_program([os.path.join(REPO_ROOT, "src")]) == []
