"""Tests of the runtime lock-order sanitizer (SAN004 / SAN005).

Covers the proxy mechanics (patch-on-enable, Condition compatibility,
RLock reentrance), the order-inversion and long-hold detectors with
stack provenance, and the acceptance gate: a seeded CEWS training run
under lockwatch is bitwise-identical to an unwatched one, reports zero
findings, and a post-disable run is bitwise-identical again.
"""

import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro
from repro.distributed import save_checkpoint
from repro.analysis import LockWatch, LockWatchError
from repro.analysis import lockwatch as lockwatch_mod

pytestmark = pytest.mark.sanitize


@pytest.fixture
def watch():
    """An enabled record-mode lockwatch, always disabled on teardown."""
    w = LockWatch(mode="record")
    w.enable()
    try:
        yield w
    finally:
        w.disable()


class TestPatching:
    def test_factories_patched_and_restored(self):
        original_lock, original_rlock = threading.Lock, threading.RLock
        w = LockWatch()
        w.enable()
        try:
            assert threading.Lock is not original_lock
            assert threading.RLock is not original_rlock
            assert isinstance(threading.Lock(), lockwatch_mod._WatchedLock)
        finally:
            w.disable()
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock

    def test_two_watchers_cannot_both_enable(self, watch):
        with pytest.raises(RuntimeError):
            LockWatch().enable()

    def test_proxy_degrades_after_disable(self, watch):
        lock = threading.Lock()
        watch.disable()
        acquires_before = watch.stats["acquires"]
        with lock:
            pass
        # The proxy still locks correctly but reports nothing.
        assert watch.stats["acquires"] == acquires_before
        watch.enable()  # fixture teardown expects it enabled

    def test_env_toggle(self):
        assert lockwatch_mod.env_enabled({"REPRO_LOCKWATCH": "1"})
        assert lockwatch_mod.env_enabled({"REPRO_LOCKWATCH": "yes"})
        assert not lockwatch_mod.env_enabled({"REPRO_LOCKWATCH": "0"})
        assert not lockwatch_mod.env_enabled({})


class TestOrderInversion:
    def _establish_a_then_b(self, lock_a, lock_b):
        def forward():
            with lock_a:
                with lock_b:
                    pass

        thread = threading.Thread(target=forward)
        thread.start()
        thread.join()

    def test_san004_recorded_with_both_stacks(self, watch):
        lock_a, lock_b = threading.Lock(), threading.Lock()
        self._establish_a_then_b(lock_a, lock_b)
        with lock_b:
            with lock_a:  # inversion of the established a -> b
                pass
        codes = [f.code for f in watch.findings]
        assert codes == ["SAN004"]
        finding = watch.findings[0]
        assert finding.kind == "order-inversion"
        # Provenance: the inverting acquisition AND the established edge.
        assert any("while holding" in stack for stack in finding.stacks)
        assert any("established edge" in stack for stack in finding.stacks)
        assert "test_lockwatch.py" in "".join(finding.stacks)

    def test_san004_raises_and_rolls_back_in_raise_mode(self):
        w = LockWatch(mode="raise")
        w.enable()
        try:
            lock_a, lock_b = threading.Lock(), threading.Lock()
            self._establish_a_then_b(lock_a, lock_b)
            errors = []

            def backward():
                try:
                    with lock_b:
                        with lock_a:
                            pass
                except LockWatchError as exc:
                    errors.append(exc)

            thread = threading.Thread(target=backward)
            thread.start()
            thread.join()
            assert len(errors) == 1
            assert errors[0].finding.code == "SAN004"
            # The rolled-back acquisition left both locks free.
            assert not lock_a.locked()
            assert not lock_b.locked()
        finally:
            w.disable()

    def test_matches_static_rpl013_fixture_shape(self, watch):
        """Runtime half of the lock-order regression: the same
        A(lock1→lock2) / B(lock2→lock1) interleaving the static fixture
        pair encodes is caught live."""
        lock_1, lock_2 = threading.Lock(), threading.Lock()

        def module_a():
            with lock_1:
                with lock_2:
                    pass

        def module_b():
            with lock_2:
                with lock_1:
                    pass

        first = threading.Thread(target=module_a)
        first.start()
        first.join()
        second = threading.Thread(target=module_b)
        second.start()
        second.join()
        assert [f.code for f in watch.findings] == ["SAN004"]

    def test_consistent_order_is_silent(self, watch):
        lock_a, lock_b = threading.Lock(), threading.Lock()
        for _ in range(3):
            self._establish_a_then_b(lock_a, lock_b)
        assert watch.findings == []
        assert watch.stats["edges"] == 1  # recorded once, not per pass


class TestReentrancyAndConditions:
    def test_rlock_reentrance_is_one_hold(self, watch):
        rlock = threading.RLock()
        with rlock:
            with rlock:
                tid = threading.get_ident()
                assert len(watch._held[tid]) == 1
                assert watch._held[tid][0].depth == 2
        assert watch._held[threading.get_ident()] == []

    def test_condition_wait_on_reentrant_rlock_restores_depth(self, watch):
        """RLock._release_save returns (count, owner); wait() must restore
        the full reentrant depth or later releases desynchronize the
        held-set."""
        rlock = threading.RLock()
        condition = threading.Condition(rlock)
        ready = []

        def producer():
            time.sleep(0.05)
            with condition:
                ready.append(True)
                condition.notify_all()

        thread = threading.Thread(target=producer)
        thread.start()
        with rlock:  # depth 1
            with condition:  # depth 2 (same underlying RLock)
                while not ready:
                    condition.wait(timeout=5.0)
                tid = threading.get_ident()
                assert len(watch._held[tid]) == 1
                assert watch._held[tid][0].depth == 2
        thread.join()
        assert watch._held[threading.get_ident()] == []
        assert watch.findings == []

    def test_condition_wait_notify_through_proxy(self, watch):
        condition = threading.Condition()
        ready = []

        def consumer():
            with condition:
                while not ready:
                    condition.wait(timeout=5.0)

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        with condition:
            ready.append(True)
            condition.notify_all()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert watch.findings == []
        # wait() fully removed the lock from the waiter's held-set.
        for holds in watch._held.values():
            assert holds == []


class TestLongHold:
    def test_san005_fires_on_contended_slow_hold(self):
        w = LockWatch(mode="record", hold_threshold=0.05)
        w.enable()
        try:
            lock = threading.Lock()

            def hog():
                with lock:
                    time.sleep(0.2)

            thread = threading.Thread(target=hog)
            thread.start()
            time.sleep(0.05)  # let the hog take the lock first
            with lock:  # we contend; the hog's release sees it
                pass
            thread.join()
            codes = [f.code for f in w.findings]
            assert "SAN005" in codes
            finding = next(f for f in w.findings if f.code == "SAN005")
            assert "other threads were waiting" in finding.message
        finally:
            w.disable()

    def test_uncontended_slow_hold_is_silent(self):
        w = LockWatch(mode="record", hold_threshold=0.01)
        w.enable()
        try:
            lock = threading.Lock()
            with lock:
                time.sleep(0.05)
            assert w.findings == []
        finally:
            w.disable()

    def test_failed_trylock_does_not_mark_contention(self):
        """acquire(blocking=False) never waits, so a hold it bounced off
        must not count as contended (no SAN005)."""
        w = LockWatch(mode="record", hold_threshold=0.05)
        w.enable()
        try:
            lock = threading.Lock()

            def hog():
                with lock:
                    time.sleep(0.2)

            thread = threading.Thread(target=hog)
            thread.start()
            time.sleep(0.05)  # let the hog take the lock first
            assert lock.acquire(blocking=False) is False
            thread.join()
            assert w.findings == []
        finally:
            w.disable()


class TestCrossThreadRelease:
    def test_release_in_other_thread_drops_acquirer_record(self, watch):
        """The plain-Lock signaling idiom (acquire here, release there)
        must not leave a phantom hold that fabricates order edges."""
        lock, other = threading.Lock(), threading.Lock()
        lock.acquire()
        releaser = threading.Thread(target=lock.release)
        releaser.start()
        releaser.join()
        for holds in watch._held.values():
            assert holds == []
        # Without the record dropped, this acquisition would register a
        # stale lock -> other edge ...
        with other:
            pass

        def reverse():
            with other:
                with lock:
                    pass

        thread = threading.Thread(target=reverse)
        thread.start()
        thread.join()
        # ... and the reverse nesting would report a false SAN004.
        assert watch.findings == []


# A thread created under the watch embeds a watched lock in its _started
# Event; the forked child's threading._after_fork calls _at_fork_reinit
# on it.  Runs in a fresh interpreter (not under pytest, whose
# unraisablehook would swallow the child's "Exception ignored" output).
_FORK_REINIT_SCRIPT = """
import multiprocessing
import os
import sys
import threading

from repro.analysis import lockwatch

lockwatch.enable()
thread = threading.Thread(target=lambda: None)
thread.start()
thread.join()

def child():
    # threading._after_fork already re-inited the inherited watched
    # locks; prove fresh threading machinery works on top.
    lockwatch.reset_after_fork()
    event = threading.Event()
    worker = threading.Thread(target=event.set)
    worker.start()
    worker.join()
    os._exit(0 if event.is_set() else 1)

proc = multiprocessing.get_context("fork").Process(target=child)
proc.start()
proc.join(timeout=30)
lockwatch.disable()
sys.exit(proc.exitcode)
"""


class TestForkReset:
    @pytest.mark.skipif(not hasattr(os, "fork"), reason="requires fork")
    def test_forked_child_reinits_watched_locks_cleanly(self):
        """Regression: _WatchedLock without _at_fork_reinit made
        threading._after_fork die with "Exception ignored" in every
        forked child, leaving inherited Event/Condition locks un-reinit
        and threading's bookkeeping stale."""
        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", _FORK_REINIT_SCRIPT],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "Exception ignored" not in result.stderr, result.stderr
        assert "_after_fork" not in result.stderr, result.stderr

    def test_at_fork_reinit_purges_hold_records(self, watch):
        """_at_fork_reinit (child-side, single-threaded) re-inits the
        inner lock and drops any hold record the parent left behind."""
        lock = threading.Lock()
        lock.acquire()  # simulate forking while held
        lock._at_fork_reinit()
        assert not lock.locked()
        for holds in watch._held.values():
            assert all(hold.uid != lock._uid for hold in holds)

    def test_reset_clears_inherited_bookkeeping(self, watch):
        lock_a, lock_b = threading.Lock(), threading.Lock()
        with lock_a:
            with lock_b:
                pass
        assert watch.stats["edges"] == 1
        watch.reset_after_fork()
        assert watch._edges == {}
        assert watch._held == {}
        assert watch.findings == []
        # Fresh edges build up cleanly afterwards.
        with lock_b:
            with lock_a:
                pass
        assert watch.findings == []


def _seeded_run(checkpoint_path, backend=None):
    """One deterministic 2-episode CEWS train: (curves, checkpoint arrays)."""
    trainer = repro.build_trainer(
        "cews",
        repro.smoke_config(seed=5, horizon=8, num_pois=10),
        train=repro.TrainConfig(
            num_employees=2, episodes=2, k_updates=1, seed=0, backend=backend
        ),
        ppo=repro.PPOConfig(batch_size=8, epochs=1),
    )
    history = trainer.train()
    save_checkpoint(trainer, str(checkpoint_path))
    trainer.close()
    curves = tuple(
        history.curve(name)
        for name in ("kappa", "rho", "policy_loss", "value_loss", "extrinsic_reward")
    )
    with np.load(str(checkpoint_path)) as archive:
        arrays = {key: archive[key].copy() for key in archive.files}
    return curves, arrays


def _assert_bitwise_equal(first, second):
    curves_a, arrays_a = first
    curves_b, arrays_b = second
    assert curves_a == curves_b
    assert sorted(arrays_a) == sorted(arrays_b)
    for key in arrays_a:
        assert arrays_a[key].dtype == arrays_b[key].dtype, key
        assert np.array_equal(arrays_a[key], arrays_b[key]), key


class TestBitwiseTrainGate:
    """Acceptance: watched runs change nothing and find nothing."""

    @pytest.mark.parametrize("backend", [None, "thread"])
    def test_watched_run_bitwise_identical_and_clean(self, tmp_path, backend):
        baseline = _seeded_run(tmp_path / "plain.npz", backend=backend)
        watch = LockWatch(mode="record")
        watch.enable()
        try:
            watched = _seeded_run(tmp_path / "watched.npz", backend=backend)
        finally:
            watch.disable()
        assert watch.findings == []
        assert watch.stats["acquires"] > 0 or backend is None
        _assert_bitwise_equal(baseline, watched)
        # Post-disable the world is back to normal: identical again.
        after = _seeded_run(tmp_path / "after.npz", backend=backend)
        _assert_bitwise_equal(baseline, after)
