"""Call-graph builder tests on adversarial import/dispatch shapes.

Each test builds a tiny in-memory program and asserts the *exact* set of
resolved edges — the substrate the RPL013–016 rules stand on.
"""

import os

import pytest

from repro.analysis import build_program_index, module_name_for_path

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def edges_of(index, fqn):
    """Sorted unique callee FQNs resolved out of one function."""
    return sorted({site.callee for site in index.edges.get(fqn, ())})


UTIL = """
def timed(fn):
    return fn

@timed
def helper():
    return 1

def extra():
    return 2

handler = helper
"""


def build_main(body):
    return build_program_index(
        [("proj/util.py", UTIL), ("proj/main.py", body)]
    )


class TestImportShapes:
    def test_from_import_with_alias(self):
        index = build_main(
            "from util import helper as h\n"
            "def caller():\n"
            "    return h()\n"
        )
        assert edges_of(index, "main.caller") == ["util.helper"]

    def test_star_import(self):
        index = build_main(
            "from util import *\n"
            "def caller():\n"
            "    return extra()\n"
        )
        assert edges_of(index, "main.caller") == ["util.extra"]

    def test_module_qualified_call(self):
        index = build_main(
            "import util\n"
            "def caller():\n"
            "    return util.helper()\n"
        )
        assert edges_of(index, "main.caller") == ["util.helper"]

    def test_module_import_alias(self):
        index = build_main(
            "import util as u\n"
            "def caller():\n"
            "    return u.extra()\n"
        )
        assert edges_of(index, "main.caller") == ["util.extra"]


class TestFunctionAliases:
    def test_module_level_assignment(self):
        """``handler = helper`` resolves through the alias table even when
        reached as a module attribute."""
        index = build_main(
            "import util\n"
            "def caller():\n"
            "    return util.handler()\n"
        )
        assert edges_of(index, "main.caller") == ["util.helper"]

    def test_function_assigned_to_local_variable(self):
        index = build_main(
            "from util import helper as h\n"
            "def caller():\n"
            "    fn = h\n"
            "    return fn()\n"
        )
        assert edges_of(index, "main.caller") == ["util.helper"]

    def test_decorated_function_still_resolves(self):
        """``@timed`` does not hide ``helper`` from the index."""
        index = build_main(
            "from util import helper\n"
            "def caller():\n"
            "    return helper()\n"
        )
        assert edges_of(index, "main.caller") == ["util.helper"]
        assert index.functions["util.helper"].decorators == ("timed",)


DISPATCH = """
class Base:
    def run(self):
        return self.step()

    def step(self):
        return 0


class Child(Base):
    def step(self):
        return 1


class GrandChild(Child):
    pass


def on_base():
    b = Base()
    return b.run()


def on_child():
    c = Child()
    return c.step()
"""


class TestDispatch:
    @pytest.fixture()
    def index(self):
        return build_program_index([("proj/main.py", DISPATCH)])

    def test_self_call_fans_out_to_overrides(self, index):
        """``self.step()`` inside Base.run may land on any override: a
        base method runs against subclass selves too."""
        assert edges_of(index, "main.Base.run") == [
            "main.Base.step",
            "main.Child.step",
        ]

    def test_constructor_typed_local(self, index):
        assert edges_of(index, "main.on_base") == ["main.Base.run"]

    def test_child_method_resolves_to_override(self, index):
        assert edges_of(index, "main.on_child") == ["main.Child.step"]

    def test_inherited_method_resolves_through_mro(self, index):
        """GrandChild inherits step from Child via the in-program MRO."""
        target = index.mro_method("main.GrandChild", "step")
        assert target is not None and target.fqn == "main.Child.step"


class TestReachability:
    def test_bfs_paths_cross_modules(self):
        index = build_main(
            "from util import helper\n"
            "def outer():\n"
            "    return inner()\n"
            "def inner():\n"
            "    return helper()\n"
        )
        paths = index.reachable(["main.outer"])
        assert set(paths) == {"main.outer", "main.inner", "util.helper"}
        assert paths["util.helper"] == ("main.outer", "main.inner", "util.helper")


class TestModuleNaming:
    def test_real_tree_walks_init_chain(self):
        path = os.path.join(REPO_ROOT, "src", "repro", "distributed", "trainer.py")
        assert module_name_for_path(path) == "repro.distributed.trainer"

    def test_bare_file_keeps_stem(self):
        assert module_name_for_path("somewhere/loose.py") == "loose"
