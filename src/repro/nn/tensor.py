"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of :mod:`repro.nn`.  It provides a
:class:`Tensor` wrapper around ``numpy.ndarray`` that records the operations
applied to it and can compute gradients of a scalar loss with respect to any
participating tensor via :meth:`Tensor.backward`.

The design follows the classic define-by-run tape:

* every operation produces a new :class:`Tensor` whose ``_parents`` point at
  its inputs and whose ``_backward`` closure knows how to push the output
  gradient back to those inputs;
* :meth:`Tensor.backward` topologically sorts the graph reachable from the
  loss and runs the closures in reverse order, accumulating into
  ``tensor.grad``.

Gradients are plain ``numpy.ndarray`` objects (not tensors); higher-order
differentiation is intentionally out of scope — the paper's algorithms only
need first-order gradients.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_DEFAULT_DTYPE = np.float64


class _GradMode(threading.local):
    """Per-thread autograd switch (employees explore on worker threads)."""

    def __init__(self):
        self.enabled = True


_GRAD_MODE = _GradMode()


def is_grad_enabled() -> bool:
    """Whether ops record the tape on the current thread."""
    return _GRAD_MODE.enabled


class no_grad:
    """Context manager that disables tape construction on this thread.

    Inside the block :meth:`Tensor._make` short-circuits: op outputs are
    created with ``requires_grad=False`` and no ``_parents`` tuple or
    backward closure is attached, so inference-only forwards (rollout
    ``act()``, evaluation, detached curiosity rewards) allocate no graph
    at all.  Forward *values* are unchanged — only the tape is elided.

    The switch is consulted *inside* the original ``_make`` body, so the
    sanitizer / tracer / profiler monkey-patch contract (wrappers around
    ``Tensor._make`` that call through to the saved original) composes
    unchanged: instrumented wrappers still see every op output, and a
    ``no_grad`` forward stays bitwise-identical whether or not they are
    installed.

    Re-entrant and usable as a decorator-free plain context manager::

        with nn.no_grad():
            action = agent.act(env, rng)
    """

    __slots__ = ("_previous",)

    def __enter__(self) -> "no_grad":
        self._previous = _GRAD_MODE.enabled
        _GRAD_MODE.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_MODE.enabled = self._previous


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` to a float numpy array without copying tensors."""
    if isinstance(value, Tensor):
        return value.data
    if isinstance(value, np.ndarray):
        if value.dtype.kind in "fc":
            return value
        return value.astype(_DEFAULT_DTYPE)
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting can (a) prepend dimensions and (b) stretch size-1 axes; the
    adjoint of both is a sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched axes.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Anything convertible to a float numpy array.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    # __weakref__ lets the analysis sanitizer's leak detector observe graph
    # nodes without keeping them alive (repro.analysis.sanitizer).
    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "__weakref__",
    )

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def item(self) -> float:
        """The single value of a size-1 tensor as a float."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Deep copy (new buffer, same requires_grad, no graph)."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Discard any accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output tensor, wiring the tape if any parent needs grad.

        Under :class:`no_grad` the tape is elided entirely — no parents
        tuple, no backward closure, ``requires_grad=False`` — which is
        what makes inference-mode forwards allocation-free on the graph
        side.  The check lives *here* (not in the ops) so every wrapped
        ``_make`` installed by the sanitizer/tracer/profiler inherits it.
        """
        out = Tensor(data)
        if _GRAD_MODE.enabled:
            # Plain loop instead of any(generator): this is the hottest
            # call in the framework and the generator allocation shows up.
            for p in parents:
                if p.requires_grad:
                    out.requires_grad = True
                    out._parents = tuple(parents)
                    out._backward = backward
                    break
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use)."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        If ``grad`` is omitted the tensor must be scalar (the usual loss
        case) and a gradient of 1 is used.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar tensor, "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        # Seed and run the tape in reverse topological order.  Output grads
        # are staged in a side table so leaf .grad accumulation semantics
        # (+=) stay intact across repeated backward() calls.
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Interior node: push to parents via the op's closure.  The
            # closure accumulates into a temp dict through _receive.
            node._push(node_grad, grads)

        # Any remaining staged grads belong to leaves reached but not popped
        # (cannot happen given the loop above, kept for safety).
        for node in topo:
            leftover = grads.pop(id(node), None)
            if leftover is not None:
                node._accumulate(leftover)

    def _push(self, out_grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Run this op's backward closure, staging parent grads in ``grads``."""
        contributions = self._backward(out_grad)
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None or not parent.requires_grad:
                continue
            key = id(parent)
            if parent._backward is None:
                # Leaf: accumulate directly into .grad.
                parent._accumulate(contribution)
            elif key in grads:
                grads[key] = grads[key] + contribution
            else:
                grads[key] = contribution

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = ensure_tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other_t.shape),
            )

        return Tensor._make(data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = ensure_tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(-grad, other_t.shape),
            )

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = ensure_tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * other_t.data, self.shape),
                _unbroadcast(grad * self.data, other_t.shape),
            )

        return Tensor._make(data, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = ensure_tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / other_t.data, self.shape),
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape),
            )

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data ** exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    # Comparisons yield plain boolean arrays (non-differentiable).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = ensure_tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray):
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                grad_a = grad * b
                grad_b = grad * a
            elif a.ndim == 1 and b.ndim == 2:
                # (k,) @ (k, n) -> (n,)
                grad_a = b @ grad
                grad_b = np.outer(a, grad)
            elif a.ndim == 2 and b.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                grad_a = np.outer(grad, b)
                grad_b = a.T @ grad
            elif a.ndim >= 2 and b.ndim >= 2:
                grad_a = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
                grad_b = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
            else:
                raise NotImplementedError(
                    f"matmul backward for shapes {a.shape} @ {b.shape}"
                )
            return grad_a, grad_b

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise ``e**x``."""
        data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        data = np.log(self.data)

        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / data,)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient sign(x))."""
        data = np.abs(self.data)

        def backward(grad: np.ndarray):
            return (grad * np.sign(self.data),)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - data ** 2),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise ``max(x, 0)``."""
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is zero outside [low, high] (hard clip)."""
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        # The bounds are not closure freevars of ``backward``; the
        # execution plan needs them to rebuild the forward kernel.
        backward._plan_consts = (low, high)
        return Tensor._make(data, (self,), backward)

    def maximum(self, other: ArrayLike) -> "Tensor":
        """Elementwise maximum; ties route gradient to ``self``."""
        other_t = ensure_tensor(other)
        data = np.maximum(self.data, other_t.data)
        take_self = self.data >= other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * take_self, self.shape),
                _unbroadcast(grad * ~take_self, other_t.shape),
            )

        return Tensor._make(data, (self, other_t), backward)

    def minimum(self, other: ArrayLike) -> "Tensor":
        """Elementwise minimum; ties route gradient to ``self``."""
        other_t = ensure_tensor(other)
        data = np.minimum(self.data, other_t.data)
        take_self = self.data <= other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * take_self, self.shape),
                _unbroadcast(grad * ~take_self, other_t.shape),
            )

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when None)."""
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            if axis is None:
                return (np.broadcast_to(grad, self.shape).copy(),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient splits equally across ties."""
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                d = np.expand_dims(d, axis=axis)
            mask = self.data == d
            # Split gradient equally across ties, matching numpy semantics
            # closely enough for optimization purposes.
            counts = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            return (np.where(mask, g / counts, 0.0),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """View with a new shape (same number of elements)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray):
            return (grad.reshape(self.shape),)

        return Tensor._make(data, (self,), backward)

    def flatten(self) -> "Tensor":
        """Reshape to one dimension."""
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (reverses them when none are given)."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            # Generic gather backward: `index` may repeat elements, and
            # np.add.at is the only scatter that accumulates duplicates.
            # This is correctness machinery for arbitrary __getitem__,
            # not a planned conv/pool hot path (those use _KernelPlan).
            np.add.at(full, index, grad)  # reprolint: disable=RPL010
            return (full,)

        return Tensor._make(data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the trailing two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        # Zero-fill + interior slice assignment instead of np.pad: same
        # bytes, a fraction of the overhead (np.pad builds per-axis pad
        # tuples and round-trips through a generic n-d path every call).
        shape = self.shape[:-2] + (
            self.shape[-2] + 2 * padding,
            self.shape[-1] + 2 * padding,
        )
        data = np.zeros(shape, dtype=self.data.dtype)
        data[..., padding:-padding, padding:-padding] = self.data

        def backward(grad: np.ndarray):
            slices = tuple(
                slice(None) for __ in range(self.ndim - 2)
            ) + (slice(padding, -padding), slice(padding, -padding))
            return (grad[slices],)

        return Tensor._make(data, (self,), backward)


def ensure_tensor(value: ArrayLike) -> Tensor:
    """Return ``value`` as a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        pieces = []
        for i in range(len(tensors)):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(grad[tuple(index)])
        return tuple(pieces)

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        moved = np.moveaxis(grad, axis, 0)
        return tuple(moved[i] for i in range(len(tensors)))

    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable select; ``condition`` is a plain boolean array."""
    a_t, b_t = ensure_tensor(a), ensure_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a_t.data, b_t.data)

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(np.where(condition, grad, 0.0), a_t.shape),
            _unbroadcast(np.where(condition, 0.0, grad), b_t.shape),
        )

    return Tensor._make(data, (a_t, b_t), backward)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
