"""A from-scratch numpy neural-network framework.

This package is the reproduction's substitute for PyTorch: reverse-mode
autodiff (:mod:`repro.nn.tensor`), layers (:mod:`repro.nn.modules`),
functional ops including convolution (:mod:`repro.nn.functional`),
optimizers (:mod:`repro.nn.optim`), policy distributions
(:mod:`repro.nn.distributions`) and checkpointing
(:mod:`repro.nn.serialization`).
"""

from . import functional
from . import init
from .arena import (
    Arena,
    alloc_stats,
    is_arena_backed,
    note_alloc,
    reset_alloc_stats,
)
from .distributions import Bernoulli, Categorical
from .executor import (
    ExecutionPlan,
    ForwardPlanner,
    Planner,
    PlanUnsupported,
    fast_path_allowed,
    register_stable_array,
)
from .modules import (
    ChannelLayerNorm,
    Dropout,
    Conv2d,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import (
    SGD,
    Adam,
    Optimizer,
    RMSprop,
    clip_grad_norm,
    flatten_gradients,
    global_grad_norm,
    unflatten_vector,
)
from .schedulers import CosineDecay, LinearDecay, Scheduler, StepDecay
from .serialization import load_module, load_state_dict_file, save_module
from .tensor import (
    Tensor,
    concat,
    ensure_tensor,
    is_grad_enabled,
    no_grad,
    ones,
    stack,
    where,
    zeros,
)

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "where",
    "zeros",
    "ones",
    "ensure_tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "init",
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "LayerNorm",
    "ChannelLayerNorm",
    "Embedding",
    "Sequential",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "clip_grad_norm",
    "global_grad_norm",
    "flatten_gradients",
    "unflatten_vector",
    "Scheduler",
    "LinearDecay",
    "StepDecay",
    "CosineDecay",
    "Categorical",
    "Bernoulli",
    "save_module",
    "load_module",
    "load_state_dict_file",
    "Arena",
    "alloc_stats",
    "is_arena_backed",
    "note_alloc",
    "reset_alloc_stats",
    "ExecutionPlan",
    "ForwardPlanner",
    "Planner",
    "PlanUnsupported",
    "fast_path_allowed",
    "register_stable_array",
]
