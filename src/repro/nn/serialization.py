"""Model checkpointing for :mod:`repro.nn`.

Checkpoints are ``.npz`` archives of the module's state dict.  The paper's
training process "periodically saves the parameters in DNNs for testing"
(Section VI-D); these helpers implement that save/restore cycle.
"""

from __future__ import annotations

import os
from typing import Dict, Union

import numpy as np

from .modules import Module

__all__ = ["save_module", "load_module", "load_state_dict_file"]

PathLike = Union[str, os.PathLike]


def save_module(module: Module, path: PathLike) -> None:
    """Write ``module``'s parameters to an ``.npz`` archive at ``path``."""
    state = module.state_dict()
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    # Dotted parameter paths are legal npz keys as-is.
    np.savez(path, **state)


def load_state_dict_file(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_module`."""
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def load_module(module: Module, path: PathLike) -> Module:
    """Restore ``module``'s parameters in place from ``path`` and return it."""
    module.load_state_dict(load_state_dict_file(path))
    return module
