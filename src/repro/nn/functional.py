"""Differentiable neural-network operations built on :class:`repro.nn.Tensor`.

These are the functional counterparts of the layers in
:mod:`repro.nn.modules`: convolution, pooling, normalization, activations
and the standard losses used by the paper's PPO and curiosity models.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, ensure_tensor, where

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "linear",
    "softplus",
    "layer_norm",
    "relu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "mse_loss",
    "smooth_l1_loss",
    "cross_entropy",
    "entropy_from_logits",
    "one_hot",
    "dropout",
]


# ---------------------------------------------------------------------------
# im2col machinery for convolution
# ---------------------------------------------------------------------------
def _im2col_indices(
    x_shape: Tuple[int, int, int, int], kernel: int, stride: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index arrays that gather (C*K*K, out_h*out_w) patches per sample."""
    __, channels, height, width = x_shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1

    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel * kernel).reshape(-1, 1)
    return k, i, j


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation over a (N, C, H, W) input.

    ``weight`` has shape (out_channels, in_channels, K, K).  Implemented with
    im2col so the heavy lifting is a single matmul in both directions.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects a 4-D (N, C, H, W) input, got {x.shape}")
    out_channels, in_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )

    x_padded = x.pad2d(padding)
    batch, __, height, width = x_padded.shape
    if height < kernel or width < kernel:
        raise ValueError(
            f"spatial size {(height, width)} smaller than kernel {kernel}"
        )
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1

    k_idx, i_idx, j_idx = _im2col_indices(x_padded.shape, kernel, stride)
    x_data = x_padded.data

    # cols: (N, C*K*K, out_h*out_w)
    cols = x_data[:, k_idx, i_idx, j_idx]
    w_flat = weight.data.reshape(out_channels, -1)

    out_data = np.einsum("ok,nkp->nop", w_flat, cols)
    out_data = out_data.reshape(batch, out_channels, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    parents = (x_padded, weight) if bias is None else (x_padded, weight, bias)

    def backward(grad: np.ndarray):
        # grad: (N, O, out_h, out_w) -> (N, O, P)
        grad_flat = grad.reshape(batch, out_channels, -1)
        grad_w = np.einsum("nop,nkp->ok", grad_flat, cols).reshape(weight.shape)
        grad_cols = np.einsum("ok,nop->nkp", w_flat, grad_flat)
        grad_x = np.zeros_like(x_data)
        # Scatter-add each column patch back into the input.
        np.add.at(
            grad_x,
            (slice(None), k_idx, i_idx, j_idx),
            grad_cols,
        )
        if bias is None:
            return grad_x, grad_w
        grad_b = grad.sum(axis=(0, 2, 3))
        return grad_x, grad_w, grad_b

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows of a 4-D input."""
    stride = stride or kernel
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    k_idx, i_idx, j_idx = _im2col_indices(x.shape, kernel, stride)

    cols = x.data[:, k_idx, i_idx, j_idx]  # (N, C*K*K, P)
    cols = cols.reshape(batch, channels, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out_data = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2)
    out_data = out_data.reshape(batch, channels, out_h, out_w)

    def backward(grad: np.ndarray):
        grad_cols = np.zeros(
            (batch, channels, kernel * kernel, out_h * out_w), dtype=grad.dtype
        )
        np.put_along_axis(
            grad_cols,
            argmax[:, :, None, :],
            grad.reshape(batch, channels, 1, -1),
            axis=2,
        )
        grad_cols = grad_cols.reshape(batch, channels * kernel * kernel, -1)
        grad_x = np.zeros_like(x.data)
        np.add.at(grad_x, (slice(None), k_idx, i_idx, j_idx), grad_cols)
        return (grad_x,)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over windows of a 4-D input."""
    stride = stride or kernel
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    k_idx, i_idx, j_idx = _im2col_indices(x.shape, kernel, stride)
    window = kernel * kernel

    cols = x.data[:, k_idx, i_idx, j_idx]
    cols = cols.reshape(batch, channels, window, out_h * out_w)
    out_data = cols.mean(axis=2).reshape(batch, channels, out_h, out_w)

    def backward(grad: np.ndarray):
        grad_cols = np.repeat(
            grad.reshape(batch, channels, 1, -1) / window, window, axis=2
        )
        grad_cols = grad_cols.reshape(batch, channels * window, -1)
        grad_x = np.zeros_like(x.data)
        np.add.at(grad_x, (slice(None), k_idx, i_idx, j_idx), grad_cols)
        return (grad_x,)

    return Tensor._make(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Dense / normalization / activations
# ---------------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def layer_norm(
    x: Tensor,
    weight: Optional[Tensor] = None,
    bias: Optional[Tensor] = None,
    eps: float = 1e-5,
) -> Tensor:
    """Layer normalization over the last dimension."""
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalized = (x - mu) / (var + eps).sqrt()
    if weight is not None:
        normalized = normalized * weight
    if bias is not None:
        normalized = normalized + bias
    return normalized


def softplus(x: Tensor) -> Tensor:
    """``log(1 + exp(x))`` with the exact gradient ``sigmoid(x)``.

    Computed via ``logaddexp`` for stability; a primitive op (rather than a
    ``maximum``-based composition) so the gradient is smooth at 0, where
    freshly initialized policy logits live.
    """
    data = np.logaddexp(0.0, x.data)
    # exp may overflow to inf for very negative inputs; 1/(1+inf) = 0 is
    # exactly the right limit, so only the warning needs suppressing.
    with np.errstate(over="ignore"):
        sig = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray):
        return (grad * sig,)

    return Tensor._make(data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------
def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error; the target is detached from the graph."""
    target = ensure_tensor(target).detach()
    diff = prediction - target
    return (diff * diff).mean()


def smooth_l1_loss(prediction: Tensor, target: Tensor, beta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``beta``, linear outside."""
    target = ensure_tensor(target).detach()
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear_part = abs_diff - 0.5 * beta
    return where(abs_diff.data < beta, quadratic, linear_part).mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy from raw logits against integer class targets."""
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    rows = np.arange(logp.shape[0])
    picked = logp[rows, targets]
    return -picked.mean()


def entropy_from_logits(logits: Tensor, axis: int = -1) -> Tensor:
    """Shannon entropy of the categorical distribution given by ``logits``."""
    logp = log_softmax(logits, axis=axis)
    p = softmax(logits, axis=axis)
    return -(p * logp).sum(axis=axis)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer array along a new trailing axis."""
    indices = np.asarray(indices, dtype=np.int64)
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    if np.any(indices < 0) or np.any(indices >= num_classes):
        raise IndexError(
            f"indices out of range [0, {num_classes}): "
            f"min={indices.min()}, max={indices.max()}"
        )
    out = np.zeros(indices.shape + (num_classes,))
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def dropout(
    x: Tensor, p: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Inverted dropout: zero each element with probability ``p``.

    Surviving elements are scaled by ``1/(1-p)`` so the expectation is
    unchanged; a no-op when ``training`` is False or ``p == 0``.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray):
        return (grad * keep,)

    return Tensor._make(x.data * keep, (x,), backward)
