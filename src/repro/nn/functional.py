"""Differentiable neural-network operations built on :class:`repro.nn.Tensor`.

These are the functional counterparts of the layers in
:mod:`repro.nn.modules`: convolution, pooling, normalization, activations
and the standard losses used by the paper's PPO and curiosity models.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, _unbroadcast, ensure_tensor, where

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "linear",
    "softplus",
    "layer_norm",
    "channel_layer_norm",
    "relu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "mse_loss",
    "smooth_l1_loss",
    "cross_entropy",
    "entropy_from_logits",
    "one_hot",
    "dropout",
]


# ---------------------------------------------------------------------------
# im2col machinery for convolution: cached kernel plans
# ---------------------------------------------------------------------------
class _KernelPlan:
    """Everything shape-dependent about one (C, H, W, K, stride) im2col.

    Historically every ``conv2d``/``max_pool2d``/``avg_pool2d`` call built
    three fancy-index arrays (``np.repeat``/``np.tile``/``np.arange``) and
    scattered gradients back with ``np.add.at`` — both dominated the op's
    runtime at the paper's 8×8-grid scale.  A plan replaces them with:

    * :meth:`gather` — a zero-copy ``sliding_window_view`` over the padded
      input, strided, then transposed into the same ``(N, C*K*K, P)``
      column layout (row ``c*K² + ki*K + kj``, column ``oh*out_w + ow``)
      the index gather produced.  One subtlety makes this *layout*- and
      not just *value*-faithful: numpy's mixed slice/advanced indexing
      materializes the advanced dims first, so the legacy ``cols`` was a
      non-contiguous ``(N, R, P)`` view over an ``(R, P, N)`` buffer —
      and a contraction kernel's inner-loop specialization (hence its
      floating-point accumulation order) can depend on the operand
      strides.  ``gather`` therefore copies into an ``(R, P, N)`` base
      and returns the same ``moveaxis`` view, so the downstream
      contractions see one frozen operand layout;
    * :meth:`scatter_add` — col2im as ``K²`` strided-slice ``+=`` ops,
      one per kernel offset, iterated in ``(ki, kj)`` row-major order.
      ``np.add.at`` accumulates duplicate targets in index order, which
      for the im2col index arrays is exactly ``(ki, kj)`` row-major per
      output cell — so the per-cell floating-point accumulation order
      (and therefore every gradient bit) is preserved.

    Plans are immutable and cached per shape key; construction allocates
    only a tuple of slice pairs.
    """

    __slots__ = ("channels", "kernel", "stride", "out_h", "out_w", "offsets")

    def __init__(self, channels: int, height: int, width: int, kernel: int, stride: int):
        self.channels = channels
        self.kernel = kernel
        self.stride = stride
        self.out_h = (height - kernel) // stride + 1
        self.out_w = (width - kernel) // stride + 1
        self.offsets = tuple(
            (
                ki,
                kj,
                slice(ki, ki + stride * self.out_h, stride),
                slice(kj, kj + stride * self.out_w, stride),
            )
            for ki in range(kernel)
            for kj in range(kernel)
        )

    def gather(self, x_data: np.ndarray) -> np.ndarray:
        """im2col: (N, C, H, W) -> (N, C*K*K, out_h*out_w) columns.

        Returns the legacy layout: an ``(R, P, N)``-contiguous buffer
        viewed as ``(N, R, P)``, matching what fancy indexing produced
        (see the class docstring for why the strides matter).
        """
        kernel = self.kernel
        windows = np.lib.stride_tricks.sliding_window_view(
            x_data, (kernel, kernel), axis=(2, 3)
        )[:, :, :: self.stride, :: self.stride]
        # (N, C, oh, ow, ki, kj) -> (C, ki, kj, oh, ow, N); .copy() is the
        # single copy in the whole gather (an explicit copy, not reshape's
        # implicit one, so degenerate 1x1-output shapes cannot silently
        # stay zero-copy views with alien strides).
        base = windows.transpose(1, 4, 5, 2, 3, 0).copy().reshape(
            self.channels * kernel * kernel,
            self.out_h * self.out_w,
            x_data.shape[0],
        )
        return np.moveaxis(base, 2, 0)

    def scatter_add(self, grad_cols: np.ndarray, x_data: np.ndarray) -> np.ndarray:
        """col2im: accumulate (N, C*K*K, P) columns back onto the input grid."""
        grad_x = np.zeros_like(x_data)
        windows = grad_cols.reshape(
            grad_cols.shape[0],
            self.channels,
            self.kernel,
            self.kernel,
            self.out_h,
            self.out_w,
        )
        for ki, kj, rows, cols in self.offsets:
            grad_x[:, :, rows, cols] += windows[:, :, ki, kj]
        return grad_x


_PLAN_CACHE: dict = {}
_PLAN_CACHE_MAX = 256  # plans are tiny; the cap only guards pathological sweeps


def _plan_for(
    x_shape: Tuple[int, int, int, int], kernel: int, stride: int
) -> _KernelPlan:
    """Memoized :class:`_KernelPlan` for a padded-input shape.

    Keyed on everything the plan depends on (the batch size is not part
    of the plan).  Reads/writes on the dict are atomic under the GIL, so
    concurrent employee threads at worst build a duplicate plan.
    """
    __, channels, height, width = x_shape
    key = (channels, height, width, kernel, stride)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.clear()
        plan = _KernelPlan(channels, height, width, kernel, stride)
        _PLAN_CACHE[key] = plan
    return plan


def _conv_forward_contract(
    w_flat: np.ndarray, cols: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Forward contraction ``(O, R) x (N, R, P) -> (N, O, P)``.

    These three contraction kernels are the frozen floating-point
    identity of ``conv2d``: the execution-plan replay
    (:mod:`repro.nn.executor`) calls the same functions on the same
    operand layouts, which is what keeps the fast path bit-identical to
    the tape.  ``matmul``/``tensordot`` route through BLAS; the legacy
    ``einsum`` spellings ran the contractions in numpy's own inner loop
    at roughly half the throughput (this re-freeze changed the low-order
    bits once, version-to-version — run-vs-run equivalence across
    backends, instruments and fast/slow paths is unaffected because
    every path shares these kernels).
    """
    return np.matmul(w_flat, cols, out=out)


def _conv_grad_weight(grad_flat: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Weight-gradient contraction ``(N, O, P) x (N, R, P) -> (O, R)``."""
    return np.tensordot(grad_flat, cols, axes=([0, 2], [0, 2]))


def _conv_grad_cols(
    w_flat: np.ndarray, grad_flat: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Column-gradient contraction ``(R, O) x (N, O, P) -> (N, R, P)``."""
    return np.matmul(w_flat.T, grad_flat, out=out)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation over a (N, C, H, W) input.

    ``weight`` has shape (out_channels, in_channels, K, K).  Implemented with
    im2col so the heavy lifting is a single matmul in both directions.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects a 4-D (N, C, H, W) input, got {x.shape}")
    out_channels, in_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )

    x_padded = x.pad2d(padding)
    batch, __, height, width = x_padded.shape
    if height < kernel or width < kernel:
        raise ValueError(
            f"spatial size {(height, width)} smaller than kernel {kernel}"
        )
    plan = _plan_for(x_padded.shape, kernel, stride)
    out_h, out_w = plan.out_h, plan.out_w
    x_data = x_padded.data

    # cols: (N, C*K*K, out_h*out_w), gathered via the cached plan.
    cols = plan.gather(x_data)
    w_flat = weight.data.reshape(out_channels, -1)

    out_data = _conv_forward_contract(w_flat, cols)
    out_data = out_data.reshape(batch, out_channels, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    parents = (x_padded, weight) if bias is None else (x_padded, weight, bias)

    def backward(grad: np.ndarray):
        # grad: (N, O, out_h, out_w) -> (N, O, P)
        grad_flat = grad.reshape(batch, out_channels, -1)
        grad_w = _conv_grad_weight(grad_flat, cols).reshape(weight.shape)
        grad_cols = _conv_grad_cols(w_flat, grad_flat)
        # col2im via order-preserving strided adds (see _KernelPlan).
        grad_x = plan.scatter_add(grad_cols, x_data)
        if bias is None:
            return grad_x, grad_w
        grad_b = grad.sum(axis=(0, 2, 3))
        return grad_x, grad_w, grad_b

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows of a 4-D input."""
    stride = stride or kernel
    batch, channels, height, width = x.shape
    plan = _plan_for(x.shape, kernel, stride)
    out_h, out_w = plan.out_h, plan.out_w

    cols = plan.gather(x.data)  # (N, C*K*K, P)
    cols = cols.reshape(batch, channels, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out_data = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2)
    out_data = out_data.reshape(batch, channels, out_h, out_w)

    def backward(grad: np.ndarray):
        grad_cols = np.zeros(
            (batch, channels, kernel * kernel, out_h * out_w), dtype=grad.dtype
        )
        np.put_along_axis(
            grad_cols,
            argmax[:, :, None, :],
            grad.reshape(batch, channels, 1, -1),
            axis=2,
        )
        grad_cols = grad_cols.reshape(batch, channels * kernel * kernel, -1)
        return (plan.scatter_add(grad_cols, x.data),)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over windows of a 4-D input."""
    stride = stride or kernel
    batch, channels, height, width = x.shape
    plan = _plan_for(x.shape, kernel, stride)
    out_h, out_w = plan.out_h, plan.out_w
    window = kernel * kernel

    cols = plan.gather(x.data)
    cols = cols.reshape(batch, channels, window, out_h * out_w)
    out_data = cols.mean(axis=2).reshape(batch, channels, out_h, out_w)

    def backward(grad: np.ndarray):
        # Every window slot receives grad/K²; instead of materializing the
        # K²-fold np.repeat the old col2im needed, add the scaled grad once
        # per kernel offset — identical per-cell accumulation order.
        scaled = grad / window
        grad_x = np.zeros_like(x.data)
        for __, __, rows, cols_ in plan.offsets:
            grad_x[:, :, rows, cols_] += scaled
        return (grad_x,)

    return Tensor._make(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Dense / normalization / activations
# ---------------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def layer_norm(
    x: Tensor,
    weight: Optional[Tensor] = None,
    bias: Optional[Tensor] = None,
    eps: float = 1e-5,
) -> Tensor:
    """Layer normalization over the last dimension."""
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalized = (x - mu) / (var + eps).sqrt()
    if weight is not None:
        normalized = normalized * weight
    if bias is not None:
        normalized = normalized + bias
    return normalized


def channel_layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Fused layer norm over (C, H, W) of an (N, C, H, W) map.

    Fuses the twelve-node composition ``ChannelLayerNorm.forward``
    historically built on the tape — flatten, mean, var (which recomputes
    the mean), center, divide, un-flatten, per-channel affine — into one
    tape node with raw numpy inside.  At the paper's 8×8-grid scale those
    twelve nodes were almost entirely per-op Python/tape overhead: the
    arrays are small, so the composition cost ~35%% of a taped policy
    forward while doing ~10 flops per element.

    The contract is the same as the fused softmax family's: *bitwise*
    equivalence, forward and backward.  Forward replays the composed
    graph's exact numpy op sequence (the variance path's duplicate mean
    and the ``flat - mu`` recomputation share bits with the primary ones,
    so each is computed once).  Backward replays every composed op's
    gradient — including ``sq = c * c`` contributing twice through the
    tape's staging dict — and folds the four contributions to the
    flattened input in the tape's reverse-topological staging order
    ``((g_fm + g_s1) + g_c) + g_s2``, which is what the composed graph's
    ``grads[id(flat)] = grads[id(flat)] + contribution`` updates produce.
    FP addition commutes (only associativity fails), so the order within
    each pairwise add is immaterial; the *grouping* is not.
    """
    if x.ndim != 4:
        raise ValueError(f"channel_layer_norm expects 4-D input, got {x.shape}")
    batch, channels = x.shape[0], x.shape[1]
    flat = x.data.reshape(batch, -1)
    n = flat.shape[-1]
    inv = 1.0 / n
    mu = flat.sum(axis=-1, keepdims=True) * inv
    c = flat - mu
    sq = c * c
    var = sq.sum(axis=-1, keepdims=True) * inv
    sd = np.sqrt(var + eps)
    nrm = c / sd
    w_r = weight.data.reshape(1, channels, 1, 1)
    nr = nrm.reshape(x.shape)
    data = nr * w_r + bias.data.reshape(1, channels, 1, 1)

    def backward(grad: np.ndarray):
        # out = prod + b_r; b_r = bias.reshape(1, C, 1, 1)
        g_bias = _unbroadcast(grad, (1, channels, 1, 1)).reshape(bias.shape)
        # prod = nr * w_r; w_r = weight.reshape(1, C, 1, 1)
        g_nr = grad * w_r
        g_weight = _unbroadcast(grad * nr, (1, channels, 1, 1)).reshape(weight.shape)
        # nr = nrm.reshape(x.shape)
        g_nrm = g_nr.reshape(batch, n)
        # nrm = fm / sd  (fm shares bits with c)
        g_fm = g_nrm / sd
        g_sd = _unbroadcast(-g_nrm * c / (sd ** 2), sd.shape)
        # sd = ve.sqrt(); ve = var + eps (scalar add: gradient passes through)
        g_var = g_sd * 0.5 / sd
        # var = s3 * (1/n); s3 = sq.sum(keepdims)
        g_sq = np.broadcast_to(g_var * np.asarray(inv), sq.shape).copy()
        # sq = c * c: the tape stages two identical contributions and adds
        # them pairwise (not 2*t — the grouping is part of the contract).
        t1 = g_sq * c
        t2 = g_sq * c
        g_c = t1 + t2
        # c = flat - mu2; mu2 = s2 * (1/n); s2 = flat.sum(keepdims)
        g_mu2 = _unbroadcast(-g_c, mu.shape)
        contrib_s2 = np.broadcast_to(g_mu2 * np.asarray(inv), flat.shape).copy()
        # fm = flat - mu; mu = s1 * (1/n); s1 = flat.sum(keepdims)
        g_mu = _unbroadcast(-g_fm, mu.shape)
        contrib_s1 = np.broadcast_to(g_mu * np.asarray(inv), flat.shape).copy()
        # Tape staging order for the flattened input's four children.
        g_flat = ((g_fm + contrib_s1) + g_c) + contrib_s2
        return (g_flat.reshape(x.shape), g_weight, g_bias)

    # eps is not a closure freevar of ``backward``; the execution plan
    # needs it to rebuild the forward kernel.
    backward._plan_consts = (eps,)
    return Tensor._make(data, (x, weight, bias), backward)


def softplus(x: Tensor) -> Tensor:
    """``log(1 + exp(x))`` with the exact gradient ``sigmoid(x)``.

    Computed via ``logaddexp`` for stability; a primitive op (rather than a
    ``maximum``-based composition) so the gradient is smooth at 0, where
    freshly initialized policy logits live.
    """
    data = np.logaddexp(0.0, x.data)
    # exp may overflow to inf for very negative inputs; 1/(1+inf) = 0 is
    # exactly the right limit, so only the warning needs suppressing.
    with np.errstate(over="ignore"):
        sig = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray):
        return (grad * sig,)

    return Tensor._make(data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def _shifted_exp(
    x_data: np.ndarray, axis: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One max-shifted exponential pass shared by the softmax family.

    Returns ``(shifted, e, s)`` with ``shifted = x - max(x)``,
    ``e = exp(shifted)`` and ``s = Σe`` — computed exactly as the
    historical tensor-op compositions did — so ``softmax``,
    ``log_softmax`` and ``entropy_from_logits`` each run a single pass
    over the logits instead of re-deriving the shift per call.
    """
    shifted = x_data - x_data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return shifted, e, e.sum(axis=axis, keepdims=True)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (fused primitive).

    The backward closure replays, operation for operation, the gradient
    the old ``exp / exp.sum()`` tensor composition produced — same
    intermediate arrays, same accumulation order — so fusing is bitwise
    invisible to training.
    """
    __, e, s = _shifted_exp(x.data, axis)
    out_data = e / s

    def backward(grad: np.ndarray):
        # Composition replay: div pushes grad/s into e and the quotient
        # term into s; s's sum-backward broadcasts back over e; exp scales
        # by e.  Staged additions happen in exactly this order.
        a = grad / s
        v = (-grad * e) / (s ** 2)
        c = np.broadcast_to(v.sum(axis=axis, keepdims=True), e.shape).copy()
        return ((a + c) * e,)

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis`` (fused primitive).

    Shares the shifted-exp pass with :func:`softmax` and uses the
    closed-form backward ``grad + softmax(x) * Σ(-grad)`` sequenced to
    match the historical ``shifted - log(Σ exp)`` composition bitwise.
    """
    shifted, e, s = _shifted_exp(x.data, axis)
    out_data = shifted - np.log(s)

    def backward(grad: np.ndarray):
        gl = (-grad).sum(axis=axis, keepdims=True)
        t = np.broadcast_to(gl / s, e.shape).copy()
        return (grad + t * e,)

    return Tensor._make(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------
def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error; the target is detached from the graph."""
    target = ensure_tensor(target).detach()
    diff = prediction - target
    return (diff * diff).mean()


def smooth_l1_loss(prediction: Tensor, target: Tensor, beta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``beta``, linear outside."""
    target = ensure_tensor(target).detach()
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear_part = abs_diff - 0.5 * beta
    return where(abs_diff.data < beta, quadratic, linear_part).mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy from raw logits against integer class targets."""
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    # Not a planned hot op: cross_entropy only backs the ICM baseline's
    # inverse-model loss (one small (B, 9) batch per update), never the
    # conv/pool paths, so a per-call row index is fine here.
    rows = np.arange(logp.shape[0])  # reprolint: disable=RPL010
    picked = logp[rows, targets]
    return -picked.mean()


def entropy_from_logits(logits: Tensor, axis: int = -1) -> Tensor:
    """Shannon entropy of the categorical distribution given by ``logits``.

    Fused: the historical ``-(softmax * log_softmax).sum()`` composition
    ran the max/exp/sum reduction four times per call; this primitive
    runs it once and shares ``e``/``s`` between both factors.  The
    backward replays the composed graph's gradient bit for bit.  The
    old tape attached *two* children to ``logits`` (the softmax shift
    and the log-softmax shift) whose contributions were staged as
    separate floating-point additions — and when the PPO loss also
    consumes the same logits through ``log_prob``, that grouping is
    visible in the final bits: ``(c_lp + c_soft) + c_logsoft`` is not
    ``c_lp + (c_soft + c_logsoft)``.  Registering ``logits`` as a parent
    twice and returning the branch gradients separately reproduces the
    exact staging order of the composition.
    """
    shifted, e, s = _shifted_exp(logits.data, axis)
    logp = shifted - np.log(s)
    p = e / s
    out_data = -(p * logp).sum(axis=axis)

    def backward(grad: np.ndarray):
        gmul = np.broadcast_to(
            np.expand_dims(-grad, axis=axis), p.shape
        ).copy()
        a_p = gmul * logp  # grad into the softmax factor
        g_logp = gmul * p  # grad into the log-softmax factor
        # softmax branch (staged first by the composed tape).
        a2 = a_p / s
        v2 = (-a_p * e) / (s ** 2)
        c2 = np.broadcast_to(v2.sum(axis=axis, keepdims=True), e.shape).copy()
        gx2 = (a2 + c2) * e
        # log-softmax branch (staged second).
        gl1 = (-g_logp).sum(axis=axis, keepdims=True)
        t1 = np.broadcast_to(gl1 / s, e.shape).copy()
        gx1 = g_logp + t1 * e
        return (gx2, gx1)

    return Tensor._make(out_data, (logits, logits), backward)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer array along a new trailing axis."""
    indices = np.asarray(indices, dtype=np.int64)
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    if np.any(indices < 0) or np.any(indices >= num_classes):
        raise IndexError(
            f"indices out of range [0, {num_classes}): "
            f"min={indices.min()}, max={indices.max()}"
        )
    out = np.zeros(indices.shape + (num_classes,))
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def dropout(
    x: Tensor, p: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Inverted dropout: zero each element with probability ``p``.

    Surviving elements are scaled by ``1/(1-p)`` so the expectation is
    unchanged; a no-op when ``training`` is False or ``p == 0``.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray):
        return (grad * keep,)

    return Tensor._make(x.data * keep, (x,), backward)
