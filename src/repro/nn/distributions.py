"""Probability distributions for stochastic policies.

The DRL-CEWS policy head emits a categorical distribution over discrete
route-planning moves and a Bernoulli over the charge decision (Section V).
Both are parameterized by raw logits and provide the differentiable
``log_prob`` and ``entropy`` terms PPO's surrogate objective needs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .executor import register_stable_array
from .tensor import Tensor

__all__ = ["Categorical", "Bernoulli"]

# Row-index arrays for the log_prob gather, cached per batch length.  The
# PPO update calls log_prob once per minibatch per epoch with a handful of
# distinct batch sizes, so rebuilding np.arange every call is pure waste.
# The arrays are only ever read (used as a fancy index), never written.
_ROW_INDEX_CACHE: dict = {}
_ROW_INDEX_CACHE_MAX = 64


def _plan_rows(n: int) -> np.ndarray:
    """Memoized ``np.arange(n)`` (int64) for gather row indices."""
    rows = _ROW_INDEX_CACHE.get(n)
    if rows is None:
        if len(_ROW_INDEX_CACHE) >= _ROW_INDEX_CACHE_MAX:
            _ROW_INDEX_CACHE.clear()
        # Registered stable so execution plans may bake the array by
        # reference: it is immutable and keyed only by the batch length.
        rows = register_stable_array(np.arange(n))
        _ROW_INDEX_CACHE[n] = rows
    return rows


class Categorical:
    """Categorical distribution over the last axis of ``logits``.

    Parameters
    ----------
    logits:
        Tensor of shape (..., num_actions).  Rows need not be normalized.
    """

    def __init__(self, logits: Tensor):
        self.logits = logits
        self._log_probs = F.log_softmax(logits, axis=-1)

    @property
    def num_actions(self) -> int:
        return self.logits.shape[-1]

    def probs(self) -> np.ndarray:
        """Probabilities as a plain array (detached)."""
        return np.exp(self._log_probs.data)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw integer actions with the Gumbel-max trick (vectorized)."""
        gumbel = rng.gumbel(size=self.logits.shape)
        return np.argmax(self.logits.data + gumbel, axis=-1)

    def mode(self) -> np.ndarray:
        """Greedy (most likely) actions — used at evaluation time."""
        return np.argmax(self.logits.data, axis=-1)

    def log_prob(self, actions: np.ndarray) -> Tensor:
        """Log probability of ``actions``, differentiable w.r.t. logits."""
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != self.logits.shape[:-1]:
            raise ValueError(
                f"actions shape {actions.shape} does not match batch shape "
                f"{self.logits.shape[:-1]}"
            )
        flat_logp = self._log_probs.reshape(-1, self.num_actions)
        rows = _plan_rows(flat_logp.shape[0])
        picked = flat_logp[rows, actions.reshape(-1)]
        return picked.reshape(actions.shape) if actions.shape else picked

    def entropy(self) -> Tensor:
        """Shannon entropy per batch element."""
        return F.entropy_from_logits(self.logits, axis=-1)

    def kl_divergence(self, other: "Categorical") -> Tensor:
        """KL(self || other) per batch element."""
        p = F.softmax(self.logits, axis=-1)
        return (p * (self._log_probs - other._log_probs)).sum(axis=-1)


class Bernoulli:
    """Bernoulli distribution parameterized by a single logit per element."""

    def __init__(self, logits: Tensor):
        self.logits = logits

    def probs(self) -> np.ndarray:
        """P(outcome = 1) per element (detached)."""
        return 1.0 / (1.0 + np.exp(-self.logits.data))

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw 0/1 outcomes."""
        return (rng.random(self.logits.shape) < self.probs()).astype(np.int64)

    def mode(self) -> np.ndarray:
        """Most likely outcome per element."""
        return (self.logits.data > 0).astype(np.int64)

    def log_prob(self, outcomes: np.ndarray) -> Tensor:
        """Log P(outcomes); uses the numerically stable softplus form."""
        outcomes = np.asarray(outcomes, dtype=np.float64)
        if outcomes.shape != self.logits.shape:
            raise ValueError(
                f"outcomes shape {outcomes.shape} does not match logits shape "
                f"{self.logits.shape}"
            )
        # log p = x*z - softplus(z), softplus computed stably with the
        # exact smooth gradient (sigmoid).
        z = self.logits
        return z * Tensor(outcomes) - F.softplus(z)

    def entropy(self) -> Tensor:
        """Shannon entropy per element, differentiable w.r.t. logits."""
        # p is treated as a constant (same formula the tape always used);
        # spelling it as a detached sigmoid node keeps the array's
        # provenance visible to execution-plan capture.  ``sigmoid``
        # computes 1/(1+exp(-z)) — bit-identical to ``self.probs()``.
        z = self.logits
        p = z.sigmoid().detach()
        return F.softplus(z) - z * p
