"""Learning-rate schedulers.

PPO implementations commonly anneal the learning rate linearly over
training; the chief can wrap its Adam optimizer in one of these to do the
same.  A scheduler mutates ``optimizer.lr`` in place when stepped.
"""

from __future__ import annotations

from typing import List

from .optim import Optimizer

__all__ = ["Scheduler", "LinearDecay", "StepDecay", "CosineDecay"]


class Scheduler:
    """Base class: tracks steps and updates ``optimizer.lr``."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.steps = 0

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self.steps += 1
        lr = self.compute_lr(self.steps)
        if lr <= 0:
            raise ValueError(f"scheduler produced non-positive lr {lr}")
        self.optimizer.lr = lr
        return lr

    def compute_lr(self, steps: int) -> float:
        """The learning rate after ``steps`` scheduler steps."""
        raise NotImplementedError


class LinearDecay(Scheduler):
    """Linear anneal from the base rate to ``final_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, final_lr: float = 1e-6):
        super().__init__(optimizer)
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps}")
        if final_lr <= 0:
            raise ValueError(f"final_lr must be positive, got {final_lr}")
        self.total_steps = total_steps
        self.final_lr = final_lr

    def compute_lr(self, steps: int) -> float:
        """Linear interpolation toward ``final_lr``."""
        fraction = min(steps / self.total_steps, 1.0)
        return self.base_lr + fraction * (self.final_lr - self.base_lr)


class StepDecay(Scheduler):
    """Multiply the rate by ``gamma`` every ``every`` steps."""

    def __init__(self, optimizer: Optimizer, every: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.every = every
        self.gamma = gamma

    def compute_lr(self, steps: int) -> float:
        """Geometric decay every ``every`` steps."""
        return self.base_lr * self.gamma ** (steps // self.every)


class CosineDecay(Scheduler):
    """Cosine anneal from the base rate to ``final_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, final_lr: float = 1e-6):
        super().__init__(optimizer)
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps}")
        if final_lr <= 0:
            raise ValueError(f"final_lr must be positive, got {final_lr}")
        self.total_steps = total_steps
        self.final_lr = final_lr

    def compute_lr(self, steps: int) -> float:
        """Half-cosine interpolation toward ``final_lr``."""
        import math

        fraction = min(steps / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * fraction))
        return self.final_lr + (self.base_lr - self.final_lr) * cosine
