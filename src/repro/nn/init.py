"""Weight initializers for :mod:`repro.nn`.

Each initializer takes a shape and a ``numpy.random.Generator`` and returns
a plain array; modules wrap the result in a parameter tensor.  Keeping
initialization explicit about its RNG makes every network in the
reproduction seedable end to end.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = [
    "uniform",
    "normal",
    "xavier_uniform",
    "kaiming_uniform",
    "orthogonal",
    "zeros",
    "fan_in_and_fan_out",
]


def fan_in_and_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weight shapes."""
    if len(shape) < 2:
        raise ValueError(f"fan computation requires >= 2 dims, got {shape}")
    receptive_field = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive_field
    fan_out = shape[0] * receptive_field
    return fan_in, fan_out


def zeros(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    return np.zeros(shape)


def uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1
) -> np.ndarray:
    return rng.uniform(low, high, size=shape)


def normal(
    shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.01
) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5)
) -> np.ndarray:
    """He/Kaiming uniform matching PyTorch's default Linear/Conv init."""
    fan_in, __ = fan_in_and_fan_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Orthogonal init (the standard choice for PPO policy/value heads)."""
    if len(shape) < 2:
        raise ValueError(f"orthogonal init requires >= 2 dims, got {shape}")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Make the decomposition unique and uniformly distributed.
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols].reshape(shape)
