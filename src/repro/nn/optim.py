"""Optimizers and gradient utilities for :mod:`repro.nn`.

The chief thread of the paper's chief–employee architecture applies summed
employee gradients with Adam (Section VI).  Both optimizers here operate on
explicit parameter lists so the chief can own the only optimizer state
while employees merely compute gradients.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .modules import Parameter
from .tensor import Tensor

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "clip_grad_norm",
    "global_grad_norm",
    "flatten_gradients",
    "unflatten_vector",
]


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Discard gradients of every managed parameter."""
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        """Apply one update from the current gradients."""
        raise NotImplementedError

    def apply_gradients(self, grads: Sequence[Optional[np.ndarray]]) -> None:
        """Install externally computed gradients, then step.

        This is the chief-side entry point: employees ship gradient lists
        (aligned with ``parameters()`` order) and the chief applies them to
        the global model.
        """
        if len(grads) != len(self.params):
            raise ValueError(
                f"got {len(grads)} gradients for {len(self.params)} parameters"
            )
        for param, grad in zip(self.params, grads):
            param.grad = None if grad is None else np.asarray(grad)
        self.step()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        """One (momentum-)SGD update."""
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            update = param.grad
            if self.momentum > 0.0:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(param.data)
                self._velocity[i] = self.momentum * self._velocity[i] + update
                update = self._velocity[i]
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        """One bias-corrected Adam update."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for i, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            if self._m[i] is None:
                self._m[i] = np.zeros_like(param.data)
                self._v[i] = np.zeros_like(param.data)
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        """Optimizer state for checkpointing alongside model weights."""
        return {
            "step_count": self._step_count,
            "m": [None if m is None else m.copy() for m in self._m],
            "v": [None if v is None else v.copy() for v in self._v],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore moment state saved by :meth:`state_dict`."""
        self._step_count = int(state["step_count"])
        self._m = [None if m is None else np.asarray(m).copy() for m in state["m"]]
        self._v = [None if v is None else np.asarray(v).copy() for v in state["v"]]


def global_grad_norm(params: Iterable[Parameter]) -> float:
    """L2 norm of all gradients viewed as one vector."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad * param.grad))
    return math.sqrt(total)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global norm is at most ``max_norm``.

    Returns the pre-clip norm, as PyTorch does, so callers can log it.
    """
    params = list(params)
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton) — the optimizer of the A3C lineage the
    chief-employee architecture descends from; provided as an alternative
    to Adam for the chief."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self.eps = eps
        self._square_avg: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            if self._square_avg[i] is None:
                self._square_avg[i] = np.zeros_like(param.data)
            self._square_avg[i] = (
                self.alpha * self._square_avg[i] + (1.0 - self.alpha) * grad * grad
            )
            param.data -= self.lr * grad / (np.sqrt(self._square_avg[i]) + self.eps)


def flatten_gradients(params: Iterable[Parameter]) -> np.ndarray:
    """Concatenate all gradients into one flat vector (zeros where None).

    Useful for shipping gradients across processes or analyzing them; the
    inverse is :func:`unflatten_vector`.
    """
    pieces = []
    for param in params:
        if param.grad is None:
            pieces.append(np.zeros(param.size))
        else:
            pieces.append(param.grad.reshape(-1))
    if not pieces:
        return np.zeros(0)
    return np.concatenate(pieces)


def unflatten_vector(
    vector: np.ndarray, params: Iterable[Parameter]
) -> List[np.ndarray]:
    """Split a flat vector back into arrays shaped like each parameter."""
    vector = np.asarray(vector)
    params = list(params)
    total = sum(p.size for p in params)
    if vector.size != total:
        raise ValueError(
            f"vector has {vector.size} elements but parameters total {total}"
        )
    out: List[np.ndarray] = []
    offset = 0
    for param in params:
        out.append(vector[offset : offset + param.size].reshape(param.data.shape))
        offset += param.size
    return out
