"""Neural-network layers for :mod:`repro.nn`.

The module system mirrors the familiar PyTorch design at a much smaller
scale: a :class:`Module` owns named parameters and child modules, exposes
``parameters()`` / ``state_dict()`` / ``load_state_dict()``, and is invoked
by calling it.  Every layer takes an explicit ``rng`` so that entire agents
are reproducible from a single seed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Conv2d",
    "LayerNorm",
    "ChannelLayerNorm",
    "Embedding",
    "Sequential",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
]


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic via ``__setattr__``.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its children, in registration order."""
        return [param for __, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield (dotted-path, parameter) pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        """Discard gradients of every parameter."""
        for param in self.parameters():
            param.grad = None

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # State-dict protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of every parameter array, keyed by dotted path."""
        return OrderedDict(
            (name, param.data.copy()) for name, param in self.named_parameters()
        )

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`.

        Raises ``KeyError`` on missing entries and ``ValueError`` on shape
        mismatches — silent partial loads hide bugs.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value

    def copy_from(self, other: "Module") -> None:
        """In-place parameter copy from a structurally identical module."""
        for (name_a, param_a), (name_b, param_b) in zip(
            self.named_parameters(), other.named_parameters()
        ):
            if name_a != name_b or param_a.data.shape != param_b.data.shape:
                raise ValueError(
                    f"module structures differ: {name_a}{param_a.shape} vs "
                    f"{name_b}{param_b.shape}"
                )
            param_a.data[...] = param_b.data

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output (subclasses implement this)."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with Kaiming-uniform default init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
        weight_init: str = "kaiming",
        gain: float = 1.0,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        shape = (out_features, in_features)
        if weight_init == "kaiming":
            weight = init.kaiming_uniform(shape, rng)
        elif weight_init == "xavier":
            weight = init.xavier_uniform(shape, rng, gain=gain)
        elif weight_init == "orthogonal":
            weight = init.orthogonal(shape, rng, gain=gain)
        else:
            raise ValueError(f"unknown weight_init {weight_init!r}")
        self.weight = Parameter(weight, name="weight")
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_features), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution over (N, C, H, W) inputs with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng), name="weight")
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_channels), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_size(self, height: int, width: int) -> Tuple[int, int]:
        """Spatial output size for a given input size."""
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        return out_h, out_w

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


class LayerNorm(Module):
    """Layer normalization over the last dimension with learnable affine."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape), name="weight")
        self.bias = Parameter(np.zeros(normalized_shape), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape})"


class ChannelLayerNorm(Module):
    """Layer norm for (N, C, H, W) maps, normalizing over (C, H, W).

    This matches "layer normalization after each CNN layer" in the paper's
    model (Fig. 1): each sample's whole feature map is normalized.
    """

    def __init__(self, num_channels: int, eps: float = 1e-5):
        super().__init__()
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels), name="weight")
        self.bias = Parameter(np.zeros(num_channels), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        # Fused primitive; bitwise-identical (forward and backward) to the
        # historical flatten/mean/var/center/divide/affine composition —
        # see repro.nn.functional.channel_layer_norm for the replay notes.
        return F.channel_layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"ChannelLayerNorm({self.num_channels})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used by the spatial curiosity model's *static embedding feature*
    extractor; when ``frozen=True`` the table never receives gradients,
    matching the paper's randomly-initialized static embedding (Sec. VII-D).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        frozen: bool = False,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        table = init.normal((num_embeddings, embedding_dim), rng, std=1.0)
        self.weight = Parameter(table, name="weight")
        if frozen:
            self.weight.requires_grad = False

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if np.any(indices < 0) or np.any(indices >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return self.weight[indices]

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layers: List[Module] = []
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)
            self._layers.append(layer)

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self._layers)
        return f"Sequential({inner})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"


class Dropout(Module):
    """Inverted-dropout layer with an explicit train/eval switch.

    Modules are mode-less by default in this framework; Dropout carries its
    own ``training`` flag (set ``layer.training = False`` for evaluation)
    and an explicit RNG for reproducibility.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()
        self.training = True

    def forward(self, x: Tensor) -> Tensor:
        """Randomly zero elements (train mode) or pass through (eval)."""
        return F.dropout(x, self.p, self.rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
