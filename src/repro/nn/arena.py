"""Episode-scoped arena allocator for execution-plan replay buffers.

After the first iteration of a training step the tape's shapes and
dtypes are static (PR 4's ``_KernelPlan`` memoization is built on the
same observation), so the per-step intermediates do not need fresh
``np.ndarray`` allocations: an :class:`Arena` preallocates one buffer
("slab") per plan value slot and the execution plan
(:mod:`repro.nn.executor`) serves kernel outputs from those slabs via
``out=`` where the underlying numpy ufunc supports it.

Rules that keep this safe under the bitwise-equivalence contract:

* **Dedicated slabs.**  Every value slot owns its buffer; a kernel only
  ever writes its *own* output slab, so no replay-internal aliasing is
  possible and ``np.add(a, b, out=slab)`` is bit-identical to
  ``a + b``.
* **Generation counter.**  :meth:`Arena.begin` bumps ``generation`` at
  the start of every replay.  Arena-backed arrays are only valid until
  the next ``begin()``; consumers that need a value past the step
  (history floats, checkpoints, observability snapshots) must copy it
  out — :func:`is_arena_backed` lets tests and the RPL018 lint rule's
  runtime cousin check that nothing escapes by alias.
* **Escape analysis at plan build time.**  The executor never serves
  escaping outputs from the arena in the first place: parameter
  gradients are freshly ``zeros_like``-allocated exactly as the tape's
  ``Tensor._accumulate`` does, and scalar results are copied to Python
  floats by the caller.

The module also keeps process-global allocation counters per op name —
bytes requested vs. bytes actually served from arena slabs — which
``repro profile`` surfaces in the hot-spot table so the arena hit rate
is measurable instead of folklore.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "Arena",
    "alloc_stats",
    "is_arena_backed",
    "note_alloc",
    "reset_alloc_stats",
]

#: op name -> [bytes_requested, bytes_served_from_arena]
_ALLOC_COUNTS: Dict[str, List[int]] = {}

#: Every live arena (weak: a dropped planner must not pin its slabs'
#: identity bookkeeping forever).
_ARENAS: "weakref.WeakSet[Arena]" = weakref.WeakSet()


def note_alloc(op: str, nbytes: int, served: bool) -> None:
    """Count one plan-slot allocation for ``op``.

    ``served=True`` means the bytes came out of an arena slab (no fresh
    allocation happened); ``False`` means the kernel had to allocate —
    either because its numpy spelling has no ``out=`` form or because
    the value escapes the step.  Lost updates under thread races are
    acceptable: these are diagnostics, not accounting.
    """
    cell = _ALLOC_COUNTS.get(op)
    if cell is None:
        cell = _ALLOC_COUNTS[op] = [0, 0]
    cell[0] += nbytes
    if served:
        cell[1] += nbytes


def alloc_stats() -> Dict[str, Tuple[int, int]]:
    """Snapshot of per-op ``(bytes_requested, bytes_served)`` counters."""
    return {op: (cell[0], cell[1]) for op, cell in _ALLOC_COUNTS.items()}


def reset_alloc_stats() -> None:
    """Zero the per-op allocation counters (tests and profiler resets)."""
    _ALLOC_COUNTS.clear()


def is_arena_backed(array: np.ndarray) -> bool:
    """Whether ``array`` is (a view of) a live arena slab.

    The check is identity-based: slabs live as long as their arena, so
    ``id`` comparisons cannot alias recycled objects while the arena is
    alive.  Used by escape tests; hot paths never call this.
    """
    base = array.base if array.base is not None else array
    for arena in _ARENAS:
        if id(array) in arena._slab_ids or id(base) in arena._slab_ids:
            return True
    return False


class Arena:
    """Preallocated per-slot replay buffers with a replay generation.

    One arena belongs to one execution plan; slots are reserved while
    the plan is compiled (shapes are known from the captured tape) and
    the plan calls :meth:`begin` once per replay.
    """

    __slots__ = ("generation", "_slabs", "_slab_ids", "__weakref__")

    def __init__(self) -> None:
        self.generation = 0
        self._slabs: List[np.ndarray] = []
        self._slab_ids: set = set()
        _ARENAS.add(self)

    def reserve(self, shape: Tuple[int, ...], dtype) -> int:
        """Preallocate one buffer; returns its arena slot index."""
        buf = np.empty(shape, dtype=dtype)
        self._slabs.append(buf)
        self._slab_ids.add(id(buf))
        return len(self._slabs) - 1

    def buffer(self, slot: int) -> np.ndarray:
        """The preallocated buffer for ``slot`` (stable identity)."""
        return self._slabs[slot]

    def begin(self) -> int:
        """Start a replay: bump and return the generation counter.

        Any arena-backed array obtained before this call is now stale;
        escape discipline (copy-out) is what makes that a non-event.
        """
        self.generation += 1
        return self.generation

    @property
    def nbytes(self) -> int:
        """Total preallocated bytes across all slots."""
        return sum(buf.nbytes for buf in self._slabs)

    def __len__(self) -> int:
        return len(self._slabs)
