"""Experiment scale presets.

The paper trains for 2,500 episodes on a 16x16-cell space with P up to 500
— hours of work for a pure-numpy substrate.  Every experiment runner
therefore takes a :class:`Scale` selecting how big to run:

* ``smoke`` — minutes in total across the whole benchmark suite; shapes
  (who wins, trends) are noisy but visible.  Default for ``pytest
  benchmarks/``.
* ``short`` — tens of minutes; the scale used for the numbers recorded in
  EXPERIMENTS.md.
* ``paper`` — the paper's published setup (16x16 space, P=300, 8
  employees, batch 250, 2,500 episodes).  Run via the CLI when you have
  the time budget.

Select globally with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from ..env.config import ScenarioConfig

__all__ = ["Scale", "SCALES", "current_scale", "get_scale", "scale_params"]


@dataclass(frozen=True)
class Scale:
    """One preset: scenario geometry plus training-loop sizes."""

    name: str
    grid: int
    size: float
    num_pois: int
    num_workers: int
    num_stations: int
    horizon: int
    energy_budget: float
    episodes: int
    num_employees: int
    k_updates: int
    batch_size: int
    eval_episodes: int
    learning_rate: float = 1e-3

    def scenario(self, **overrides) -> ScenarioConfig:
        """Base :class:`ScenarioConfig` for this scale."""
        base = dict(
            grid=self.grid,
            size=self.size,
            num_pois=self.num_pois,
            num_workers=self.num_workers,
            num_stations=self.num_stations,
            horizon=self.horizon,
            energy_budget=self.energy_budget,
        )
        base.update(overrides)
        return ScenarioConfig(**base)

    def with_overrides(self, **changes) -> "Scale":
        """Copy of the scale with the given fields changed."""
        return replace(self, **changes)


SCALES = {
    "smoke": Scale(
        name="smoke",
        grid=8,
        size=8.0,
        num_pois=40,
        num_workers=2,
        num_stations=2,
        horizon=40,
        energy_budget=8.0,
        episodes=30,
        num_employees=2,
        k_updates=8,
        batch_size=40,
        eval_episodes=3,
    ),
    "short": Scale(
        name="short",
        grid=10,
        size=10.0,
        num_pois=80,
        num_workers=2,
        num_stations=3,
        horizon=60,
        energy_budget=10.0,
        episodes=250,
        num_employees=4,
        k_updates=8,
        batch_size=60,
        eval_episodes=5,
    ),
    "paper": Scale(
        name="paper",
        grid=16,
        size=16.0,
        num_pois=300,
        num_workers=2,
        num_stations=4,
        horizon=200,
        energy_budget=40.0,
        episodes=2500,
        num_employees=8,
        k_updates=4,
        batch_size=250,
        eval_episodes=10,
        learning_rate=3e-4,
    ),
}


def get_scale(name: str) -> Scale:
    """Look up a preset by name ('smoke' / 'short' / 'paper')."""
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(SCALES)}")
    return SCALES[name]


def current_scale(default: str = "smoke") -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default ``smoke``)."""
    return get_scale(os.environ.get("REPRO_SCALE", default))


def scale_params(scale: Scale) -> dict:
    """The scale as a flat dict — the full fingerprint for cache keys.

    Keying caches by every field (not just the preset name) means a scale
    customized via :meth:`Scale.with_overrides` never collides with the
    preset it was derived from.
    """
    import dataclasses

    return dataclasses.asdict(scale)
