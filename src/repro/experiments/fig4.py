"""Fig. 4 — feature selection for the curiosity model (Section VII-D).

Five curiosity designs are trained head-to-head (W=2, P=200 in the paper)
and their learning curves of κ / ξ / ρ compared:

* shared embedding feature   (the winner, adopted by DRL-CEWS),
* shared direct feature,
* independent embedding feature,
* independent direct feature,
* RND (state-of-the-art comparison).

Each variant trains a full DRL-CEWS agent under the sparse reward with the
given curiosity module; curves are the per-episode training metrics.
"""

from __future__ import annotations

from typing import Dict, List

from .cache import cached_run
from .scales import Scale, current_scale, scale_params
from .training import make_ppo_config, make_train_config, train_method

__all__ = ["FEATURE_VARIANTS", "run_fig4"]

#: variant name -> build_agent keyword overrides.  The first five are the
#: paper's Fig. 4 arms; "ICM" (the full Pathak et al. module the spatial
#: model specializes) is this repository's extra comparison point.
FEATURE_VARIANTS: Dict[str, Dict] = {
    "shared embedding": {"curiosity": "spatial", "feature": "embedding", "structure": "shared"},
    "shared direct": {"curiosity": "spatial", "feature": "direct", "structure": "shared"},
    "independent embedding": {"curiosity": "spatial", "feature": "embedding", "structure": "independent"},
    "independent direct": {"curiosity": "spatial", "feature": "direct", "structure": "independent"},
    "RND": {"curiosity": "rnd"},
    "ICM": {"curiosity": "icm"},
}

_POIS = {"smoke": 30, "short": 60, "paper": 200}


def run_fig4(scale: Scale | None = None, seed: int = 0) -> Dict:
    """Learning curves for every curiosity variant.

    Returns ``{"episodes": N, "curves": {variant: {metric: [per-episode]}}}``.
    """
    scale = scale if scale is not None else current_scale()
    params = {"scale": scale_params(scale), "seed": seed, "variants": sorted(FEATURE_VARIANTS)}

    def compute() -> Dict:
        # The paper uses W=2, P=200 for this study.
        config = scale.scenario(num_pois=_POIS[scale.name])
        curves: Dict[str, Dict[str, List[float]]] = {}
        for variant, overrides in FEATURE_VARIANTS.items():
            __, history = train_method(
                "cews", config, scale, seed=seed, **overrides
            )
            curves[variant] = {
                "kappa": history.curve("kappa"),
                "xi": history.curve("xi"),
                "rho": history.curve("rho"),
                "intrinsic": history.curve("intrinsic_reward"),
            }
        return {
            "scale": scale.name,
            "episodes": scale.episodes,
            "curves": curves,
        }

    return cached_run("fig4", params, compute)
