"""Experiment registry: one entry per table/figure of the paper.

Maps experiment ids to (runner, printer) pairs; the CLI and the benchmark
suite both dispatch through here so DESIGN.md's experiment index, the CLI
and ``benchmarks/`` stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .comparison import run_sweep
from .fig2c import run_fig2c
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig9 import run_fig9
from .report import (
    print_comparison_figure,
    print_fig2c,
    print_fig3,
    print_fig4,
    print_fig5,
    print_fig9,
    print_table2,
)
from .scales import Scale
from .table2 import run_table2

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    id: str
    description: str
    run: Callable[..., Dict]
    render: Callable[[Dict], str]


def _comparison_entry(metric: str, sweep: str) -> Experiment:
    figure = {"kappa": 6, "xi": 7, "rho": 8}[metric]
    panel = {"pois": "a", "workers": "b", "budget": "c", "stations": "d"}[sweep]

    def run(scale: Optional[Scale] = None, seed: int = 0) -> Dict:
        return run_sweep(sweep, scale=scale, seed=seed)

    def render(result: Dict) -> str:
        return print_comparison_figure(result, metric)

    return Experiment(
        id=f"fig{figure}{panel}",
        description=f"Fig. {figure}({panel}): {metric} vs {sweep} for all 5 methods",
        run=run,
        render=render,
    )


def _build_registry() -> Dict[str, Experiment]:
    experiments = [
        Experiment(
            "table2",
            "Table II: kappa/xi/rho over #employees x batch size",
            run_table2,
            print_table2,
        ),
        Experiment(
            "fig3",
            "Fig. 3: training wall time vs #employees",
            run_fig3,
            print_fig3,
        ),
        Experiment(
            "fig4",
            "Fig. 4: curiosity feature selection learning curves",
            run_fig4,
            print_fig4,
        ),
        Experiment(
            "fig5",
            "Fig. 5: dense/sparse reward with/without curiosity",
            run_fig5,
            print_fig5,
        ),
        Experiment(
            "fig9",
            "Fig. 9: curiosity heat maps, DRL-CEWS vs DPPO",
            run_fig9,
            print_fig9,
        ),
        Experiment(
            "fig2c",
            "Fig. 2(c): trajectories of trained workers",
            run_fig2c,
            print_fig2c,
        ),
    ]
    for metric in ("kappa", "xi", "rho"):
        for sweep in ("pois", "workers", "budget", "stations"):
            experiments.append(_comparison_entry(metric, sweep))
    return {experiment.id: experiment for experiment in experiments}


EXPERIMENTS: Dict[str, Experiment] = _build_registry()


def run_experiment(
    experiment_id: str, scale: Optional[Scale] = None, seed: int = 0
) -> str:
    """Run one experiment end to end and return its rendered report."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    experiment = EXPERIMENTS[experiment_id]
    result = experiment.run(scale=scale, seed=seed)
    return experiment.render(result)
