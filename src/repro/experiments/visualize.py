"""Visualization helpers: curiosity heat maps and trajectory maps.

These produce plain numpy grids plus ASCII renderings so the Fig. 9 and
Fig. 2(c) reproductions work in any terminal without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..curiosity.base import TransitionBatch
from ..curiosity.spatial import SpatialCuriosity
from ..env.env import CrowdsensingEnv
from ..env.generator import Scenario
from ..env.space import CrowdsensingSpace
from ..utils.tables import ascii_heatmap

__all__ = [
    "curiosity_heatmap",
    "policy_quiver",
    "render_heatmap",
    "trajectory_grid",
    "render_trajectories",
]


def curiosity_heatmap(
    curiosity: SpatialCuriosity,
    space: CrowdsensingSpace,
    positions: np.ndarray,
    moves: np.ndarray,
    next_positions: np.ndarray,
) -> np.ndarray:
    """Mean raw curiosity value per visited grid cell.

    ``positions`` / ``next_positions`` are (T, W, 2) step records and
    ``moves`` (T, W); the result is a (grid, grid) array where each visited
    cell holds the mean forward-model error of the visits and unvisited
    cells hold zero — the paper's "curiosity value for a worker at its
    passed location".
    """
    batch = TransitionBatch(
        positions=positions, next_positions=next_positions, moves=moves
    )
    errors = curiosity.raw_errors(batch)  # (T, W)
    total = np.zeros((space.grid, space.grid))
    counts = np.zeros((space.grid, space.grid))
    for w in range(positions.shape[1]):
        rows, cols = space.cell_of(positions[:, w])
        np.add.at(total, (rows, cols), errors[:, w])
        np.add.at(counts, (rows, cols), 1.0)
    with np.errstate(invalid="ignore"):
        mean = np.where(counts > 0, total / np.maximum(counts, 1.0), 0.0)
    return mean


def render_heatmap(grid: np.ndarray, title: str = "") -> str:
    """ASCII heat map (bright = high curiosity)."""
    return ascii_heatmap(grid, title=title)


def trajectory_grid(
    scenario: Scenario, trajectories: Sequence[np.ndarray]
) -> np.ndarray:
    """Integer map: -1 obstacles, -2 stations, 0 empty, w+1 = worker w's path.

    ``trajectories`` is one (T, 2) position array per worker.
    """
    space = scenario.space
    grid = np.zeros((space.grid, space.grid), dtype=np.int64)
    grid[space.obstacles] = -1
    if len(scenario.stations):
        rows, cols = space.cell_of(scenario.stations.positions)
        grid[rows, cols] = -2
    for w, path in enumerate(trajectories):
        rows, cols = space.cell_of(np.asarray(path))
        grid[rows, cols] = w + 1
    return grid


_TRAJECTORY_GLYPHS = {-2: "C", -1: "#", 0: "."}


def render_trajectories(scenario: Scenario, trajectories: Sequence[np.ndarray]) -> str:
    """ASCII map of worker paths (digits), obstacles (#) and stations (C).

    Row 0 (y = 0) is printed at the bottom, matching the coordinate system.
    """
    grid = trajectory_grid(scenario, trajectories)
    lines = []
    for row in grid[::-1]:
        lines.append(
            "".join(
                _TRAJECTORY_GLYPHS.get(int(cell), str(int(cell) % 10)) for cell in row
            )
        )
    return "\n".join(lines)


_ARROWS = {
    "stay": "o", "N": "^", "NE": "/", "E": ">", "SE": "\\",
    "S": "v", "SW": "/", "W": "<", "NW": "\\",
}


def policy_quiver(agent, env: CrowdsensingEnv, worker: int = 0) -> str:
    """ASCII vector field of the policy's greedy move at every free cell.

    The chosen ``worker`` is teleported to each free cell in turn (other
    workers stay put) and the policy's argmax route decision is drawn:
    ``^ v < >`` for cardinal moves, ``/ \\`` for diagonals, ``o`` for
    stay, ``#`` for obstacles.  A cheap way to *see* what a trained policy
    wants to do across the map.
    """
    from ..env.actions import MOVE_NAMES

    space = env.space
    if env._needs_reset:
        env.reset()
    original = env.workers.positions[worker].copy()
    rng = np.random.default_rng(0)
    grid_chars = [["#" if space.obstacles[r, c] else " " for c in range(space.grid)]
                  for r in range(space.grid)]
    try:
        for row in range(space.grid):
            for col in range(space.grid):
                if space.obstacles[row, col]:
                    continue
                env.workers.positions[worker] = space.cell_center(
                    np.asarray(row), np.asarray(col)
                )
                action = agent.act(env, rng, greedy=True)
                grid_chars[row][col] = _ARROWS[MOVE_NAMES[action.move[worker]]]
    finally:
        env.workers.positions[worker] = original
    return "\n".join("".join(line) for line in grid_chars[::-1])
