"""Synchronous vs asynchronous training — quantifying Section V-A's choice.

The paper *argues* for the synchronous chief–employee architecture because
asynchronous updates suffer policy-lag unless corrected (V-trace).  This
study measures that argument: three arms with equal episode budgets,

* ``sync`` — the paper's synchronous chief–employee loop,
* ``async + vtrace`` — IMPALA-style actor-learner with V-trace,
* ``async uncorrected`` — the same loop with no off-policy correction
  (actors lag ``sync_every`` episodes behind the learner),

reporting final training κ / ρ and the tail value-loss (an instability
indicator — uncorrected lag inflates it).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..distributed import AsyncConfig, build_async_trainer, build_trainer
from .cache import cached_run
from .scales import Scale, current_scale, scale_params
from .training import make_ppo_config, make_train_config

__all__ = ["run_async_study", "ASYNC_LAG"]

#: actor parameter staleness (episodes between actor syncs) for the async arms
ASYNC_LAG = 4


def run_async_study(scale: Optional[Scale] = None, seed: int = 0) -> Dict:
    """Train the three arms and summarize; cached on disk."""
    scale = scale if scale is not None else current_scale()
    params = {"scale": scale_params(scale), "seed": seed, "lag": ASYNC_LAG}

    def summarize(kappas, rhos, value_losses) -> Dict[str, float]:
        tail = max(len(kappas) // 4, 1)
        return {
            "kappa": float(np.mean(kappas[-tail:])),
            "rho": float(np.mean(rhos[-tail:])),
            "value_loss_tail": float(np.mean(value_losses[-tail:])),
        }

    def compute() -> Dict:
        config = scale.scenario()
        arms: Dict[str, Dict[str, float]] = {}

        trainer = build_trainer(
            "cews",
            config,
            train=make_train_config(scale, seed=seed),
            ppo=make_ppo_config(scale),
            seed=seed,
        )
        try:
            history = trainer.train()
        finally:
            trainer.close()
        arms["sync"] = summarize(
            history.curve("kappa"), history.curve("rho"), history.curve("value_loss")
        )

        for name, correction in (
            ("async + vtrace", "vtrace"),
            ("async uncorrected", "none"),
        ):
            async_trainer = build_async_trainer(
                "cews",
                config,
                async_config=AsyncConfig(
                    num_actors=scale.num_employees,
                    episodes=scale.episodes,
                    sync_every=ASYNC_LAG,
                    correction=correction,
                    seed=seed,
                ),
                ppo=make_ppo_config(scale),
                seed=seed,
            )
            history = async_trainer.train()
            arms[name] = summarize(
                history.curve("kappa"),
                history.curve("rho"),
                history.curve("value_loss"),
            )
        return {"scale": scale.name, "lag": ASYNC_LAG, "arms": arms}

    return cached_run("async-study", params, compute)
