"""Printers turning experiment results into the paper's rows and series.

Each ``print_*`` function consumes the dict produced by the matching
runner and returns the formatted text (also printed by the CLI and the
benchmarks so the harness output can be read next to the paper).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..utils.ascii_plot import ascii_line_chart
from ..utils.tables import ascii_heatmap, format_series, format_table

__all__ = [
    "print_table2",
    "print_fig3",
    "print_fig4",
    "print_fig5",
    "print_comparison_figure",
    "print_fig9",
    "print_fig2c",
]


def print_table2(result: Dict) -> str:
    """Table II layout: one κ/ξ/ρ row triple per batch size."""
    employees = result["employees"]
    headers = ["batch size", "metric"] + [str(count) for count in employees]
    rows = []
    for batch in result["batches"]:
        cell_row = result["cells"][str(batch)]
        for metric in ("kappa", "xi", "rho"):
            rows.append(
                [f"batch {batch}", metric]
                + [cell_row[str(count)][metric] for count in employees]
            )
    return format_table(
        headers, rows, title="Table II: impact of #employees x batch size"
    )


def print_fig3(result: Dict) -> str:
    lines = [f"Fig. 3: training time vs #employees (batch {result['batch']})"]
    lines.append(
        format_series("train_time_s", result["employees"], result["train_time"])
    )
    lines.append(format_series("rho", result["employees"], result["rho"]))
    return "\n".join(lines)


def _curve_summary(curve, buckets: int = 5):
    """Downsample a long curve into bucket means for compact printing."""
    curve = np.asarray(curve, dtype=np.float64)
    if len(curve) <= buckets:
        return list(range(len(curve))), curve.tolist()
    edges = np.linspace(0, len(curve), buckets + 1).astype(int)
    xs = [int(edges[i + 1]) for i in range(buckets)]
    ys = [float(curve[edges[i]:edges[i + 1]].mean()) for i in range(buckets)]
    return xs, ys


def print_fig4(result: Dict) -> str:
    lines = ["Fig. 4: curiosity feature selection (training-curve bucket means)"]
    for metric in ("kappa", "xi", "rho"):
        lines.append(f"-- {metric} --")
        for variant, curves in result["curves"].items():
            xs, ys = _curve_summary(curves[metric])
            lines.append(format_series(variant, xs, ys))
    lines.append(
        ascii_line_chart(
            {name: curves["kappa"] for name, curves in result["curves"].items()},
            title="kappa learning curves",
            y_label="kappa",
        )
    )
    return "\n".join(lines)


def print_fig5(result: Dict) -> str:
    lines = ["Fig. 5: reward mechanisms x curiosity (training-curve bucket means)"]
    for metric in ("kappa", "xi", "rho"):
        lines.append(f"-- {metric} --")
        for arm, curves in result["curves"].items():
            xs, ys = _curve_summary(curves[metric])
            lines.append(format_series(arm, xs, ys))
    lines.append(
        ascii_line_chart(
            {name: curves["kappa"] for name, curves in result["curves"].items()},
            title="kappa learning curves",
            y_label="kappa",
        )
    )
    return "\n".join(lines)


_METRIC_FIGURE = {"kappa": "Fig. 6", "xi": "Fig. 7", "rho": "Fig. 8"}
_PANEL = {"pois": "(a) no. of PoIs", "workers": "(b) no. of workers",
          "budget": "(c) energy budget", "stations": "(d) no. of charging stations"}


def print_comparison_figure(sweep_result: Dict, metric: str) -> str:
    """One panel of Figs. 6-8: every method's series over the sweep."""
    from .comparison import figure_series

    figure = _METRIC_FIGURE[metric]
    panel = _PANEL[sweep_result["sweep"]]
    lines = [f"{figure}{panel}: {metric} vs {sweep_result['sweep']}"]
    for name, xs, ys in figure_series(sweep_result, metric):
        lines.append(format_series(name, xs, ys))
    return "\n".join(lines)


def print_fig9(result: Dict) -> str:
    lines = ["Fig. 9: curiosity heat maps over training (bright = high curiosity)"]
    for method, grids in result["heatmaps"].items():
        for episode, grid in zip(result["checkpoints"], grids):
            grid = np.asarray(grid)
            coverage = float((grid > 0).mean())
            lines.append(
                ascii_heatmap(
                    grid,
                    title=(
                        f"{method} @ episode {episode} "
                        f"(visited {coverage:.0%} of cells, "
                        f"mean curiosity {grid[grid > 0].mean() if (grid > 0).any() else 0.0:.4f})"
                    ),
                )
            )
    return "\n".join(lines)


def print_fig2c(result: Dict) -> str:
    from ..env.config import ScenarioConfig
    from ..env.generator import generate_scenario
    from .scales import get_scale
    from .visualize import render_trajectories

    scale = get_scale(result["scale"])
    scenario = generate_scenario(scale.scenario())
    trajectories = [np.asarray(path) for path in result["trajectories"]]
    lines = [
        f"Fig. 2(c): trajectories (digits = workers, C = station, # = obstacle); "
        f"kappa {result['kappa']:.3f}",
        render_trajectories(scenario, trajectories),
    ]
    return "\n".join(lines)
