"""Multi-seed evaluation: means, deviations and pairwise win rates.

Single-seed comparisons of stochastic learners are fragile; this module
repeats train-and-evaluate over independent seeds and summarizes each
method's κ / ξ / ρ as mean ± standard deviation, plus a pairwise win
matrix (how often method A's ρ beats method B's across seeds).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..env.config import ScenarioConfig
from .cache import cached_run
from .scales import Scale, current_scale, scale_params
from .training import ALL_METHODS, evaluate_method, method_display_name

__all__ = ["run_multi_seed", "summarize_multi_seed", "win_matrix"]


def run_multi_seed(
    methods: Sequence[str] = ALL_METHODS,
    scale: Scale | None = None,
    seeds: Sequence[int] = (0, 1, 2),
    config: ScenarioConfig | None = None,
) -> Dict:
    """Evaluate ``methods`` across ``seeds`` on one scenario; cached.

    Each seed re-trains learned methods from scratch (scenario map fixed
    by the config; only initialization and exploration randomness vary).
    """
    scale = scale if scale is not None else current_scale()
    config = config if config is not None else scale.scenario()
    params = {
        "scale": scale_params(scale),
        "methods": list(methods),
        "seeds": list(seeds),
        "config_seed": config.seed,
        "pois": config.num_pois,
        "workers": config.num_workers,
    }

    def compute() -> Dict:
        per_seed: Dict[str, List[Dict[str, float]]] = {m: [] for m in methods}
        for seed in seeds:
            for method in methods:
                per_seed[method].append(
                    evaluate_method(method, config, scale, seed=seed)
                )
        return {"scale": scale.name, "seeds": list(seeds), "per_seed": per_seed}

    return cached_run("multi-seed", params, compute)


def summarize_multi_seed(result: Dict) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-method ``{metric: {"mean", "std"}}`` from a multi-seed result."""
    summary: Dict[str, Dict[str, Dict[str, float]]] = {}
    for method, snapshots in result["per_seed"].items():
        summary[method] = {}
        for metric in ("kappa", "xi", "rho"):
            values = np.array([snap[metric] for snap in snapshots])
            summary[method][metric] = {
                "mean": float(values.mean()),
                "std": float(values.std()),
            }
    return summary


def win_matrix(result: Dict, metric: str = "rho") -> Dict[str, Dict[str, float]]:
    """``matrix[a][b]`` = fraction of seeds where a's metric beats b's."""
    if metric not in ("kappa", "xi", "rho"):
        raise ValueError(f"metric must be kappa/xi/rho, got {metric!r}")
    methods = list(result["per_seed"])
    matrix: Dict[str, Dict[str, float]] = {}
    for a in methods:
        matrix[a] = {}
        a_values = [snap[metric] for snap in result["per_seed"][a]]
        for b in methods:
            if a == b:
                continue
            b_values = [snap[metric] for snap in result["per_seed"][b]]
            # For ξ lower is better; for κ and ρ higher is better.
            if metric == "xi":
                wins = sum(av < bv for av, bv in zip(a_values, b_values))
            else:
                wins = sum(av > bv for av, bv in zip(a_values, b_values))
            matrix[a][b] = wins / len(a_values)
    return matrix
