"""Shared train-and-evaluate plumbing for the experiment runners.

Every table/figure needs the same recipe: build a scenario at the chosen
scale, train the learned methods with the chief–employee architecture,
evaluate everything with the testing process of Section VI-D, and report
κ / ξ / ρ.  This module centralizes that recipe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..agents import DnCAgent, GreedyAgent, PPOConfig, RandomAgent, run_episode
from ..distributed import (
    CheckpointManager,
    ChiefEmployeeTrainer,
    TrainConfig,
    TrainingHistory,
    build_trainer,
)
from ..env.config import ScenarioConfig
from ..env.env import CrowdsensingEnv
from .scales import Scale

__all__ = [
    "LEARNED_METHODS",
    "SCRIPTED_METHODS",
    "ALL_METHODS",
    "method_display_name",
    "make_ppo_config",
    "make_train_config",
    "train_method",
    "resume_or_start",
    "evaluate_agent",
    "evaluate_method",
    "evaluate_scripted",
]

LEARNED_METHODS = ("cews", "dppo", "edics")
SCRIPTED_METHODS = ("dnc", "greedy", "random")
ALL_METHODS = LEARNED_METHODS + SCRIPTED_METHODS[:2]

_DISPLAY = {
    "cews": "DRL-CEWS",
    "dppo": "DPPO",
    "edics": "Edics",
    "dnc": "D&C",
    "greedy": "Greedy",
    "random": "Random",
}


def method_display_name(method: str) -> str:
    """Paper-style display name for a method id (e.g. cews -> DRL-CEWS)."""
    return _DISPLAY.get(method, method)


def make_ppo_config(scale: Scale, batch_size: Optional[int] = None) -> PPOConfig:
    # The curiosity model trains 5x faster than the policy so its novelty
    # bonus decays within the scale's episode budget (see PPOConfig docs).
    return PPOConfig(
        batch_size=batch_size if batch_size is not None else scale.batch_size,
        epochs=1,
        learning_rate=scale.learning_rate,
        curiosity_learning_rate=5 * scale.learning_rate,
    )


def make_train_config(
    scale: Scale,
    num_employees: Optional[int] = None,
    episodes: Optional[int] = None,
    seed: int = 0,
    mode: str = "sequential",
    backend: Optional[str] = None,
) -> TrainConfig:
    return TrainConfig(
        num_employees=num_employees if num_employees is not None else scale.num_employees,
        episodes=episodes if episodes is not None else scale.episodes,
        k_updates=scale.k_updates,
        mode=mode,
        backend=backend,
        seed=seed,
    )


def train_method(
    method: str,
    config: ScenarioConfig,
    scale: Scale,
    seed: int = 0,
    episodes: Optional[int] = None,
    num_employees: Optional[int] = None,
    batch_size: Optional[int] = None,
    mode: str = "sequential",
    backend: Optional[str] = None,
    **agent_kwargs,
) -> Tuple[object, TrainingHistory]:
    """Train one learned method; returns (trained global agent, history)."""
    trainer = build_trainer(
        method,
        config,
        train=make_train_config(
            scale,
            num_employees=num_employees,
            episodes=episodes,
            seed=seed,
            mode=mode,
            backend=backend,
        ),
        ppo=make_ppo_config(scale, batch_size=batch_size),
        seed=seed,
        **agent_kwargs,
    )
    try:
        history = trainer.train()
    finally:
        trainer.close()
    return trainer.global_agent, history


def resume_or_start(
    trainer: ChiefEmployeeTrainer,
    checkpoint_dir,
    episodes: int,
    save_every: int = 1,
    keep_last: int = 3,
    fault_injector=None,
    on_episode_end=None,
) -> TrainingHistory:
    """Train ``trainer`` to ``episodes`` total with crash-safe auto-recovery.

    On entry the newest *valid* rolling checkpoint under ``checkpoint_dir``
    (if any) is restored — agent parameters, optimizer moments, RNG states
    and the global episode counter — so a process killed mid-run resumes
    bitwise-identically to an uninterrupted one.  During training a
    checkpoint is written every ``save_every`` episodes (atomic write,
    ``keep_last`` rolling archives, ``latest`` pointer).

    Returns the history of the episodes run by *this* call (empty when the
    checkpoint already covers ``episodes``).  ``fault_injector`` threads
    checkpoint-interrupt faults into the writer (tests only).
    ``on_episode_end(trainer, episode)`` is invoked after each episode's
    checkpoint bookkeeping (e.g. the CLI's ASCII dashboard).
    """
    if episodes < 1:
        raise ValueError(f"episodes must be >= 1, got {episodes}")
    if save_every < 1:
        raise ValueError(f"save_every must be >= 1, got {save_every}")
    manager = CheckpointManager(
        checkpoint_dir, keep_last=keep_last, fault_injector=fault_injector
    )
    manager.restore_latest(trainer)
    remaining = episodes - trainer.episodes_completed
    if remaining <= 0:
        return TrainingHistory()

    def checkpoint_callback(t: ChiefEmployeeTrainer, episode: int) -> None:
        if (episode + 1) % save_every == 0 or episode + 1 == episodes:
            manager.save(t, episode + 1)
        if on_episode_end is not None:
            on_episode_end(t, episode)

    return trainer.train(remaining, on_episode_end=checkpoint_callback)


def evaluate_agent(
    agent,
    config: ScenarioConfig,
    scale: Scale,
    seed: int = 0,
    reward_mode: str = "dense",
) -> Dict[str, float]:
    """Mean κ / ξ / ρ over ``scale.eval_episodes`` stochastic rollouts.

    Stochastic (sampled) rollouts match the paper's testing process of
    drawing actions from the trained policy distribution; scripted agents
    are deterministic anyway (their rng only breaks ties).
    """
    env = CrowdsensingEnv(config, reward_mode=reward_mode)
    rng = np.random.default_rng(seed + 77)
    snapshots = [
        run_episode(agent, env, rng, greedy=False).metrics
        for __ in range(scale.eval_episodes)
    ]
    return {
        "kappa": float(np.mean([m.kappa for m in snapshots])),
        "xi": float(np.mean([m.xi for m in snapshots])),
        "rho": float(np.mean([m.rho for m in snapshots])),
    }


def evaluate_method(
    method: str,
    config: ScenarioConfig,
    scale: Scale,
    seed: int = 0,
    **train_kwargs,
) -> Dict[str, float]:
    """Train (if learned) and evaluate one method on one scenario."""
    if method in SCRIPTED_METHODS:
        return evaluate_scripted(method, config, scale, seed=seed)
    if method not in LEARNED_METHODS:
        raise ValueError(f"unknown method {method!r}")
    agent, __ = train_method(method, config, scale, seed=seed, **train_kwargs)
    return evaluate_agent(
        agent, config, scale, seed=seed, reward_mode=getattr(agent, "reward_mode", "dense")
    )


def evaluate_scripted(
    method: str, config: ScenarioConfig, scale: Scale, seed: int = 0
) -> Dict[str, float]:
    """Evaluate a scripted baseline (greedy / dnc / random)."""
    agents = {
        "greedy": GreedyAgent,
        "dnc": DnCAgent,
        "random": RandomAgent,
    }
    if method not in agents:
        raise ValueError(f"unknown scripted method {method!r}")
    return evaluate_agent(agents[method](), config, scale, seed=seed)
