"""Fig. 2(c) — attained trajectories for 2 drones and 4 charging stations.

Trains DRL-CEWS on the default scenario and records one evaluation
episode's worker paths, returning them together with the map so they can
be rendered (ASCII here; the paper plots them over the Unity scene).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..agents.base import run_episode
from ..env.env import CrowdsensingEnv
from .cache import cached_run
from .scales import Scale, current_scale, scale_params
from .training import train_method

__all__ = ["run_fig2c"]


def run_fig2c(scale: Scale | None = None, seed: int = 0) -> Dict:
    """Worker trajectories of a trained DRL-CEWS policy.

    Returns ``{"trajectories": [per-worker list of [x, y]], "stations":
    [[x, y]...], "obstacles": grid-as-nested-list, "kappa": float}``.
    """
    scale = scale if scale is not None else current_scale()
    params = {"scale": scale_params(scale), "seed": seed}

    def compute() -> Dict:
        config = scale.scenario()
        agent, __ = train_method("cews", config, scale, seed=seed)
        env = CrowdsensingEnv(config, reward_mode="sparse", scenario=agent.scenario)
        rng = np.random.default_rng(seed + 5)
        result = run_episode(agent, env, rng, greedy=False, record_trajectory=True)
        steps = np.stack(result.trajectory)  # (T+1, W, 2)
        trajectories = [steps[:, w].tolist() for w in range(config.num_workers)]
        return {
            "scale": scale.name,
            "trajectories": trajectories,
            "stations": env.stations.positions.tolist(),
            "obstacles": env.space.obstacles.astype(int).tolist(),
            "kappa": result.metrics.kappa,
        }

    return cached_run("fig2c", params, compute)
