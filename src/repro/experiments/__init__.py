"""Experiment harness: regenerate every table and figure of the paper.

See DESIGN.md's experiment index for the id <-> table/figure mapping, and
run ``python -m repro.experiments list`` for the registry.
"""

from .ablations import run_eta_ablation, run_layernorm_ablation, run_returns_ablation
from .async_study import run_async_study
from .cache import cache_key, cached_run, load_cached, result_cache_dir, store_cached
from .export import collect_artifacts, write_report
from .comparison import figure_series, run_all_sweeps, run_sweep, sweep_values
from .fig2c import run_fig2c
from .fig3 import run_fig3
from .fig4 import FEATURE_VARIANTS, run_fig4
from .fig5 import REWARD_ARMS, run_fig5
from .fig9 import run_fig9
from .registry import EXPERIMENTS, Experiment, run_experiment
from .scales import SCALES, Scale, current_scale, get_scale, scale_params
from .significance import run_multi_seed, summarize_multi_seed, win_matrix
from .table2 import run_table2
from .training import (
    ALL_METHODS,
    LEARNED_METHODS,
    SCRIPTED_METHODS,
    evaluate_agent,
    evaluate_method,
    evaluate_scripted,
    method_display_name,
    resume_or_start,
    train_method,
)
from .visualize import (
    curiosity_heatmap,
    policy_quiver,
    render_heatmap,
    render_trajectories,
    trajectory_grid,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "run_experiment",
    "SCALES",
    "Scale",
    "current_scale",
    "get_scale",
    "run_table2",
    "run_fig2c",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig9",
    "FEATURE_VARIANTS",
    "REWARD_ARMS",
    "run_sweep",
    "run_all_sweeps",
    "sweep_values",
    "figure_series",
    "ALL_METHODS",
    "LEARNED_METHODS",
    "SCRIPTED_METHODS",
    "train_method",
    "resume_or_start",
    "evaluate_agent",
    "evaluate_method",
    "evaluate_scripted",
    "method_display_name",
    "curiosity_heatmap",
    "policy_quiver",
    "render_heatmap",
    "render_trajectories",
    "trajectory_grid",
    "cached_run",
    "cache_key",
    "load_cached",
    "store_cached",
    "result_cache_dir",
    "scale_params",
    "run_eta_ablation",
    "run_layernorm_ablation",
    "run_returns_ablation",
    "run_async_study",
    "run_multi_seed",
    "summarize_multi_seed",
    "win_matrix",
    "collect_artifacts",
    "write_report",
]
