"""CLI: regenerate any of the paper's tables and figures.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run table2 --scale smoke
    python -m repro.experiments run-all --scale short --seed 1
"""

from __future__ import annotations

import argparse
import sys

from .registry import EXPERIMENTS, run_experiment
from .scales import SCALES, get_scale


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    run_parser.add_argument("--seed", type=int, default=0)

    all_parser = subparsers.add_parser("run-all", help="run every experiment")
    all_parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    all_parser.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(f"{experiment_id:12s} {EXPERIMENTS[experiment_id].description}")
        return 0

    scale = get_scale(args.scale)
    if args.command == "run":
        print(run_experiment(args.experiment, scale=scale, seed=args.seed))
        return 0

    for experiment_id in sorted(EXPERIMENTS):
        print(f"==== {experiment_id} ====")
        print(run_experiment(experiment_id, scale=scale, seed=args.seed))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
