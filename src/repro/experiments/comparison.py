"""The Figs. 6-8 comparison sweeps.

The paper compares DRL-CEWS with DPPO, Edics, D&C and Greedy while varying
one scenario dimension at a time:

* number of PoIs ``P`` (Figs. 6a / 7a / 8a),
* number of workers ``W`` (6b / 7b / 8b),
* energy budget ``b0`` (6c / 7c / 8c),
* number of charging stations (6d / 7d / 8d),

reporting κ (Fig. 6), ξ (Fig. 7) and ρ (Fig. 8) for each point.  All three
figures come from one sweep, so the sweep result is computed once and
cached; the per-figure runners select the metric.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .cache import cached_run
from .scales import Scale, current_scale, scale_params
from .training import ALL_METHODS, evaluate_method, method_display_name

__all__ = [
    "SWEEPS",
    "sweep_values",
    "run_sweep",
    "run_all_sweeps",
    "figure_series",
]

#: Sweep dimension -> ScenarioConfig field it overrides.
SWEEPS = {
    "pois": "num_pois",
    "workers": "num_workers",
    "budget": "energy_budget",
    "stations": "num_stations",
}

_SWEEP_VALUES = {
    "smoke": {
        "pois": [20, 40, 60],
        "workers": [1, 2, 3],
        "budget": [4.0, 8.0, 16.0],
        "stations": [1, 2, 4],
    },
    "short": {
        "pois": [40, 80, 160],
        "workers": [1, 2, 4, 6],
        "budget": [5.0, 10.0, 20.0],
        "stations": [1, 2, 4, 6],
    },
    "paper": {
        "pois": [100, 200, 300, 400, 500],
        "workers": [1, 2, 5, 10, 25],
        "budget": [20.0, 40.0, 60.0, 80.0],
        "stations": [2, 4, 6, 8, 10],
    },
}


def sweep_values(sweep: str, scale: Scale) -> List:
    """The x-axis values of ``sweep`` at ``scale``."""
    if sweep not in SWEEPS:
        raise KeyError(f"unknown sweep {sweep!r}; choose from {sorted(SWEEPS)}")
    return list(_SWEEP_VALUES[scale.name][sweep])


def run_sweep(
    sweep: str,
    scale: Scale | None = None,
    methods: Sequence[str] = ALL_METHODS,
    seed: int = 0,
) -> Dict:
    """Evaluate ``methods`` across one sweep; cached on disk.

    Returns ``{"sweep", "values", "results": {method: {metric: [..]}}}``
    with one list entry per sweep value.
    """
    scale = scale if scale is not None else current_scale()
    values = sweep_values(sweep, scale)
    params = {
        "sweep": sweep,
        "scale": scale_params(scale),
        "methods": list(methods),
        "seed": seed,
        "values": values,
    }

    def compute() -> Dict:
        field = SWEEPS[sweep]
        results: Dict[str, Dict[str, List[float]]] = {
            method: {"kappa": [], "xi": [], "rho": []} for method in methods
        }
        for value in values:
            config = scale.scenario(**{field: value})
            for method in methods:
                metrics = evaluate_method(method, config, scale, seed=seed)
                for key in ("kappa", "xi", "rho"):
                    results[method][key].append(metrics[key])
        return {"sweep": sweep, "scale": scale.name, "values": values, "results": results}

    return cached_run("comparison", params, compute)


def run_all_sweeps(
    scale: Scale | None = None,
    methods: Sequence[str] = ALL_METHODS,
    seed: int = 0,
) -> Dict[str, Dict]:
    """All four sweeps (the complete data behind Figs. 6-8)."""
    scale = scale if scale is not None else current_scale()
    return {
        sweep: run_sweep(sweep, scale=scale, methods=methods, seed=seed)
        for sweep in SWEEPS
    }


def figure_series(sweep_result: Dict, metric: str) -> List[tuple[str, List, List[float]]]:
    """(display name, xs, ys) triples for one figure panel."""
    if metric not in ("kappa", "xi", "rho"):
        raise ValueError(f"metric must be kappa/xi/rho, got {metric!r}")
    xs = sweep_result["values"]
    return [
        (method_display_name(method), xs, series[metric])
        for method, series in sweep_result["results"].items()
    ]
