"""Table II — impact of the two DNN hyperparameters.

The paper sweeps the number of employees {1, 2, 4, 8, 16} against the
update batch size {50, 125, 250, 500} and reports κ / ξ / ρ of the trained
DRL-CEWS policy for every cell, concluding that 8 employees with batch 250
is the sweet spot.  This runner reproduces the grid (scaled value lists at
the smaller presets) and also records training wall time per cell, which
doubles as the data for Fig. 3.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .cache import cached_run
from .scales import Scale, current_scale, scale_params
from .training import evaluate_agent, train_method

__all__ = ["employee_counts", "batch_sizes", "run_table2"]

_EMPLOYEES = {
    "smoke": [1, 2, 4],
    "short": [1, 2, 4, 8],
    "paper": [1, 2, 4, 8, 16],
}
_BATCHES = {
    "smoke": [20, 40, 80],
    "short": [30, 60, 120],
    "paper": [50, 125, 250, 500],
}


def employee_counts(scale: Scale) -> List[int]:
    return list(_EMPLOYEES[scale.name])


def batch_sizes(scale: Scale) -> List[int]:
    return list(_BATCHES[scale.name])


def run_table2(scale: Scale | None = None, seed: int = 0) -> Dict:
    """The full hyperparameter grid.

    Returns ``{"employees", "batches", "cells": {batch: {employees:
    {kappa, xi, rho, train_time}}}}`` (string keys, JSON-friendly).
    """
    scale = scale if scale is not None else current_scale()
    employees = employee_counts(scale)
    batches = batch_sizes(scale)
    params = {
        "scale": scale_params(scale),
        "seed": seed,
        "employees": employees,
        "batches": batches,
    }

    def compute() -> Dict:
        config = scale.scenario()
        cells: Dict[str, Dict[str, Dict[str, float]]] = {}
        for batch in batches:
            row: Dict[str, Dict[str, float]] = {}
            for count in employees:
                agent, history = train_method(
                    "cews",
                    config,
                    scale,
                    seed=seed,
                    num_employees=count,
                    batch_size=batch,
                )
                metrics = evaluate_agent(
                    agent, config, scale, seed=seed, reward_mode="sparse"
                )
                metrics["train_time"] = history.total_wall_time
                row[str(count)] = metrics
            cells[str(batch)] = row
        return {
            "scale": scale.name,
            "employees": employees,
            "batches": batches,
            "cells": cells,
        }

    return cached_run("table2", params, compute)
