"""Fig. 3 — training wall time versus number of employees.

The paper fixes the batch size at 250 and shows how total training time
grows with the employee count (45.5% longer at 16 employees than at 8 for
only 1.7% more ρ).  We reuse the Table II grid: its cells already record
per-cell wall time, so this runner just extracts the relevant row.
"""

from __future__ import annotations

from typing import Dict, List

from .scales import Scale, current_scale
from .table2 import batch_sizes, run_table2

__all__ = ["run_fig3"]


def run_fig3(scale: Scale | None = None, seed: int = 0, batch: int | None = None) -> Dict:
    """Training time (and ρ) per employee count at one batch size.

    ``batch`` defaults to the scale's analogue of the paper's 250 (the
    second-largest batch in the grid).
    """
    scale = scale if scale is not None else current_scale()
    table = run_table2(scale=scale, seed=seed)
    available = batch_sizes(scale)
    if batch is None:
        batch = available[-2] if len(available) >= 2 else available[-1]
    if batch not in available:
        raise ValueError(f"batch {batch} not in the Table II grid {available}")
    row = table["cells"][str(batch)]
    employees: List[int] = table["employees"]
    return {
        "scale": scale.name,
        "batch": batch,
        "employees": employees,
        "train_time": [row[str(count)]["train_time"] for count in employees],
        "rho": [row[str(count)]["rho"] for count in employees],
    }
