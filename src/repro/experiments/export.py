"""Aggregate all rendered experiment artifacts into one markdown report.

``pytest benchmarks/`` leaves one ``results/<experiment>.txt`` per table /
figure; :func:`write_report` stitches them (in the paper's order) into
``results/REPORT.md`` so the whole evaluation section can be read — or
committed — as a single document.

Also exposed as a CLI: ``python -m repro.experiments.export``.
"""

from __future__ import annotations

import datetime
from pathlib import Path
from typing import List, Optional, Sequence

from .cache import result_cache_dir

__all__ = ["ARTIFACT_ORDER", "collect_artifacts", "write_report"]

#: Paper order of the artifacts (extensions last).
ARTIFACT_ORDER: Sequence[str] = (
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "fig6a", "fig6b", "fig6c", "fig6d",
    "fig7a", "fig7b", "fig7c", "fig7d",
    "fig8a", "fig8b", "fig8c", "fig8d",
    "fig9",
    "fig2c",
    "ablation-eta",
    "ablation-returns",
    "ablation-layernorm",
    "async-study",
)

_TITLES = {
    "table2": "Table II — impact of #employees x batch size",
    "fig3": "Fig. 3 — training time vs #employees",
    "fig4": "Fig. 4 — curiosity feature selection",
    "fig5": "Fig. 5 — reward mechanisms x curiosity",
    "fig9": "Fig. 9 — curiosity heat maps",
    "fig2c": "Fig. 2(c) — trajectories",
    "ablation-eta": "Extra ablation — curiosity scale η",
    "ablation-returns": "Extra ablation — GAE vs Monte-Carlo",
    "ablation-layernorm": "Extra ablation — layer normalization",
    "async-study": "Extra study — sync vs async (V-trace)",
}


def _title_for(artifact: str) -> str:
    if artifact in _TITLES:
        return _TITLES[artifact]
    if artifact.startswith(("fig6", "fig7", "fig8")):
        metric = {"6": "kappa", "7": "xi", "8": "rho"}[artifact[3]]
        return f"Fig. {artifact[3]}({artifact[4]}) — {metric} sweep"
    return artifact


def collect_artifacts(directory: Optional[Path] = None) -> List[Path]:
    """Artifact files present in ``directory``, in paper order."""
    directory = directory if directory is not None else result_cache_dir()
    found = []
    for artifact in ARTIFACT_ORDER:
        path = directory / f"{artifact}.txt"
        if path.exists():
            found.append(path)
    return found


def write_report(
    directory: Optional[Path] = None, output: Optional[Path] = None
) -> Path:
    """Write ``REPORT.md`` from the available artifacts; returns its path."""
    directory = directory if directory is not None else result_cache_dir()
    output = output if output is not None else directory / "REPORT.md"
    artifacts = collect_artifacts(directory)

    lines = [
        "# Reproduced evaluation artifacts",
        "",
        # Report banner timestamp: presentation only, never feeds any
        # deterministic computation.
        f"Generated {datetime.datetime.now():%Y-%m-%d %H:%M} from "  # reprolint: disable=RPL006
        f"`{directory}`.  Regenerate any artifact with "
        "`pytest benchmarks/ --benchmark-only` or "
        "`python -m repro.experiments run <id>`.",
        "",
    ]
    if not artifacts:
        lines.append("*(no artifacts found — run the benchmarks first)*")
    for path in artifacts:
        lines.append(f"## {_title_for(path.stem)}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")

    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text("\n".join(lines))
    return output


if __name__ == "__main__":
    from ..obs.log import configure_logging, get_logger

    configure_logging(level="INFO")
    get_logger(__name__).info("wrote %s", write_report())
