"""Extra ablations beyond the paper's own studies.

DESIGN.md calls out three design choices worth isolating:

* ``eta`` — the curiosity scale η of Eqn. (17) (the paper fixes 0.3);
* ``returns`` — GAE advantages vs the paper's Monte-Carlo ``G_t - V``;
* ``layernorm`` — the CNN trunk's layer normalization on vs off (the
  paper adds it "to make the updating process more stable").

Each ablation trains DRL-CEWS variants on the default scenario and
reports final training metrics per arm.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..agents.cews import CEWSAgent
from ..agents.ppo import PPOConfig
from ..distributed.trainer import ChiefEmployeeTrainer
from ..env.env import CrowdsensingEnv
from ..env.generator import generate_scenario
from .cache import cached_run
from .scales import Scale, current_scale, scale_params
from .training import make_train_config

__all__ = ["run_eta_ablation", "run_returns_ablation", "run_layernorm_ablation"]

ETA_VALUES = (0.0, 0.1, 0.3, 1.0)


def _train_cews_variant(
    config,
    scale: Scale,
    seed: int,
    ppo: PPOConfig,
    agent_kwargs: Dict,
) -> Dict[str, float]:
    """Train one CEWS variant under the chief–employee loop; summarize."""
    scenario = generate_scenario(config)

    def make_agent(agent_seed: int) -> CEWSAgent:
        return CEWSAgent(
            config, scenario=scenario, ppo=ppo, seed=agent_seed, **agent_kwargs
        )

    trainer = ChiefEmployeeTrainer(
        global_agent=make_agent(seed),
        agent_factory=lambda i: make_agent(seed + 1000 + i),
        env_factory=lambda i: CrowdsensingEnv(
            config, reward_mode="sparse", scenario=scenario
        ),
        config=make_train_config(scale, seed=seed),
    )
    try:
        history = trainer.train()
    finally:
        trainer.close()
    tail = max(len(history.logs) // 4, 1)
    return {
        "kappa": float(np.mean(history.curve("kappa")[-tail:])),
        "xi": float(np.mean(history.curve("xi")[-tail:])),
        "rho": float(np.mean(history.curve("rho")[-tail:])),
        "intrinsic": float(np.mean(history.curve("intrinsic_reward")[-tail:])),
    }


def _ppo(scale: Scale, **overrides) -> PPOConfig:
    base = dict(
        batch_size=scale.batch_size,
        epochs=1,
        learning_rate=scale.learning_rate,
        curiosity_learning_rate=5 * scale.learning_rate,
    )
    base.update(overrides)
    return PPOConfig(**base)


def run_eta_ablation(scale: Optional[Scale] = None, seed: int = 0) -> Dict:
    """Sweep the curiosity scale η (0 disables curiosity entirely)."""
    scale = scale if scale is not None else current_scale()
    params = {"scale": scale_params(scale), "seed": seed, "etas": list(ETA_VALUES)}

    def compute() -> Dict:
        config = scale.scenario()
        arms = {
            str(eta): _train_cews_variant(
                config, scale, seed, _ppo(scale), {"eta": eta}
            )
            for eta in ETA_VALUES
        }
        return {"scale": scale.name, "etas": list(ETA_VALUES), "arms": arms}

    return cached_run("ablation-eta", params, compute)


def run_returns_ablation(scale: Optional[Scale] = None, seed: int = 0) -> Dict:
    """GAE(λ=0.95) vs Monte-Carlo advantages (the paper's Eqn. 11 target)."""
    scale = scale if scale is not None else current_scale()
    params = {"scale": scale_params(scale), "seed": seed}

    def compute() -> Dict:
        config = scale.scenario()
        arms = {
            "gae": _train_cews_variant(
                config, scale, seed, _ppo(scale, gae_lambda=0.95), {}
            ),
            "monte-carlo": _train_cews_variant(
                config, scale, seed, _ppo(scale, gae_lambda=None), {}
            ),
        }
        return {"scale": scale.name, "arms": arms}

    return cached_run("ablation-returns", params, compute)


def run_layernorm_ablation(scale: Optional[Scale] = None, seed: int = 0) -> Dict:
    """CNN trunk layer normalization on vs off."""
    scale = scale if scale is not None else current_scale()
    params = {"scale": scale_params(scale), "seed": seed}

    def compute() -> Dict:
        config = scale.scenario()
        arms = {
            "layernorm": _train_cews_variant(
                config, scale, seed, _ppo(scale), {"layer_norm": True}
            ),
            "no-layernorm": _train_cews_variant(
                config, scale, seed, _ppo(scale), {"layer_norm": False}
            ),
        }
        return {"scale": scale.name, "arms": arms}

    return cached_run("ablation-layernorm", params, compute)
