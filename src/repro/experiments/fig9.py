"""Fig. 9 — curiosity visualization for DRL-CEWS vs DPPO.

The paper trains both methods with W=1 (P=300) and, at five points during
training (episodes 0, 150, 300, 450, 600), plots the curiosity value at
every location the worker has passed.  Brightness shrinks as the policy
stabilizes; DRL-CEWS lights up a much larger area (including the corner
room) than DPPO because curiosity drives its exploration.

Reproduction: both arms carry a spatial curiosity model — DRL-CEWS with
the paper's η, the DPPO arm with η = 0 so the model trains *passively* on
DPPO's transitions and merely measures novelty without shaping reward.
Training pauses at evenly spaced checkpoints; at each we roll one episode
with the current stochastic policy and grid the raw forward-model errors
at visited cells.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..distributed import build_trainer
from ..env.env import CrowdsensingEnv
from .cache import cached_run
from .scales import Scale, current_scale, scale_params
from .training import make_ppo_config, make_train_config
from .visualize import curiosity_heatmap

__all__ = ["NUM_CHECKPOINTS", "run_fig9"]

NUM_CHECKPOINTS = 5


def _rollout_records(agent, env: CrowdsensingEnv, rng: np.random.Generator):
    """One stochastic episode; returns (positions, moves, next_positions)."""
    env.reset()
    positions, moves, next_positions = [], [], []
    done = False
    while not done:
        before = env.workers.positions.copy()
        action = agent.act(env, rng, greedy=False)
        __, __, done, info = env.step(action)
        positions.append(before)
        moves.append(action.move.copy())
        next_positions.append(info["positions"].copy())
    return np.stack(positions), np.stack(moves), np.stack(next_positions)


def run_fig9(scale: Scale | None = None, seed: int = 0) -> Dict:
    """Heat-map sequences for both methods.

    Returns ``{"checkpoints": [...episode numbers...], "heatmaps":
    {method: [grid-as-nested-list, ...]}}``.
    """
    scale = scale if scale is not None else current_scale()
    params = {"scale": scale_params(scale), "seed": seed}

    def compute() -> Dict:
        config = scale.scenario(num_workers=1)
        arms = {
            "DRL-CEWS": {"curiosity": "spatial", "eta": 0.3},
            # η = 0: the curiosity model observes but does not reward.
            "DPPO": {"curiosity": "spatial", "eta": 0.0},
        }
        chunk = max(scale.episodes // NUM_CHECKPOINTS, 1)
        checkpoints = [chunk * (i + 1) for i in range(NUM_CHECKPOINTS)]
        heatmaps: Dict[str, List] = {}
        for name, overrides in arms.items():
            method = "cews" if name == "DRL-CEWS" else "dppo"
            trainer = build_trainer(
                method,
                config,
                train=make_train_config(scale, seed=seed),
                ppo=make_ppo_config(scale),
                seed=seed,
                **overrides,
            )
            rng = np.random.default_rng(seed + 13)
            env = CrowdsensingEnv(
                config,
                reward_mode=getattr(trainer.global_agent, "reward_mode", "dense"),
                scenario=trainer.global_agent.scenario
                if hasattr(trainer.global_agent, "scenario")
                else None,
            )
            grids = []
            try:
                for __ in checkpoints:
                    trainer.train(chunk)
                    positions, moves, next_positions = _rollout_records(
                        trainer.global_agent, env, rng
                    )
                    grid = curiosity_heatmap(
                        trainer.global_agent.curiosity,
                        env.space,
                        positions,
                        moves,
                        next_positions,
                    )
                    grids.append(grid.tolist())
            finally:
                trainer.close()
            heatmaps[name] = grids
        return {"scale": scale.name, "checkpoints": checkpoints, "heatmaps": heatmaps}

    return cached_run("fig9", params, compute)
