"""On-disk result cache for experiment runners.

Training a method is the expensive part of every experiment; several
figures share the same trained policies (Figs. 6, 7 and 8 all evaluate one
sweep).  Results are memoized as JSON under ``results/`` keyed by a stable
hash of the experiment id and its parameters, so repeated benchmark runs
and sibling figures reuse completed work.

Set ``REPRO_NO_CACHE=1`` to bypass the cache entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Optional

__all__ = [
    "CACHE_VERSION",
    "result_cache_dir",
    "cache_key",
    "load_cached",
    "store_cached",
    "cached_run",
]

#: Bump when training semantics change so stale cached results are not
#: mistaken for current ones (the version is folded into every cache key).
CACHE_VERSION = 2


def result_cache_dir() -> Path:
    """Cache directory: ``$REPRO_RESULTS_DIR`` or ``<repo>/results``."""
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results"


def cache_key(experiment: str, params: Dict[str, Any]) -> str:
    """Stable key from the experiment id and a JSON-serializable param dict."""
    salted = {"__cache_version__": CACHE_VERSION, **params}
    canonical = json.dumps(salted, sort_keys=True, default=str)
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:16]
    return f"{experiment}-{digest}"


def _cache_disabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")


def load_cached(key: str) -> Optional[Dict[str, Any]]:
    """Read a cached result, or None on miss / disabled / corrupt file."""
    if _cache_disabled():
        return None
    path = result_cache_dir() / f"{key}.json"
    if not path.exists():
        return None
    try:
        with open(path) as handle:
            return json.load(handle)
    except (json.JSONDecodeError, OSError):
        # A truncated cache file (e.g. an interrupted run) is treated as a
        # miss; the runner will regenerate and overwrite it.
        return None


def store_cached(key: str, payload: Dict[str, Any]) -> None:
    """Atomically write a result under ``key`` (no-op when disabled)."""
    if _cache_disabled():
        return
    directory = result_cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key}.json"
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=1, default=float)
    os.replace(tmp, path)


def cached_run(
    experiment: str,
    params: Dict[str, Any],
    compute: Callable[[], Dict[str, Any]],
) -> Dict[str, Any]:
    """Return the cached result for (experiment, params) or compute+store it."""
    key = cache_key(experiment, params)
    cached = load_cached(key)
    if cached is not None:
        return cached
    result = compute()
    store_cached(key, result)
    return result
