"""Fig. 5 — dense vs sparse extrinsic reward, with and without curiosity.

The 2x2 ablation of Section VII-E (W=2, P=300 in the paper):

* sparse reward + curiosity (DRL-CEWS itself — best everywhere),
* sparse reward only (fails: DRL can't learn from sparse reward alone),
* dense reward + curiosity (curiosity speeds early training, small final
  gain),
* dense reward only (good but below sparse+curiosity).

Each arm trains the same PPO agent; only the reward mode and the curiosity
module change.
"""

from __future__ import annotations

from typing import Dict, List

from .cache import cached_run
from .scales import Scale, current_scale, scale_params
from .training import train_method

__all__ = ["REWARD_ARMS", "run_fig5"]

#: arm name -> build_agent keyword overrides
REWARD_ARMS: Dict[str, Dict] = {
    "sparse + curiosity": {"reward": "sparse", "curiosity": "spatial"},
    "sparse only": {"reward": "sparse", "curiosity": "none"},
    "dense + curiosity": {"reward": "dense", "curiosity": "spatial"},
    "dense only": {"reward": "dense", "curiosity": "none"},
}


def run_fig5(scale: Scale | None = None, seed: int = 0) -> Dict:
    """Learning curves for the four reward/curiosity arms."""
    scale = scale if scale is not None else current_scale()
    params = {"scale": scale_params(scale), "seed": seed, "arms": sorted(REWARD_ARMS)}

    def compute() -> Dict:
        config = scale.scenario()
        curves: Dict[str, Dict[str, List[float]]] = {}
        for arm, overrides in REWARD_ARMS.items():
            __, history = train_method("cews", config, scale, seed=seed, **overrides)
            curves[arm] = {
                "kappa": history.curve("kappa"),
                "xi": history.curve("xi"),
                "rho": history.curve("rho"),
            }
        return {"scale": scale.name, "episodes": scale.episodes, "curves": curves}

    return cached_run("fig5", params, compute)
