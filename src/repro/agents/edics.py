"""Edics baseline — multi-agent DRL crowdsensing (Liu et al., JSAC 2019).

Section VII-B: "We implement it by using W agents, each of which makes
task assignment decision for one worker", trained on the dense reward of
Eqn. (20).  Each per-worker agent owns a CNN actor-critic whose input is
the global 3-channel state plus a fourth *identity* channel marking that
worker's own position, so an agent can tell itself apart from its peers.
Every agent is updated with PPO on its own per-worker reward stream.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .. import nn
from ..env.actions import Action
from ..env.config import ScenarioConfig
from ..env.env import CrowdsensingEnv
from ..env.state import STATE_CHANNELS
from .base import EpisodeResult
from .networks import CNNActorCritic
from .policy import GradientPack
from .ppo import PPOConfig, PPOStats, ppo_loss
from .rollout import MiniBatch, RolloutBuffer, Transition

__all__ = ["EdicsAgent", "EdicsRollout"]


def _with_identity_channel(
    state: np.ndarray, position: np.ndarray, space, capacity_marker: float = 1.0
) -> np.ndarray:
    """Append a one-hot channel marking the deciding worker's own cell."""
    row, col = space.cell_of(position)
    identity = np.zeros((1,) + state.shape[1:])
    identity[0, row, col] = capacity_marker
    return np.concatenate([state, identity], axis=0)


class EdicsRollout:
    """W per-worker rollout buffers sampled with aligned indices."""

    def __init__(self, buffers: List[RolloutBuffer]):
        if not buffers:
            raise ValueError("EdicsRollout needs at least one buffer")
        self.buffers = buffers

    def __len__(self) -> int:
        return len(self.buffers[0])

    def minibatches(
        self, batch_size: int, rng: np.random.Generator, epochs: int = 1
    ) -> Iterator[List[MiniBatch]]:
        """Yield per-worker minibatch lists drawn with shared indices."""
        count = len(self)
        for __ in range(epochs):
            order = rng.permutation(count)
            for start in range(0, count, batch_size):
                indices = order[start : start + batch_size]
                yield [buffer._gather(indices) for buffer in self.buffers]

    def full_batch(self) -> List[MiniBatch]:
        """Every worker's whole trajectory, aligned by time index."""
        indices = np.arange(len(self))
        return [buffer._gather(indices) for buffer in self.buffers]


class EdicsAgent:
    """W independent single-worker PPO agents over identity-augmented states."""

    name = "Edics"
    #: reward mode the training environment should use for this agent
    reward_mode = "dense"

    def __init__(
        self,
        config: ScenarioConfig,
        ppo: Optional[PPOConfig] = None,
        seed: int = 0,
        feature_dim: int = 64,
    ):
        self.config = config
        self.ppo = ppo if ppo is not None else PPOConfig()
        self.networks = [
            CNNActorCritic(
                channels=STATE_CHANNELS + 1,
                grid=config.grid,
                num_workers=1,
                feature_dim=feature_dim,
                rng=np.random.default_rng(seed + w),
            )
            for w in range(config.num_workers)
        ]

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------
    def _decide(
        self,
        env: CrowdsensingEnv,
        rng: np.random.Generator,
        greedy: bool,
    ) -> Tuple[Action, np.ndarray, np.ndarray, List[np.ndarray], np.ndarray]:
        """Per-worker forward passes; returns action plus PPO bookkeeping."""
        state = env._state()
        move_mask = env.valid_moves()
        moves = np.zeros(env.num_workers, dtype=np.int64)
        charges = np.zeros(env.num_workers, dtype=np.int64)
        log_probs = np.zeros(env.num_workers)
        values = np.zeros(env.num_workers)
        aug_states: List[np.ndarray] = []
        worker_features = np.concatenate(
            [
                env.workers.positions / env.config.size,
                (env.workers.energy / env.workers.capacity)[:, None],
            ],
            axis=1,
        )
        # Acting never backpropagates (the PPO update recomputes its own
        # forward passes), so elide the autograd tape for every per-worker
        # decision forward.
        with nn.no_grad():
            for w, network in enumerate(self.networks):
                aug = _with_identity_channel(state, env.workers.positions[w], env.space)
                aug_states.append(aug)
                output = network.forward(
                    aug,
                    move_mask=move_mask[None, w : w + 1],
                    worker_features=worker_features[None, w : w + 1],
                )
                move_dist = output.move_distribution()
                charge_dist = output.charge_distribution()
                if greedy:
                    move = move_dist.mode()[0, 0]
                    charge = charge_dist.mode()[0, 0]
                else:
                    move = move_dist.sample(rng)[0, 0]
                    charge = charge_dist.sample(rng)[0, 0]
                moves[w] = move
                charges[w] = charge
                log_probs[w] = float(
                    output.log_prob(np.array([[move]]), np.array([[charge]])).item()
                )
                values[w] = float(output.value.item())
        action = Action(charge=charges, move=moves)
        return action, log_probs, values, aug_states, move_mask, worker_features

    def act(
        self, env: CrowdsensingEnv, rng: np.random.Generator, greedy: bool = False
    ) -> Action:
        """Choose every worker's action via its own network."""
        action, __, __, __, __, __ = self._decide(env, rng, greedy)
        return action

    # ------------------------------------------------------------------
    # Rollout collection (per-worker buffers, per-worker dense rewards)
    # ------------------------------------------------------------------
    def collect_episode(
        self, env: CrowdsensingEnv, rng: np.random.Generator
    ) -> Tuple[EdicsRollout, EpisodeResult]:
        """Roll one episode, filling one buffer per worker with its own
        dense reward stream."""
        buffers = [
            RolloutBuffer(gamma=self.ppo.gamma, gae_lambda=self.ppo.gae_lambda)
            for __ in range(env.num_workers)
        ]
        env.reset()
        extrinsic_total = 0.0
        done = False
        steps = 0
        while not done:
            positions_before = env.workers.positions.copy()
            action, log_probs, values, aug_states, move_mask, worker_features = (
                self._decide(env, rng, greedy=False)
            )
            next_state, reward, done, info = env.step(action)
            per_worker = info["reward_per_worker"]
            extrinsic_total += reward
            next_positions = info["positions"]
            for w in range(env.num_workers):
                aug_next = _with_identity_channel(
                    next_state, next_positions[w], env.space
                )
                buffers[w].add(
                    Transition(
                        state=aug_states[w],
                        move_mask=move_mask[w : w + 1],
                        moves=action.move[w : w + 1],
                        charges=action.charge[w : w + 1],
                        log_prob=float(log_probs[w]),
                        value=float(values[w]),
                        reward=float(per_worker[w]),
                        done=done,
                        positions=positions_before[w : w + 1],
                        next_positions=next_positions[w : w + 1].copy(),
                        next_state=aug_next,
                        worker_features=worker_features[w : w + 1],
                    )
                )
            steps += 1
        for buffer in buffers:
            buffer.finalize(bootstrap_value=0.0)
        result = EpisodeResult(
            metrics=env.metrics(), extrinsic_reward=extrinsic_total, steps=steps
        )
        return EdicsRollout(buffers), result

    # ------------------------------------------------------------------
    # Gradients (uniform protocol with PPOWorkerAgent)
    # ------------------------------------------------------------------
    def policy_parameters(self) -> List[nn.Parameter]:
        """All W networks' parameters, concatenated in worker order."""
        params: List[nn.Parameter] = []
        for network in self.networks:
            params.extend(network.parameters())
        return params

    def curiosity_parameters(self) -> List[nn.Parameter]:
        """Edics has no curiosity model (always empty)."""
        return []

    def compute_gradients(self, batches: List[MiniBatch]) -> GradientPack:
        """PPO gradients for all W agents; ``batches`` is one list per worker."""
        if len(batches) != len(self.networks):
            raise ValueError(
                f"got {len(batches)} worker batches for {len(self.networks)} networks"
            )
        grads: List[np.ndarray] = []
        stats_list: List[PPOStats] = []
        for network, batch in zip(self.networks, batches):
            for param in network.parameters():
                param.grad = None
            loss, stats = ppo_loss(network, batch, self.ppo)
            loss.backward()
            grads.extend(
                np.zeros_like(p.data) if p.grad is None else p.grad.copy()
                for p in network.parameters()
            )
            stats_list.append(stats)
        merged = PPOStats(
            policy_loss=float(np.mean([s.policy_loss for s in stats_list])),
            value_loss=float(np.mean([s.value_loss for s in stats_list])),
            entropy=float(np.mean([s.entropy for s in stats_list])),
            clip_fraction=float(np.mean([s.clip_fraction for s in stats_list])),
            approx_kl=float(np.mean([s.approx_kl for s in stats_list])),
        )
        return GradientPack(policy=grads, curiosity=[], stats=merged)

    # ------------------------------------------------------------------
    # Standalone training
    # ------------------------------------------------------------------
    def train(
        self,
        env: CrowdsensingEnv,
        episodes: int,
        rng: Optional[np.random.Generator] = None,
        learning_rate: Optional[float] = None,
    ) -> List[EpisodeResult]:
        """Standalone (single-process) training loop over all W agents."""
        rng = rng if rng is not None else np.random.default_rng(0)
        lr = learning_rate if learning_rate is not None else self.ppo.learning_rate
        optimizer = nn.Adam(self.policy_parameters(), lr=lr)
        results = []
        for __ in range(episodes):
            rollout, result = self.collect_episode(env, rng)
            for batch_list in rollout.minibatches(
                self.ppo.batch_size, rng, epochs=self.ppo.epochs
            ):
                pack = self.compute_gradients(batch_list)
                params = self.policy_parameters()
                for param, grad in zip(params, pack.policy):
                    param.grad = grad
                nn.clip_grad_norm(params, self.ppo.max_grad_norm)
                optimizer.step()
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    def copy_parameters_from(self, other: "EdicsAgent") -> None:
        """In-place parameter copy from a same-shape Edics agent."""
        if len(self.networks) != len(other.networks):
            raise ValueError("worker counts differ")
        for mine, theirs in zip(self.networks, other.networks):
            mine.copy_from(theirs)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """All W networks' parameters, keyed ``worker<i>.<param>``."""
        state: Dict[str, np.ndarray] = {}
        for w, network in enumerate(self.networks):
            for key, value in network.state_dict().items():
                state[f"worker{w}.{key}"] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        for w, network in enumerate(self.networks):
            prefix = f"worker{w}."
            network.load_state_dict(
                {
                    key[len(prefix):]: value
                    for key, value in state.items()
                    if key.startswith(prefix)
                }
            )
