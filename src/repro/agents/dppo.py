"""DPPO baseline (Heess et al. 2017; Section VII-B).

Distributed PPO with the same CNN actor-critic and chief–employee carrier
as DRL-CEWS but:

* **dense** extrinsic reward (Eqn. 20),
* **no curiosity**,
* per-batch advantage normalization (the trick the paper adopts from the
  DPPO paper), 8 employees, batch size 250.

Because the only differences from DRL-CEWS are the reward signal and the
missing intrinsic reward, comparisons between the two isolate the paper's
contribution.
"""

from __future__ import annotations

from typing import Optional

from ..curiosity.base import NullCuriosity
from ..env.config import ScenarioConfig
from .policy import PPOWorkerAgent
from .ppo import PPOConfig

__all__ = ["DPPOAgent"]


class DPPOAgent(PPOWorkerAgent):
    """DPPO agent: PPO + dense reward, no curiosity."""

    #: reward mode the training environment should use for this agent
    reward_mode = "dense"

    def __init__(
        self,
        config: ScenarioConfig,
        ppo: Optional[PPOConfig] = None,
        seed: int = 0,
        feature_dim: int = 128,
        layer_norm: bool = True,
    ):
        if ppo is None:
            ppo = PPOConfig(normalize_advantages=True)
        super().__init__(
            config=config,
            curiosity=NullCuriosity(),
            ppo=ppo,
            seed=seed,
            feature_dim=feature_dim,
            layer_norm=layer_norm,
            name="DPPO",
        )
