"""The CNN actor-critic of Section V-B (Fig. 1).

"Given the state in our system is not as complicated as a real image, we
adopt a small CNN which consists of three convolutional layers and one
fully connected layer to output a 1D state feature φ(s_t).  We add layer
normalization to make the updating process more stable."

On top of the trunk sit three heads:

* a **move head** producing, for every worker, logits over the nine
  route-planning decisions ``v_t^w``;
* a **charge head** producing one Bernoulli logit per worker for the
  energy charging decision ``u_t^w``;
* a **value head** ``V(φ(s_t))`` predicting the discounted return.

The heads additionally receive explicit per-worker features
``[x/L, y/L, b/b0]``.  This adds no information beyond the state matrix —
worker positions and energies are already channel 0, and Algorithm 1 has
every worker report "remaining energy, current location" to the server —
but it resolves the which-blob-is-worker-w ambiguity a pure global CNN
readout suffers from, conditioning the policy heads dramatically better
(see DESIGN.md §5a).

Invalid moves are masked to ``-inf`` before sampling, which realizes the
paper's "the server makes valid navigation decision for each worker".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..env.actions import NUM_MOVES

__all__ = ["PolicyOutput", "CNNActorCritic"]

MASKED_LOGIT = -1e9


@dataclass
class PolicyOutput:
    """Everything the policy produces for a batch of states.

    Attributes
    ----------
    move_logits:
        (B, W, NUM_MOVES) tensor, already validity-masked if a mask was
        given.
    charge_logits:
        (B, W) tensor of Bernoulli logits.
    value:
        (B,) tensor of state values.
    """

    move_logits: nn.Tensor
    charge_logits: nn.Tensor
    value: nn.Tensor

    def move_distribution(self) -> nn.Categorical:
        """Per-worker categorical over the nine moves."""
        return nn.Categorical(self.move_logits)

    def charge_distribution(self) -> nn.Bernoulli:
        """Per-worker Bernoulli over the charge decision."""
        return nn.Bernoulli(self.charge_logits)

    def log_prob(self, moves: np.ndarray, charges: np.ndarray) -> nn.Tensor:
        """(B,) joint log-probability of the whole action ``a_t = [u, v]``.

        The policy factorizes over workers and over the two decision types,
        so the joint log-prob is the sum of the parts.
        """
        move_lp = self.move_distribution().log_prob(moves).sum(axis=-1)
        charge_lp = self.charge_distribution().log_prob(
            np.asarray(charges, dtype=np.float64)
        ).sum(axis=-1)
        return move_lp + charge_lp

    def entropy(self) -> nn.Tensor:
        """(B,) total policy entropy (moves + charges, summed over workers)."""
        move_entropy = self.move_distribution().entropy().sum(axis=-1)
        charge_entropy = self.charge_distribution().entropy().sum(axis=-1)
        return move_entropy + charge_entropy


class CNNActorCritic(nn.Module):
    """Three-conv-layer trunk with layer norm, plus policy and value heads.

    Parameters
    ----------
    channels, grid:
        State tensor geometry (channels, grid, grid).
    num_workers:
        ``W`` — the move and charge heads emit per-worker outputs.
    feature_dim:
        Width of the 1-D state feature ``φ(s_t)``.
    """

    def __init__(
        self,
        channels: int,
        grid: int,
        num_workers: int,
        feature_dim: int = 128,
        rng: Optional[np.random.Generator] = None,
        layer_norm: bool = True,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_workers = num_workers
        self.grid = grid
        self.channels = channels
        self.feature_dim = feature_dim
        self.use_layer_norm = layer_norm

        self.conv1 = nn.Conv2d(channels, 8, kernel_size=3, stride=1, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(8, 16, kernel_size=3, stride=2, padding=1, rng=rng)
        self.conv3 = nn.Conv2d(16, 16, kernel_size=3, stride=2, padding=1, rng=rng)
        if layer_norm:
            self.norm1 = nn.ChannelLayerNorm(8)
            self.norm2 = nn.ChannelLayerNorm(16)
            self.norm3 = nn.ChannelLayerNorm(16)

        h, w = grid, grid
        h, w = self.conv1.output_size(h, w)
        h, w = self.conv2.output_size(h, w)
        h, w = self.conv3.output_size(h, w)
        flat = 16 * h * w

        self.fc = nn.Linear(flat, feature_dim, rng=rng)

        #: per-worker feature width: [x/L, y/L, b/b0]
        self.worker_feature_dim = 3
        head_in = feature_dim + num_workers * self.worker_feature_dim
        self.head_trunk = nn.Linear(head_in, feature_dim, rng=rng)
        self.move_head = nn.Linear(
            feature_dim, num_workers * NUM_MOVES, rng=rng,
            weight_init="orthogonal", gain=0.01,
        )
        self.charge_head = nn.Linear(
            feature_dim, num_workers, rng=rng, weight_init="orthogonal", gain=0.01
        )
        # Start with a low charge probability (~12%) so untrained workers
        # explore instead of idling at stations half the time.  Init-time
        # write before any graph exists, so the tape cannot be stale.
        self.charge_head.bias.data[...] = -2.0  # reprolint: disable=RPL003
        self.value_head = nn.Linear(
            feature_dim, 1, rng=rng, weight_init="orthogonal", gain=1.0
        )

    def features(self, states: nn.Tensor) -> nn.Tensor:
        """The trunk: (B, C, G, G) -> (B, feature_dim) feature ``φ(s_t)``."""
        x = self.conv1(states)
        if self.use_layer_norm:
            x = self.norm1(x)
        x = x.relu()
        x = self.conv2(x)
        if self.use_layer_norm:
            x = self.norm2(x)
        x = x.relu()
        x = self.conv3(x)
        if self.use_layer_norm:
            x = self.norm3(x)
        x = x.relu()
        x = x.reshape(x.shape[0], -1)
        return self.fc(x).relu()

    def forward(
        self,
        states: np.ndarray,
        move_mask: Optional[np.ndarray] = None,
        worker_features: Optional[np.ndarray] = None,
        mask_penalty: Optional[np.ndarray] = None,
    ) -> PolicyOutput:
        """Run the network on raw state arrays.

        Parameters
        ----------
        states:
            (B, C, G, G) array (a single (C, G, G) state is auto-batched).
        move_mask:
            Optional (B, W, NUM_MOVES) boolean validity mask; invalid moves
            receive ``MASKED_LOGIT``.
        worker_features:
            Optional (B, W, worker_feature_dim) per-worker features; zeros
            when omitted (the heads then rely on the CNN alone).
        mask_penalty:
            Optional precomputed ``np.where(move_mask, 0.0, MASKED_LOGIT)``
            float array.  The PPO update passes the penalty as a plain
            input so execution-plan capture sees a resolvable leaf
            instead of a per-call temporary; supplying both ``move_mask``
            and ``mask_penalty`` is an error.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim == 3:
            states = states[None]
        batch = states.shape[0]
        phi = self.features(nn.Tensor(states))

        if worker_features is None:
            worker_features = np.zeros(
                (batch, self.num_workers, self.worker_feature_dim)
            )
        else:
            worker_features = np.asarray(worker_features, dtype=np.float64)
            if worker_features.ndim == 2:
                worker_features = worker_features[None]
            expected = (batch, self.num_workers, self.worker_feature_dim)
            if worker_features.shape != expected:
                raise ValueError(
                    f"worker_features shape {worker_features.shape} does not "
                    f"match {expected}"
                )
        flat_features = nn.Tensor(worker_features.reshape(batch, -1))
        head_input = self.head_trunk(nn.concat([phi, flat_features], axis=1)).relu()

        move_logits = self.move_head(head_input).reshape(
            batch, self.num_workers, NUM_MOVES
        )
        if mask_penalty is not None:
            if move_mask is not None:
                raise ValueError("pass either move_mask or mask_penalty, not both")
            move_logits = move_logits + nn.Tensor(mask_penalty)
        elif move_mask is not None:
            move_mask = np.asarray(move_mask, dtype=bool)
            if move_mask.ndim == 2:
                move_mask = move_mask[None]
            if move_mask.shape != (batch, self.num_workers, NUM_MOVES):
                raise ValueError(
                    f"move_mask shape {move_mask.shape} does not match "
                    f"({batch}, {self.num_workers}, {NUM_MOVES})"
                )
            penalty = np.where(move_mask, 0.0, MASKED_LOGIT)
            move_logits = move_logits + nn.Tensor(penalty)

        charge_logits = self.charge_head(head_input)
        value = self.value_head(head_input).reshape(batch)
        return PolicyOutput(move_logits=move_logits, charge_logits=charge_logits, value=value)
