"""Common agent interface and evaluation helpers.

Every method compared in Section VII — DRL-CEWS, DPPO, Edics, Greedy and
D&C — implements :class:`Agent`: given the environment's current situation
it returns one joint :class:`~repro.env.actions.Action`.  The scripted
baselines are stateless; the learned ones wrap networks.

:func:`evaluate_policy` runs the paper's testing process (Section VI-D):
roll the policy (greedy heads, no exploration) for one episode and report
the final κ / ξ / ρ metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

import numpy as np

from ..env.actions import Action
from ..env.env import CrowdsensingEnv
from ..env.metrics import Metrics

__all__ = ["Agent", "EpisodeResult", "evaluate_policy", "run_episode"]


class Agent(Protocol):
    """The common decision interface of all compared methods."""

    name: str

    def act(
        self, env: CrowdsensingEnv, rng: np.random.Generator, greedy: bool = False
    ) -> Action:
        """Choose the joint action for the environment's current state."""
        ...


@dataclass
class EpisodeResult:
    """Outcome of one full episode."""

    metrics: Metrics
    extrinsic_reward: float
    intrinsic_reward: float = 0.0
    steps: int = 0
    trajectory: Optional[List[np.ndarray]] = None
    kappa_curve: List[float] = field(default_factory=list)

    @property
    def total_reward(self) -> float:
        return self.extrinsic_reward + self.intrinsic_reward


def run_episode(
    agent: Agent,
    env: CrowdsensingEnv,
    rng: np.random.Generator,
    greedy: bool = True,
    record_trajectory: bool = False,
    record_kappa: bool = False,
) -> EpisodeResult:
    """Roll ``agent`` for one episode on ``env`` and collect the outcome."""
    env.reset()
    trajectory: Optional[List[np.ndarray]] = [] if record_trajectory else None
    if trajectory is not None:
        trajectory.append(env.workers.positions.copy())
    total_reward = 0.0
    kappa_curve: List[float] = []
    done = False
    steps = 0
    while not done:
        action = agent.act(env, rng, greedy=greedy)
        __, reward, done, info = env.step(action)
        total_reward += reward
        steps += 1
        if trajectory is not None:
            trajectory.append(info["positions"].copy())
        if record_kappa:
            kappa_curve.append(env.metrics().kappa)
    return EpisodeResult(
        metrics=env.metrics(),
        extrinsic_reward=total_reward,
        steps=steps,
        trajectory=trajectory,
        kappa_curve=kappa_curve,
    )


def evaluate_policy(
    agent: Agent,
    env: CrowdsensingEnv,
    rng: Optional[np.random.Generator] = None,
    episodes: int = 1,
    greedy: bool = False,
) -> Metrics:
    """The paper's testing process: roll the trained policy, average metrics.

    Actions are sampled from the policy distribution by default (the
    paper's "use the trained policy network π to output actions");
    ``greedy=True`` takes the argmax instead.
    """
    if episodes < 1:
        raise ValueError(f"episodes must be >= 1, got {episodes}")
    rng = rng if rng is not None else np.random.default_rng(0)
    snapshots = [
        run_episode(agent, env, rng, greedy=greedy).metrics for __ in range(episodes)
    ]
    if episodes == 1:
        return snapshots[0]
    mean = {
        key: float(np.mean([snap.as_dict()[key] for snap in snapshots]))
        for key in snapshots[0].as_dict()
    }
    return Metrics(**mean)
