"""The learned PPO worker-scheduling agent.

:class:`PPOWorkerAgent` is the shared machinery behind DRL-CEWS and the
DPPO baseline: a :class:`~repro.agents.networks.CNNActorCritic` policy, an
optional curiosity module supplying intrinsic rewards, rollout collection
(the *exploration* phase of Algorithm 1) and gradient computation (the
*exploitation* phase).  The chief–employee trainer in
:mod:`repro.distributed` drives many of these agents in parallel; the
agent also supports standalone single-process training for tests and small
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..curiosity.base import CuriosityModule, NullCuriosity, TransitionBatch
from ..env.actions import Action, NUM_MOVES
from ..env.config import ScenarioConfig
from ..env.env import CrowdsensingEnv
from ..env.state import STATE_CHANNELS
from ..obs.trace import span as trace_span
from .base import EpisodeResult
from .networks import CNNActorCritic
from .ppo import PPOConfig, PPOStats, make_ppo_planner, ppo_loss, ppo_step
from .rollout import RolloutBuffer, Transition

__all__ = ["PPOWorkerAgent", "GradientPack"]


@dataclass
class GradientPack:
    """Gradients an employee ships to the chief after one minibatch.

    ``policy`` aligns with ``agent.network.parameters()`` order and
    ``curiosity`` with ``agent.curiosity.parameters()`` order (empty for
    curiosity-free agents).
    """

    policy: List[np.ndarray]
    curiosity: List[np.ndarray]
    stats: PPOStats


class PPOWorkerAgent:
    """PPO agent over the full crowdsensing state.

    Parameters
    ----------
    config:
        Scenario configuration (supplies state geometry and worker count).
    curiosity:
        Intrinsic reward module; :class:`NullCuriosity` disables curiosity.
    ppo:
        PPO hyperparameters.
    seed:
        Seeds the network initialization and the agent's private RNG.
    name:
        Display name used by the experiment harness.
    """

    def __init__(
        self,
        config: ScenarioConfig,
        curiosity: Optional[CuriosityModule] = None,
        ppo: Optional[PPOConfig] = None,
        seed: int = 0,
        feature_dim: int = 128,
        layer_norm: bool = True,
        name: str = "ppo",
    ):
        self.config = config
        self.curiosity = curiosity if curiosity is not None else NullCuriosity()
        self.ppo = ppo if ppo is not None else PPOConfig()
        self.name = name
        self.network = CNNActorCritic(
            channels=STATE_CHANNELS,
            grid=config.grid,
            num_workers=config.num_workers,
            feature_dim=feature_dim,
            rng=np.random.default_rng(seed),
            layer_norm=layer_norm,
        )
        self._needs_states = not isinstance(self.curiosity, NullCuriosity)
        # Lazily-built execution planner for the PPO update program.  It
        # holds compiled closures over the live network parameters, so it
        # is rebuilt (not pickled) on the far side of a process boundary.
        self._planner: Optional[nn.Planner] = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_planner"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._planner = None

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------
    def act(
        self, env: CrowdsensingEnv, rng: np.random.Generator, greedy: bool = False
    ) -> Action:
        """Choose a joint action (sampled, or argmax when ``greedy``)."""
        action, __, __, __, __ = self.act_full(env, rng, greedy=greedy)
        return action

    @staticmethod
    def worker_features_of(env: CrowdsensingEnv) -> np.ndarray:
        """(W, 3) per-worker features ``[x/L, y/L, b/b0]``."""
        return np.concatenate(
            [
                env.workers.positions / env.config.size,
                (env.workers.energy / env.workers.capacity)[:, None],
            ],
            axis=1,
        )

    def act_full(
        self,
        env: CrowdsensingEnv,
        rng: np.random.Generator,
        greedy: bool = False,
        state: Optional[np.ndarray] = None,
    ) -> Tuple[Action, float, float, np.ndarray, np.ndarray]:
        """Choose an action; returns (action, log_prob, value, move_mask,
        worker_features).

        ``state`` lets rollout loops pass the state matrix they already hold
        (from ``reset()``/``step()``) instead of re-encoding it — the encoder
        is deterministic, so the result is unchanged.  The forward pass runs
        under :class:`repro.nn.no_grad`: acting never backpropagates (PPO
        recomputes the forward on minibatches during the update), so taping
        every rollout op is pure overhead.
        """
        if state is None:
            state = env._state()
        move_mask = env.valid_moves()
        worker_features = self.worker_features_of(env)
        with nn.no_grad():
            output = self.network.forward(
                state, move_mask=move_mask[None], worker_features=worker_features[None]
            )
            move_dist = output.move_distribution()
            charge_dist = output.charge_distribution()
            if greedy:
                moves = move_dist.mode()[0]
                charges = charge_dist.mode()[0]
            else:
                moves = move_dist.sample(rng)[0]
                charges = charge_dist.sample(rng)[0]
            log_prob = float(
                output.log_prob(moves[None], charges[None]).item()
            )
            value = float(output.value.item())
        return (
            Action(charge=charges, move=moves),
            log_prob,
            value,
            move_mask,
            worker_features,
        )

    # ------------------------------------------------------------------
    # Exploration phase (Algorithm 1, lines 4-15)
    # ------------------------------------------------------------------
    def collect_episode(
        self,
        env: CrowdsensingEnv,
        rng: np.random.Generator,
        buffer: Optional[RolloutBuffer] = None,
        record_trajectory: bool = False,
    ) -> Tuple[RolloutBuffer, EpisodeResult]:
        """Roll one episode with the stochastic policy, filling ``buffer``.

        Each stored reward is ``r_t = r_t^ext + r_t^int`` (Eqn. 10); the
        intrinsic part is computed on the fly from the curiosity module.
        """
        if buffer is None:
            buffer = RolloutBuffer(gamma=self.ppo.gamma, gae_lambda=self.ppo.gae_lambda)
        with trace_span("env.reset"):
            state = env.reset()
        trajectory = [env.workers.positions.copy()] if record_trajectory else None
        extrinsic_total = 0.0
        intrinsic_total = 0.0
        done = False
        steps = 0
        while not done:
            positions_before = env.workers.positions.copy()
            with trace_span("policy.act", step=steps):
                action, log_prob, value, move_mask, worker_features = self.act_full(
                    env, rng, greedy=False, state=state
                )
            with trace_span("env.step", step=steps):
                next_state, extrinsic, done, info = env.step(action)

            transition_batch = TransitionBatch.single(
                positions=positions_before,
                moves=action.move,
                next_positions=info["positions"],
                state=state if self._needs_states else None,
                next_state=next_state if self._needs_states else None,
            )
            with trace_span("curiosity.intrinsic", step=steps):
                intrinsic = float(self.curiosity.intrinsic_reward(transition_batch)[0])
            reward = extrinsic + intrinsic
            extrinsic_total += extrinsic
            intrinsic_total += intrinsic

            buffer.add(
                Transition(
                    state=state,
                    move_mask=move_mask,
                    moves=action.move,
                    charges=action.charge,
                    log_prob=log_prob,
                    value=value,
                    reward=reward,
                    done=done,
                    positions=positions_before,
                    next_positions=info["positions"].copy(),
                    next_state=next_state,
                    worker_features=worker_features,
                )
            )
            state = next_state
            steps += 1
            if trajectory is not None:
                trajectory.append(info["positions"].copy())

        buffer.finalize(bootstrap_value=0.0)
        result = EpisodeResult(
            metrics=env.metrics(),
            extrinsic_reward=extrinsic_total,
            intrinsic_reward=intrinsic_total,
            steps=steps,
            trajectory=trajectory,
        )
        return buffer, result

    # ------------------------------------------------------------------
    # Exploitation phase (Algorithm 1, lines 16-23)
    # ------------------------------------------------------------------
    def compute_gradients(self, batch, *, normalize_advantages: bool = True) -> GradientPack:
        """Compute PPO and curiosity gradients for one minibatch.

        The agent's parameters are *not* updated — gradients are returned
        for the chief (or a local optimizer) to apply.
        ``normalize_advantages=False`` is the sharded-update entry point:
        the chief has already normalized advantages over the full
        minibatch (see :mod:`repro.agents.sharding`).
        """
        for param in self.network.parameters():
            param.grad = None
        if self._planner is None:
            self._planner = make_ppo_planner(self.network, self.ppo)
        with trace_span("ppo.update"):
            stats = ppo_step(
                self.network,
                batch,
                self.ppo,
                planner=self._planner,
                normalize_advantages=normalize_advantages,
            )
        policy_grads = [
            np.zeros_like(p.data) if p.grad is None else p.grad.copy()
            for p in self.network.parameters()
        ]

        curiosity_grads: List[np.ndarray] = []
        curiosity_params = self.curiosity.parameters()
        if curiosity_params:
            for param in curiosity_params:
                param.grad = None
            curiosity_batch = TransitionBatch(
                positions=batch.positions,
                next_positions=batch.next_positions,
                moves=batch.moves,
                states=batch.states if self._needs_states else None,
                next_states=batch.next_states if self._needs_states else None,
            )
            with trace_span("curiosity.update"):
                self.curiosity.loss(curiosity_batch).backward()
            curiosity_grads = [
                np.zeros_like(p.data) if p.grad is None else p.grad.copy()
                for p in curiosity_params
            ]
        return GradientPack(policy=policy_grads, curiosity=curiosity_grads, stats=stats)

    # ------------------------------------------------------------------
    # Standalone (single-process) training
    # ------------------------------------------------------------------
    def train_episode(
        self,
        env: CrowdsensingEnv,
        rng: np.random.Generator,
        policy_optimizer: nn.Optimizer,
        curiosity_optimizer: Optional[nn.Optimizer] = None,
    ) -> EpisodeResult:
        """Collect one episode and run ``epochs`` PPO passes locally."""
        buffer, result = self.collect_episode(env, rng)
        for batch in buffer.minibatches(self.ppo.batch_size, rng, epochs=self.ppo.epochs):
            pack = self.compute_gradients(batch)
            nn_params = self.network.parameters()
            for param, grad in zip(nn_params, pack.policy):
                param.grad = grad
            nn.clip_grad_norm(nn_params, self.ppo.max_grad_norm)
            policy_optimizer.step()
            if curiosity_optimizer is not None and pack.curiosity:
                cur_params = self.curiosity.parameters()
                for param, grad in zip(cur_params, pack.curiosity):
                    param.grad = grad
                curiosity_optimizer.step()
        return result

    def train(
        self,
        env: CrowdsensingEnv,
        episodes: int,
        rng: Optional[np.random.Generator] = None,
        learning_rate: Optional[float] = None,
    ) -> List[EpisodeResult]:
        """Convenience standalone training loop; returns per-episode results."""
        rng = rng if rng is not None else np.random.default_rng(0)
        lr = learning_rate if learning_rate is not None else self.ppo.learning_rate
        policy_optimizer = nn.Adam(self.network.parameters(), lr=lr)
        curiosity_params = self.curiosity.parameters()
        curiosity_optimizer = (
            nn.Adam(curiosity_params, lr=self.ppo.effective_curiosity_lr)
            if curiosity_params
            else None
        )
        results = []
        for __ in range(episodes):
            results.append(
                self.train_episode(env, rng, policy_optimizer, curiosity_optimizer)
            )
        return results

    # ------------------------------------------------------------------
    # Parameter plumbing (employee <- chief synchronization)
    # ------------------------------------------------------------------
    def policy_parameters(self) -> List[nn.Parameter]:
        """Parameters updated through the PPO gradient buffer."""
        return self.network.parameters()

    def curiosity_parameters(self) -> List[nn.Parameter]:
        """Parameters updated through the curiosity gradient buffer."""
        return self.curiosity.parameters()

    def copy_parameters_from(self, other: "PPOWorkerAgent") -> None:
        """In-place copy of policy and curiosity parameters from ``other``."""
        self.network.copy_from(other.network)
        own_params = self.curiosity.parameters()
        other_params = other.curiosity.parameters()
        if len(own_params) != len(other_params):
            raise ValueError("curiosity modules are structurally different")
        for mine, theirs in zip(own_params, other_params):
            mine.data[...] = theirs.data

    def state_dict(self) -> Dict[str, np.ndarray]:
        """All parameters (network + curiosity), keyed by dotted path."""
        state = {f"network.{k}": v for k, v in self.network.state_dict().items()}
        state.update(
            {f"curiosity.{k}": v for k, v in self.curiosity.state_dict().items()}
        )
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        self.network.load_state_dict(
            {
                key[len("network."):]: value
                for key, value in state.items()
                if key.startswith("network.")
            }
        )
        curiosity_state = {
            key[len("curiosity."):]: value
            for key, value in state.items()
            if key.startswith("curiosity.")
        }
        if curiosity_state or self.curiosity.parameters():
            self.curiosity.load_state_dict(curiosity_state)
