"""DRL-CEWS: the paper's proposed method (Section V).

A :class:`~repro.agents.policy.PPOWorkerAgent` configured exactly as the
paper selects in Sections VII-C/D/E:

* CNN actor-critic with layer normalization (Fig. 1),
* **sparse** extrinsic reward (Eqns. 18-19),
* **spatial curiosity** intrinsic reward with the *shared embedding*
  feature (the winner of the Fig. 4 feature-selection study), η = 0.3,
* trained with PPO under the synchronous chief–employee architecture
  (8 employees, batch size 250 per Table II).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..curiosity.spatial import SpatialCuriosity
from ..env.config import ScenarioConfig
from ..env.generator import Scenario, generate_scenario
from .policy import PPOWorkerAgent
from .ppo import PPOConfig

__all__ = ["CEWSAgent"]


class CEWSAgent(PPOWorkerAgent):
    """DRL-CEWS agent: PPO + spatial curiosity + sparse reward."""

    #: reward mode the training environment should use for this agent
    reward_mode = "sparse"

    def __init__(
        self,
        config: ScenarioConfig,
        scenario: Optional[Scenario] = None,
        ppo: Optional[PPOConfig] = None,
        eta: float = 0.3,
        feature: str = "embedding",
        structure: str = "shared",
        seed: int = 0,
        feature_dim: int = 128,
        layer_norm: bool = True,
    ):
        scenario = scenario if scenario is not None else generate_scenario(config)
        if scenario.config != config:
            raise ValueError("scenario was generated from a different config")
        # feature_seed is tied to the scenario, not the agent seed: every
        # employee's frozen feature table must match the global model's.
        curiosity = SpatialCuriosity(
            scenario.space,
            feature=feature,
            structure=structure,
            num_workers=config.num_workers,
            eta=eta,
            seed=seed,
            feature_seed=config.seed,
        )
        super().__init__(
            config=config,
            curiosity=curiosity,
            ppo=ppo,
            seed=seed,
            feature_dim=feature_dim,
            layer_norm=layer_norm,
            name="DRL-CEWS",
        )
        self.scenario = scenario
