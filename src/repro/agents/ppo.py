"""PPO losses (Section IV and Eqns. 11-12).

:func:`ppo_loss` computes the clipped-surrogate policy objective, the value
loss and the entropy bonus for one minibatch, returning the combined scalar
loss tensor plus diagnostics.  Employees call this, backpropagate, and ship
the resulting gradients to the chief (Algorithm 1, lines 17-21).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..obs.trace import span as trace_span
from .networks import MASKED_LOGIT, CNNActorCritic
from .rollout import MiniBatch

__all__ = ["PPOConfig", "PPOStats", "make_ppo_planner", "ppo_loss", "ppo_step"]


@dataclass(frozen=True)
class PPOConfig:
    """Hyperparameters of the PPO update.

    Attributes
    ----------
    clip_epsilon:
        The clip range ``ε`` of Eqn. (8)/(12); 0.2 is the standard choice.
    value_coef:
        Weight of the value loss in the combined objective.
    entropy_coef:
        Weight of the entropy bonus (encourages exploration on top of
        curiosity).
    normalize_advantages:
        Per-batch advantage normalization (the DPPO baseline's trick,
        Section VII-B; also used by DRL-CEWS for stability).
    max_grad_norm:
        Global gradient-norm clip applied by the trainer.
    gamma, gae_lambda:
        Discount and GAE parameter for the rollout buffer; ``gae_lambda
        = None`` selects plain Monte-Carlo advantages ``G_t - V(s_t)``.
    epochs:
        Update passes over the buffer per episode (``K`` in Algorithm 1).
    batch_size:
        Minibatch size (the paper's second studied hyperparameter).
    learning_rate:
        Adam step size used by the chief.
    curiosity_learning_rate:
        Adam step size for the curiosity (forward-model) optimizer.  The
        paper does not specify one; defaults to ``learning_rate``.  A
        faster rate makes the intrinsic reward decay sooner, turning
        curiosity into an early exploration bonus — useful on short
        training budgets.
    """

    clip_epsilon: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    normalize_advantages: bool = True
    max_grad_norm: float = 0.5
    gamma: float = 0.99
    gae_lambda: float | None = 0.95
    epochs: int = 4
    batch_size: int = 250
    learning_rate: float = 3e-4
    curiosity_learning_rate: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.clip_epsilon < 1.0:
            raise ValueError(f"clip_epsilon must be in (0, 1), got {self.clip_epsilon}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.curiosity_learning_rate is not None and self.curiosity_learning_rate <= 0:
            raise ValueError(
                "curiosity_learning_rate must be positive, "
                f"got {self.curiosity_learning_rate}"
            )

    @property
    def effective_curiosity_lr(self) -> float:
        """The curiosity optimizer's step size (defaults to the policy's)."""
        return (
            self.curiosity_learning_rate
            if self.curiosity_learning_rate is not None
            else self.learning_rate
        )


@dataclass(frozen=True)
class PPOStats:
    """Diagnostics of one loss evaluation."""

    policy_loss: float
    value_loss: float
    entropy: float
    clip_fraction: float
    approx_kl: float


def _ppo_arrays(
    batch: MiniBatch,
    config: PPOConfig,
    normalize_advantages: bool = True,
) -> dict:
    """Plain-array prologue of the PPO update (no tape ops).

    Produces the input dict for the taped/planned program; every value is
    an ``np.ndarray`` with a call-stable dtype so the execution planner
    can key plans on the shape signature alone.  ``normalize_advantages``
    is ANDed with the config flag — the sharded update path normalizes
    over the *full* minibatch on the chief and ships pre-normalized
    advantages, so shard workers pass ``False`` here.
    """
    advantages = batch.advantages.copy()
    if config.normalize_advantages and normalize_advantages and len(advantages) > 1:
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
    move_mask = np.asarray(batch.move_masks, dtype=bool)
    return {
        "states": np.asarray(batch.states, dtype=np.float64),
        "worker_features": np.asarray(batch.worker_features, dtype=np.float64),
        "mask_penalty": np.where(move_mask, 0.0, MASKED_LOGIT),
        "moves": np.asarray(batch.moves, dtype=np.int64),
        "charges": np.asarray(batch.charges, dtype=np.float64),
        "log_probs": np.asarray(batch.log_probs, dtype=np.float64),
        "advantages": np.asarray(advantages, dtype=np.float64),
        "returns": np.asarray(batch.returns, dtype=np.float64),
    }


def _ppo_program(network: CNNActorCritic, config: PPOConfig):
    """The taped body of the PPO update as an executor-compatible program.

    Returns a callable mapping the `_ppo_arrays` dict to named loss
    tensors.  This is the exact op sequence `ppo_loss` always built;
    factoring it this way lets :class:`repro.nn.Planner` capture it once
    per shape signature and replay it as a flat execution plan.
    """

    def program(inputs: dict) -> dict:
        with trace_span("ppo.forward", batch=len(inputs["returns"])):
            output = network.forward(
                inputs["states"],
                worker_features=inputs["worker_features"],
                mask_penalty=inputs["mask_penalty"],
            )

        new_log_prob = output.log_prob(inputs["moves"], inputs["charges"])
        log_ratio = new_log_prob - nn.Tensor(inputs["log_probs"])
        ratio = log_ratio.exp()

        adv = nn.Tensor(inputs["advantages"])
        unclipped = ratio * adv
        clipped = ratio.clip(1.0 - config.clip_epsilon, 1.0 + config.clip_epsilon) * adv
        policy_objective = unclipped.minimum(clipped).mean()
        policy_loss = -policy_objective

        value_error = output.value - nn.Tensor(inputs["returns"])
        value_loss = (value_error * value_error).mean()

        entropy = output.entropy().mean()

        loss = (
            policy_loss
            + config.value_coef * value_loss
            - config.entropy_coef * entropy
        )
        return {
            "loss": loss,
            "policy_loss": policy_loss,
            "value_loss": value_loss,
            "entropy": entropy,
            "ratio": ratio,
            "log_ratio": log_ratio,
        }

    return program


def _ppo_stats(outs: dict, config: PPOConfig) -> PPOStats:
    """Detached-diagnostics epilogue over the program's output arrays."""
    with np.errstate(over="ignore"):
        ratio_data = outs["ratio"]
    clip_fraction = float(
        np.mean(np.abs(ratio_data - 1.0) > config.clip_epsilon)
    )
    approx_kl = float(np.mean(-outs["log_ratio"]))
    return PPOStats(
        policy_loss=float(outs["policy_loss"]),
        value_loss=float(outs["value_loss"]),
        entropy=float(outs["entropy"]),
        clip_fraction=clip_fraction,
        approx_kl=approx_kl,
    )


def make_ppo_planner(
    network: CNNActorCritic,
    config: PPOConfig,
    arena: bool | None = None,
    fuse: bool | None = None,
) -> nn.Planner:
    """An execution planner over this network's PPO update program.

    ``arena``/``fuse`` override the planner's env-derived defaults; the
    ablation benchmark uses them to measure each layer in isolation.
    """
    return nn.Planner(
        _ppo_program(network, config), loss="loss", name="ppo", arena=arena, fuse=fuse
    )


def ppo_loss(
    network: CNNActorCritic,
    batch: MiniBatch,
    config: PPOConfig,
) -> tuple[nn.Tensor, PPOStats]:
    """Combined PPO loss for one minibatch (always on the tape).

    Returns the scalar loss tensor (ready for ``backward()``) and detached
    diagnostics.
    """
    arrays = _ppo_arrays(batch, config)
    outputs = _ppo_program(network, config)(arrays)
    stats = _ppo_stats({name: t.data for name, t in outputs.items()}, config)
    return outputs["loss"], stats


def ppo_step(
    network: CNNActorCritic,
    batch: MiniBatch,
    config: PPOConfig,
    planner: nn.Planner | None = None,
    normalize_advantages: bool = True,
) -> PPOStats:
    """One full PPO loss evaluation plus backward pass.

    Leaf gradients are accumulated into ``param.grad`` exactly as
    ``ppo_loss(...)[0].backward()`` would.  With a ``planner`` the update
    runs as a validated execution plan when the fast path is allowed
    (bit-identical by construction, tape otherwise).
    """
    arrays = _ppo_arrays(batch, config, normalize_advantages=normalize_advantages)
    if planner is not None:
        outs = planner.step(arrays)
    else:
        outputs = _ppo_program(network, config)(arrays)
        outputs["loss"].backward()
        outs = {name: t.data for name, t in outputs.items()}
    return _ppo_stats(outs, config)
