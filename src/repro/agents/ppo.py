"""PPO losses (Section IV and Eqns. 11-12).

:func:`ppo_loss` computes the clipped-surrogate policy objective, the value
loss and the entropy bonus for one minibatch, returning the combined scalar
loss tensor plus diagnostics.  Employees call this, backpropagate, and ship
the resulting gradients to the chief (Algorithm 1, lines 17-21).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..obs.trace import span as trace_span
from .networks import CNNActorCritic
from .rollout import MiniBatch

__all__ = ["PPOConfig", "PPOStats", "ppo_loss"]


@dataclass(frozen=True)
class PPOConfig:
    """Hyperparameters of the PPO update.

    Attributes
    ----------
    clip_epsilon:
        The clip range ``ε`` of Eqn. (8)/(12); 0.2 is the standard choice.
    value_coef:
        Weight of the value loss in the combined objective.
    entropy_coef:
        Weight of the entropy bonus (encourages exploration on top of
        curiosity).
    normalize_advantages:
        Per-batch advantage normalization (the DPPO baseline's trick,
        Section VII-B; also used by DRL-CEWS for stability).
    max_grad_norm:
        Global gradient-norm clip applied by the trainer.
    gamma, gae_lambda:
        Discount and GAE parameter for the rollout buffer; ``gae_lambda
        = None`` selects plain Monte-Carlo advantages ``G_t - V(s_t)``.
    epochs:
        Update passes over the buffer per episode (``K`` in Algorithm 1).
    batch_size:
        Minibatch size (the paper's second studied hyperparameter).
    learning_rate:
        Adam step size used by the chief.
    curiosity_learning_rate:
        Adam step size for the curiosity (forward-model) optimizer.  The
        paper does not specify one; defaults to ``learning_rate``.  A
        faster rate makes the intrinsic reward decay sooner, turning
        curiosity into an early exploration bonus — useful on short
        training budgets.
    """

    clip_epsilon: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    normalize_advantages: bool = True
    max_grad_norm: float = 0.5
    gamma: float = 0.99
    gae_lambda: float | None = 0.95
    epochs: int = 4
    batch_size: int = 250
    learning_rate: float = 3e-4
    curiosity_learning_rate: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.clip_epsilon < 1.0:
            raise ValueError(f"clip_epsilon must be in (0, 1), got {self.clip_epsilon}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.curiosity_learning_rate is not None and self.curiosity_learning_rate <= 0:
            raise ValueError(
                "curiosity_learning_rate must be positive, "
                f"got {self.curiosity_learning_rate}"
            )

    @property
    def effective_curiosity_lr(self) -> float:
        """The curiosity optimizer's step size (defaults to the policy's)."""
        return (
            self.curiosity_learning_rate
            if self.curiosity_learning_rate is not None
            else self.learning_rate
        )


@dataclass(frozen=True)
class PPOStats:
    """Diagnostics of one loss evaluation."""

    policy_loss: float
    value_loss: float
    entropy: float
    clip_fraction: float
    approx_kl: float


def ppo_loss(
    network: CNNActorCritic,
    batch: MiniBatch,
    config: PPOConfig,
) -> tuple[nn.Tensor, PPOStats]:
    """Combined PPO loss for one minibatch.

    Returns the scalar loss tensor (ready for ``backward()``) and detached
    diagnostics.
    """
    with trace_span("ppo.forward", batch=len(batch.returns)):
        output = network.forward(
            batch.states,
            move_mask=batch.move_masks,
            worker_features=batch.worker_features,
        )

    advantages = batch.advantages.copy()
    if config.normalize_advantages and len(advantages) > 1:
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

    new_log_prob = output.log_prob(batch.moves, batch.charges)
    log_ratio = new_log_prob - nn.Tensor(batch.log_probs)
    ratio = log_ratio.exp()

    adv = nn.Tensor(advantages)
    unclipped = ratio * adv
    clipped = ratio.clip(1.0 - config.clip_epsilon, 1.0 + config.clip_epsilon) * adv
    policy_objective = unclipped.minimum(clipped).mean()
    policy_loss = -policy_objective

    value_error = output.value - nn.Tensor(batch.returns)
    value_loss = (value_error * value_error).mean()

    entropy = output.entropy().mean()

    loss = (
        policy_loss
        + config.value_coef * value_loss
        - config.entropy_coef * entropy
    )

    with np.errstate(over="ignore"):
        ratio_data = ratio.data
    clip_fraction = float(
        np.mean(np.abs(ratio_data - 1.0) > config.clip_epsilon)
    )
    approx_kl = float(np.mean(-log_ratio.data))

    stats = PPOStats(
        policy_loss=float(policy_loss.item()),
        value_loss=float(value_loss.item()),
        entropy=float(entropy.item()),
        clip_fraction=clip_fraction,
        approx_kl=approx_kl,
    )
    return loss, stats
