"""Experience storage and return/advantage computation.

:class:`RolloutBuffer` is the replay buffer ``D`` of Algorithm 1: each
slot's ``[s_t, u_t, v_t, r_t]`` record plus what PPO needs later (old log
probabilities, values, validity masks) and what the curiosity model needs
(worker positions before/after the move).

Returns are the paper's ``G_t = r_t + γ r_{t+1} + ... + γ^{T-t} V(s_T)``
(Eqn. 11); advantages can be either ``G_t − V(s_t)`` (Monte-Carlo) or the
generalized advantage estimator (GAE), controlled by ``gae_lambda``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

__all__ = ["Transition", "MiniBatch", "RolloutBuffer", "discounted_returns", "gae_advantages"]


#: width of the per-worker feature vector stored with each transition
WORKER_FEATURE_DIM = 3


@dataclass(frozen=True)
class Transition:
    """One time slot's record.

    ``worker_features`` holds the per-worker ``[x/L, y/L, b/b0]`` vector
    fed to the policy heads; ``None`` stores zeros (CNN-only operation).
    """

    state: np.ndarray
    move_mask: np.ndarray
    moves: np.ndarray
    charges: np.ndarray
    log_prob: float
    value: float
    reward: float
    done: bool
    positions: np.ndarray
    next_positions: np.ndarray
    next_state: np.ndarray
    worker_features: Optional[np.ndarray] = None

    def worker_features_or_zeros(self) -> np.ndarray:
        """Stored features, or zeros for CNN-only transitions."""
        if self.worker_features is not None:
            return self.worker_features
        return np.zeros((len(self.moves), WORKER_FEATURE_DIM))


@dataclass(frozen=True)
class MiniBatch:
    """A sampled slice of the buffer, as dense arrays."""

    states: np.ndarray          # (B, C, G, G)
    move_masks: np.ndarray      # (B, W, M)
    moves: np.ndarray           # (B, W)
    charges: np.ndarray         # (B, W)
    log_probs: np.ndarray       # (B,)
    values: np.ndarray          # (B,)
    returns: np.ndarray         # (B,)
    advantages: np.ndarray      # (B,)
    positions: np.ndarray       # (B, W, 2)
    next_positions: np.ndarray  # (B, W, 2)
    next_states: np.ndarray     # (B, C, G, G)
    worker_features: np.ndarray  # (B, W, WORKER_FEATURE_DIM)

    def __len__(self) -> int:
        return len(self.states)


def discounted_returns(
    rewards: np.ndarray, dones: np.ndarray, gamma: float, bootstrap: float
) -> np.ndarray:
    """``G_t`` with a terminal bootstrap value (Eqn. 11's target)."""
    returns = np.zeros_like(rewards, dtype=np.float64)
    running = bootstrap
    for t in range(len(rewards) - 1, -1, -1):
        if dones[t]:
            running = 0.0
        running = rewards[t] + gamma * running
        returns[t] = running
    return returns


def gae_advantages(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    gamma: float,
    lam: float,
    bootstrap: float,
) -> np.ndarray:
    """Generalized advantage estimation (Schulman et al. 2016)."""
    advantages = np.zeros_like(rewards, dtype=np.float64)
    gae = 0.0
    next_value = bootstrap
    for t in range(len(rewards) - 1, -1, -1):
        if dones[t]:
            next_value = 0.0
            gae = 0.0
        delta = rewards[t] + gamma * next_value - values[t]
        gae = delta + gamma * lam * gae
        advantages[t] = gae
        next_value = values[t]
    return advantages


class RolloutBuffer:
    """Replay buffer ``D`` of Algorithm 1, cleared each episode."""

    def __init__(self, gamma: float = 0.99, gae_lambda: Optional[float] = 0.95):
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        if gae_lambda is not None and not 0.0 <= gae_lambda <= 1.0:
            raise ValueError(f"gae_lambda must be in [0, 1], got {gae_lambda}")
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self._transitions: List[Transition] = []
        self._returns: Optional[np.ndarray] = None
        self._advantages: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._transitions)

    def clear(self) -> None:
        """Drop all stored transitions (start of a new episode)."""
        self._transitions.clear()
        self._returns = None
        self._advantages = None

    def add(self, transition: Transition) -> None:
        """Append one transition (invalidates computed returns)."""
        self._transitions.append(transition)
        self._returns = None
        self._advantages = None

    # ------------------------------------------------------------------
    def finalize(self, bootstrap_value: float = 0.0) -> None:
        """Compute returns and advantages for everything stored so far."""
        if not self._transitions:
            raise RuntimeError("cannot finalize an empty rollout buffer")
        rewards = np.array([tr.reward for tr in self._transitions])
        values = np.array([tr.value for tr in self._transitions])
        dones = np.array([tr.done for tr in self._transitions])
        self._returns = discounted_returns(rewards, dones, self.gamma, bootstrap_value)
        if self.gae_lambda is None:
            self._advantages = self._returns - values
        else:
            self._advantages = gae_advantages(
                rewards, values, dones, self.gamma, self.gae_lambda, bootstrap_value
            )

    def _gather(self, indices: np.ndarray) -> MiniBatch:
        if self._returns is None or self._advantages is None:
            raise RuntimeError("call finalize() before sampling")
        picked = [self._transitions[i] for i in indices]
        return MiniBatch(
            states=np.stack([tr.state for tr in picked]),
            move_masks=np.stack([tr.move_mask for tr in picked]),
            moves=np.stack([tr.moves for tr in picked]),
            charges=np.stack([tr.charges for tr in picked]),
            log_probs=np.array([tr.log_prob for tr in picked]),
            values=np.array([tr.value for tr in picked]),
            returns=self._returns[indices],
            advantages=self._advantages[indices],
            positions=np.stack([tr.positions for tr in picked]),
            next_positions=np.stack([tr.next_positions for tr in picked]),
            next_states=np.stack([tr.next_state for tr in picked]),
            worker_features=np.stack(
                [tr.worker_features_or_zeros() for tr in picked]
            ),
        )

    def minibatches(
        self, batch_size: int, rng: np.random.Generator, epochs: int = 1
    ) -> Iterator[MiniBatch]:
        """Yield shuffled minibatches; ``epochs`` full passes over the data."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        count = len(self._transitions)
        for __ in range(epochs):
            order = rng.permutation(count)
            for start in range(0, count, batch_size):
                yield self._gather(order[start : start + batch_size])

    def full_batch(self) -> MiniBatch:
        """The whole buffer as one batch (used by tests and small updates)."""
        return self._gather(np.arange(len(self._transitions)))
