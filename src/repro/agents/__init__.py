"""Agents: DRL-CEWS and every compared baseline (Section VII-B).

* :class:`CEWSAgent` — the paper's method (PPO + spatial curiosity +
  sparse reward);
* :class:`DPPOAgent` — distributed PPO on the dense reward;
* :class:`EdicsAgent` — multi-agent DRL, one PPO agent per worker;
* :class:`DnCAgent` — two-step-lookahead prediction-based assignment;
* :class:`GreedyAgent` — one-step-lookahead data maximization;
* :class:`RandomAgent` — uniform-random floor (not in the paper, used by
  tests).
"""

from .base import Agent, EpisodeResult, evaluate_policy, run_episode
from .cews import CEWSAgent
from .dnc import DnCAgent
from .dppo import DPPOAgent
from .edics import EdicsAgent, EdicsRollout
from .greedy import GreedyAgent
from .networks import CNNActorCritic, PolicyOutput
from .policy import GradientPack, PPOWorkerAgent
from .ppo import PPOConfig, PPOStats, ppo_loss
from .random_agent import RandomAgent
from .rollout import MiniBatch, RolloutBuffer, Transition, discounted_returns, gae_advantages

__all__ = [
    "Agent",
    "EpisodeResult",
    "evaluate_policy",
    "run_episode",
    "CEWSAgent",
    "DnCAgent",
    "DPPOAgent",
    "EdicsAgent",
    "EdicsRollout",
    "GreedyAgent",
    "RandomAgent",
    "CNNActorCritic",
    "PolicyOutput",
    "GradientPack",
    "PPOWorkerAgent",
    "PPOConfig",
    "PPOStats",
    "ppo_loss",
    "MiniBatch",
    "RolloutBuffer",
    "Transition",
    "discounted_returns",
    "gae_advantages",
]
