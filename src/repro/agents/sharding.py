"""Intra-minibatch data parallelism for the PPO update (DESIGN § 6i).

One employee's minibatch update factors cleanly over batch rows: every
term of the PPO objective is a mean over the batch, so for any partition
of the ``B`` rows into contiguous shards of sizes ``n_0..n_{S-1}``

    grad(mean over B)  ==  sum_k (n_k / B) * grad(mean over shard k)

up to floating-point associativity.  This module holds the pieces every
backend shares so the sharded update is **bitwise identical across
serial, thread, process and socket backends**:

* :func:`normalize_minibatch` — the chief normalizes advantages over the
  *full* minibatch (the exact expression ``_ppo_arrays`` uses), then
  shard gradients are computed with ``normalize_advantages=False``.
  Normalization is the only cross-row coupling in the update, so hoisting
  it is what makes the row partition exact.
* :func:`split_minibatch` — contiguous row shards (``np.array_split``
  boundaries), so shard ``k``'s rows are a deterministic function of
  ``(B, S)`` alone.
* :func:`combine_shard_packs` — scales shard ``k`` by ``w_k = n_k / B``
  and sums with a **fixed-order pairwise tree reduce** over shard
  indices.  The reduce order is part of the numeric contract: every
  backend combines the same shard results in the same order, so the
  combined :class:`~repro.agents.policy.GradientPack` is byte-identical
  no matter which worker computed which shard.
* :func:`compute_sharded_update` — the reference path (serial and thread
  backends): sample-free, shards computed in shard order on one agent.

Sharded bits are **not** the unsharded bits (float addition is not
associative), which is why ``TrainConfig.shard_minibatch`` defaults to 1
and the mode is opt-in; within the sharded mode the four backends agree
bitwise, and shard gradients never alias plan arena storage
(``GradientPack`` arrays are copies by construction — see RPL018).
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import List, Sequence

import numpy as np

from .policy import GradientPack
from .ppo import PPOConfig, PPOStats
from .rollout import MiniBatch

__all__ = [
    "combine_shard_packs",
    "combine_shard_stats",
    "compute_sharded_update",
    "normalize_minibatch",
    "shard_sizes",
    "split_minibatch",
]


def normalize_minibatch(batch: MiniBatch, config: PPOConfig) -> MiniBatch:
    """Full-batch advantage normalization, hoisted out of the shards.

    Applies the exact expression the unsharded update applies inside
    ``_ppo_arrays`` — ``(a - a.mean()) / (a.std() + 1e-8)`` — over the
    *whole* minibatch, so shard workers can run with
    ``normalize_advantages=False`` and still see advantages normalized
    against full-minibatch statistics.
    """
    advantages = np.asarray(batch.advantages, dtype=np.float64).copy()
    if config.normalize_advantages and len(advantages) > 1:
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
    return replace(batch, advantages=advantages)


def shard_sizes(total: int, num_shards: int) -> List[int]:
    """Row counts of the contiguous shards (``np.array_split`` boundaries).

    The shard count is clamped to ``total`` so no shard is ever empty —
    an empty minibatch has no defined PPO loss.
    """
    if total < 1:
        raise ValueError(f"cannot shard an empty minibatch (got {total} rows)")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    num_shards = min(num_shards, total)
    base, extra = divmod(total, num_shards)
    return [base + (1 if k < extra else 0) for k in range(num_shards)]


def split_minibatch(batch: MiniBatch, num_shards: int) -> List[MiniBatch]:
    """Split into contiguous row shards (every field has a leading B axis)."""
    sizes = shard_sizes(len(batch), num_shards)
    shards: List[MiniBatch] = []
    start = 0
    for size in sizes:
        stop = start + size
        shards.append(
            MiniBatch(
                **{
                    f.name: getattr(batch, f.name)[start:stop]
                    for f in fields(MiniBatch)
                }
            )
        )
        start = stop
    return shards


def combine_shard_stats(
    stats: Sequence[PPOStats], sizes: Sequence[int]
) -> PPOStats:
    """Row-weighted recombination of per-shard diagnostics.

    Every :class:`PPOStats` field is a mean over batch rows, so the
    full-minibatch value is the ``n_k / B``-weighted mean of the shard
    values — summed left-to-right in shard order (fixed, like the
    gradient reduce).
    """
    total = float(sum(sizes))
    weights = [size / total for size in sizes]

    def weighted(attr: str) -> float:
        acc = 0.0
        for stat, weight in zip(stats, weights):
            acc += weight * getattr(stat, attr)
        return acc

    return PPOStats(
        policy_loss=weighted("policy_loss"),
        value_loss=weighted("value_loss"),
        entropy=weighted("entropy"),
        clip_fraction=weighted("clip_fraction"),
        approx_kl=weighted("approx_kl"),
    )


def _tree_reduce(terms: List[List[np.ndarray]]) -> List[np.ndarray]:
    """Pairwise sum in fixed index order: (0+1), (2+3), ... then recurse.

    The bracketing depends only on the number of shards, never on
    arrival order, so all backends produce identical bits.
    """
    while len(terms) > 1:
        folded: List[List[np.ndarray]] = []
        for left, right in zip(terms[0::2], terms[1::2]):
            folded.append([a + b for a, b in zip(left, right)])
        if len(terms) % 2:
            folded.append(terms[-1])
        terms = folded
    return terms[0]


def combine_shard_packs(
    packs: Sequence[GradientPack], sizes: Sequence[int]
) -> GradientPack:
    """Weighted tree-reduce of per-shard gradients into one contribution.

    Shard ``k`` is scaled by ``w_k = n_k / B`` (the chain rule factor
    relating the shard mean to the full-batch mean), then policy and
    curiosity gradient lists are summed pairwise in shard-index order.
    """
    if len(packs) != len(sizes):
        raise ValueError(f"{len(packs)} shard packs for {len(sizes)} shard sizes")
    if not packs:
        raise ValueError("cannot combine zero shard packs")
    total = float(sum(sizes))
    weights = [size / total for size in sizes]
    policy_terms = [
        [weight * grad for grad in pack.policy]
        for pack, weight in zip(packs, weights)
    ]
    curiosity_terms = [
        [weight * grad for grad in pack.curiosity]
        for pack, weight in zip(packs, weights)
    ]
    return GradientPack(
        policy=_tree_reduce(policy_terms),
        curiosity=(
            _tree_reduce(curiosity_terms) if packs[0].curiosity else []
        ),
        stats=combine_shard_stats([pack.stats for pack in packs], sizes),
    )


def compute_sharded_update(
    agent, batch: MiniBatch, num_shards: int
) -> GradientPack:
    """The reference sharded update: one agent, shards in shard order.

    The serial and thread backends run this directly; the process and
    socket backends distribute the same shards across workers and feed
    the replies through the same :func:`combine_shard_packs`, so all four
    produce identical bytes.
    """
    normalized = normalize_minibatch(batch, agent.ppo)
    shards = split_minibatch(normalized, num_shards)
    packs = [
        agent.compute_gradients(shard, normalize_advantages=False)
        for shard in shards
    ]
    return combine_shard_packs(packs, [len(shard) for shard in shards])
