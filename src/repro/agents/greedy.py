"""Greedy baseline (Section VII-B).

"For each time slot t, the server first derives all the possible positions
for worker w at time t+1, and then calculates the corresponding collected
data.  After, the worker w travels to the specific position that maximizes
the collected data while satisfying its current energy budget."

Workers are processed in index order and each sees the data already claimed
by earlier workers this slot (competitive, matching the environment's
sequential collection).  A worker that happens to stand within charging
range with a low battery charges — greedy can exploit a station it stumbles
onto, but never *seeks* one, which is exactly the failure mode the paper
observes ("workers are easily trapped in a small region ... and fail to
find other charging stations").
"""

from __future__ import annotations

import numpy as np

from ..env.actions import Action, MOVE_OFFSETS, NUM_MOVES
from ..env.env import CrowdsensingEnv
from ..env.space import euclidean

__all__ = ["GreedyAgent", "expected_collection"]


def expected_collection(
    env: CrowdsensingEnv,
    position: np.ndarray,
    available: np.ndarray,
    sensing_range: float | None = None,
) -> float:
    """Data a worker at ``position`` would collect given ``available`` values.

    ``available`` is a working copy of the per-PoI remaining values for the
    current planning pass (so that already-claimed data is not counted
    twice).  ``sensing_range`` defaults to the scenario's global ``g``;
    pass the worker's own ``g^w`` for heterogeneous fleets.
    """
    if sensing_range is None:
        sensing_range = env.config.sensing_range
    in_range = euclidean(env.pois.positions, position) <= sensing_range
    if not np.any(in_range):
        return 0.0
    take = np.minimum(
        env.config.collect_rate * env.pois.initial_values[in_range],
        available[in_range],
    )
    return float(take.sum())


def claim_collection(
    env: CrowdsensingEnv,
    position: np.ndarray,
    available: np.ndarray,
    sensing_range: float | None = None,
) -> None:
    """Deduct from ``available`` what a worker at ``position`` would collect."""
    if sensing_range is None:
        sensing_range = env.config.sensing_range
    in_range = euclidean(env.pois.positions, position) <= sensing_range
    if not np.any(in_range):
        return
    take = np.minimum(
        env.config.collect_rate * env.pois.initial_values[in_range],
        available[in_range],
    )
    available[in_range] -= take


class GreedyAgent:
    """One-step-lookahead data maximization."""

    name = "Greedy"

    def __init__(self, charge_threshold: float = 0.5):
        """``charge_threshold``: charge opportunistically below this battery fraction."""
        if not 0.0 <= charge_threshold <= 1.0:
            raise ValueError(
                f"charge_threshold must be in [0, 1], got {charge_threshold}"
            )
        self.charge_threshold = charge_threshold

    def act(
        self, env: CrowdsensingEnv, rng: np.random.Generator, greedy: bool = True
    ) -> Action:
        """Plan this slot's joint action (``rng`` only breaks ties)."""
        config = env.config
        num_workers = env.num_workers
        move_mask = env.valid_moves()
        near_station = env.charge_possible()
        available = env.pois.values.copy()

        moves = np.zeros(num_workers, dtype=np.int64)
        charges = np.zeros(num_workers, dtype=np.int64)
        for w in range(num_workers):
            battery_fraction = env.workers.energy[w] / env.workers.capacity
            if near_station[w] and battery_fraction < self.charge_threshold:
                charges[w] = 1
                continue
            sensing = env.sensing_range_of(w)
            targets = env.workers.positions[w] + MOVE_OFFSETS * config.move_step
            gains = np.full(NUM_MOVES, -np.inf)
            for move in range(NUM_MOVES):
                if not move_mask[w, move]:
                    continue
                gains[move] = expected_collection(
                    env, targets[move], available, sensing_range=sensing
                )
            best = int(np.argmax(gains))
            # Tie-break toward a random valid move so stuck workers wander.
            if gains[best] <= 0.0:
                valid = np.nonzero(move_mask[w])[0]
                best = int(rng.choice(valid))
            moves[w] = best
            claim_collection(env, targets[best], available, sensing_range=sensing)
        return Action(charge=charges, move=moves)
