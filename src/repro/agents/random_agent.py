"""A uniform-random agent, used as a floor in tests and sanity checks."""

from __future__ import annotations

import numpy as np

from ..env.actions import Action
from ..env.env import CrowdsensingEnv

__all__ = ["RandomAgent"]


class RandomAgent:
    """Picks a uniformly random valid move and charges with probability p."""

    name = "Random"

    def __init__(self, charge_probability: float = 0.1):
        if not 0.0 <= charge_probability <= 1.0:
            raise ValueError(
                f"charge_probability must be in [0, 1], got {charge_probability}"
            )
        self.charge_probability = charge_probability

    def act(
        self, env: CrowdsensingEnv, rng: np.random.Generator, greedy: bool = False
    ) -> Action:
        """Sample a uniformly random valid joint action."""
        mask = env.valid_moves()
        moves = np.array([rng.choice(np.nonzero(row)[0]) for row in mask])
        charges = (rng.random(env.num_workers) < self.charge_probability).astype(np.int64)
        return Action(charge=charges, move=moves)
