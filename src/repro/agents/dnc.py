"""D&C baseline — prediction-based task assignment (Lian et al., ICDE'17).

Adapted to worker scheduling as the paper describes (Section VII-B):
"we first derive all the possible positions for workers at time slot t+1
and t+2, and calculate the expected collected data.  After, we choose the
actions that can maximize the expected collected data for time t."

I.e. a two-step lookahead: for every valid move at ``t+1`` the agent also
evaluates the best follow-up move at ``t+2`` and picks the first move of
the best two-step plan.  Like Greedy it claims data sequentially across
workers and charges opportunistically when standing near a station with a
low battery.
"""

from __future__ import annotations

import numpy as np

from ..env.actions import Action, MOVE_OFFSETS, NUM_MOVES
from ..env.env import CrowdsensingEnv
from ..env.space import euclidean
from .greedy import claim_collection, expected_collection

__all__ = ["DnCAgent"]


class DnCAgent:
    """Two-step-lookahead expected-data maximization."""

    name = "D&C"

    def __init__(self, charge_threshold: float = 0.5):
        if not 0.0 <= charge_threshold <= 1.0:
            raise ValueError(
                f"charge_threshold must be in [0, 1], got {charge_threshold}"
            )
        self.charge_threshold = charge_threshold

    def _second_step_gain(
        self,
        env: CrowdsensingEnv,
        position: np.ndarray,
        available: np.ndarray,
        sensing_range: float,
    ) -> float:
        """Best single-move gain from ``position`` given ``available`` data."""
        config = env.config
        targets = position + MOVE_OFFSETS * config.move_step
        best = 0.0
        for move in range(NUM_MOVES):
            target = targets[move]
            if env.space.is_blocked(target) or env.space.segment_blocked(
                position, target, samples=4
            ):
                continue
            gain = expected_collection(
                env, target, available, sensing_range=sensing_range
            )
            if gain > best:
                best = gain
        return best

    def act(
        self, env: CrowdsensingEnv, rng: np.random.Generator, greedy: bool = True
    ) -> Action:
        """Plan this slot's joint action (``rng`` only breaks ties)."""
        config = env.config
        num_workers = env.num_workers
        move_mask = env.valid_moves()
        near_station = env.charge_possible()
        available = env.pois.values.copy()

        moves = np.zeros(num_workers, dtype=np.int64)
        charges = np.zeros(num_workers, dtype=np.int64)
        for w in range(num_workers):
            battery_fraction = env.workers.energy[w] / env.workers.capacity
            if near_station[w] and battery_fraction < self.charge_threshold:
                charges[w] = 1
                continue
            sensing = env.sensing_range_of(w)
            targets = env.workers.positions[w] + MOVE_OFFSETS * config.move_step
            scores = np.full(NUM_MOVES, -np.inf)
            for move in range(NUM_MOVES):
                if not move_mask[w, move]:
                    continue
                first_gain = expected_collection(
                    env, targets[move], available, sensing_range=sensing
                )
                # Evaluate the follow-up on a copy where the first step's
                # data has been claimed.
                follow_available = available.copy()
                claim_collection(
                    env, targets[move], follow_available, sensing_range=sensing
                )
                second_gain = self._second_step_gain(
                    env, targets[move], follow_available, sensing
                )
                scores[move] = first_gain + second_gain
            best = int(np.argmax(scores))
            if scores[best] <= 0.0:
                valid = np.nonzero(move_mask[w])[0]
                best = int(rng.choice(valid))
            moves[w] = best
            claim_collection(env, targets[best], available, sensing_range=sensing)
        return Action(charge=charges, move=moves)
