"""Reproduction of *Curiosity-Driven Energy-Efficient Worker Scheduling in
Vehicular Crowdsourcing: A Deep Reinforcement Learning Approach* (Liu et
al., ICDE 2020).

The package is organized bottom-up:

* :mod:`repro.nn` — a from-scratch numpy neural-network framework
  (autograd, CNNs, Adam, distributions) standing in for PyTorch;
* :mod:`repro.env` — the crowdsensing simulator: the OLDC MDP with PoIs,
  obstacles, charging stations and the κ / ξ / ρ metrics;
* :mod:`repro.curiosity` — the spatial curiosity model plus the ICM and
  RND reference designs;
* :mod:`repro.agents` — DRL-CEWS and the compared baselines (DPPO, Edics,
  D&C, Greedy);
* :mod:`repro.distributed` — the synchronous chief–employee training
  architecture;
* :mod:`repro.experiments` — runners regenerating every table and figure
  of the paper's evaluation.

Quickstart::

    from repro import smoke_config, build_trainer, TrainConfig

    trainer = build_trainer("cews", smoke_config())
    history = trainer.train(episodes=50)
    print(history.logs[-1].kappa)
"""

from .agents import (
    CEWSAgent,
    DnCAgent,
    DPPOAgent,
    EdicsAgent,
    GreedyAgent,
    PPOConfig,
    PPOWorkerAgent,
    RandomAgent,
    evaluate_policy,
    run_episode,
)
from .curiosity import (
    ICMCuriosity,
    NullCuriosity,
    RNDCuriosity,
    SpatialCuriosity,
    TransitionBatch,
)
from .distributed import (
    ChiefEmployeeTrainer,
    TrainConfig,
    TrainingHistory,
    build_agent,
    build_trainer,
)
from .env import (
    Action,
    CrowdsensingEnv,
    Metrics,
    ScenarioConfig,
    compute_metrics,
    generate_scenario,
    paper_config,
    smoke_config,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # simulator
    "Action",
    "CrowdsensingEnv",
    "Metrics",
    "ScenarioConfig",
    "compute_metrics",
    "generate_scenario",
    "paper_config",
    "smoke_config",
    # agents
    "CEWSAgent",
    "DPPOAgent",
    "EdicsAgent",
    "DnCAgent",
    "GreedyAgent",
    "RandomAgent",
    "PPOWorkerAgent",
    "PPOConfig",
    "evaluate_policy",
    "run_episode",
    # curiosity
    "SpatialCuriosity",
    "ICMCuriosity",
    "RNDCuriosity",
    "NullCuriosity",
    "TransitionBatch",
    # distributed
    "ChiefEmployeeTrainer",
    "TrainConfig",
    "TrainingHistory",
    "build_agent",
    "build_trainer",
]
