"""Metrics federation: worker-side deltas folded into the chief registry.

Every employee process owns a private :class:`~repro.obs.metrics.MetricsRegistry`
wrapped in a :class:`WorkerTelemetry`.  At reply time the worker calls
:meth:`WorkerTelemetry.collect`, which diffs the registry against the
last collected baseline and ships only the *delta* (counter increments,
gauge updates, histogram bucket-count deltas) piggy-backed on the reply
payload — a few hundred bytes, no extra round trip, and safe to drop
(losing a delta under-counts but never double-counts).

The chief folds deltas with :func:`fold_into`: each worker metric is
re-registered in the main registry with ``extra_labelnames=("worker",
"host")`` so ``repro_phase_seconds`` and the curiosity/PPO series become
per-employee, per-host time series, while the chief's own unlabelled
observations render byte-identically to the pre-federation format (empty
extra labels are skipped at exposition time).

Federation is pure bookkeeping: it reads durations and training stats
that already exist, never touches an RNG, and is disabled end to end by
``TrainConfig(federate=False)`` / ``--no-federate`` — the bitwise
install/uninstall contract of the obs layer applies unchanged.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Mapping, Optional, Tuple

from .metrics import DEFAULT_BUCKETS, MetricsRegistry, get_registry

__all__ = [
    "FEDERATION_SCHEMA_VERSION",
    "WorkerTelemetry",
    "collect_delta",
    "fold_into",
    "update_employee_lag",
]

_LOG = logging.getLogger("repro.obs.federation")

#: Version stamp on every shipped delta; bump on breaking layout changes.
FEDERATION_SCHEMA_VERSION = 1

#: Labels appended to every folded worker series.
FLEET_LABELS = ("worker", "host")

#: PPO statistic fields exported as worker gauges.
_STAT_FIELDS = (
    "policy_loss",
    "value_loss",
    "entropy",
    "clip_fraction",
    "approx_kl",
)


class WorkerTelemetry:
    """An employee's private registry plus delta bookkeeping.

    The worker serve loop calls the ``note_*``/``observe_phase`` hooks as
    work completes and :meth:`collect` when building each reply.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._phase = self.registry.histogram(
            "repro_phase_seconds",
            "Wall time of one barrier phase (explore or one gradient round)",
            labelnames=("phase",),
        )
        self._commands = self.registry.counter(
            "repro_worker_commands_total",
            "Commands served by this employee process",
            labelnames=("op",),
        )
        self._episodes = self.registry.counter(
            "repro_worker_episodes_total",
            "Episodes collected by this employee process",
        )
        self._intrinsic = self.registry.gauge(
            "repro_worker_intrinsic_reward",
            "Intrinsic (curiosity) reward of the last collected episode",
        )
        self._extrinsic = self.registry.gauge(
            "repro_worker_extrinsic_reward",
            "Extrinsic reward of the last collected episode",
        )
        self._stats = {
            name: self.registry.gauge(
                f"repro_worker_{name}",
                f"PPO {name.replace('_', ' ')} of the last gradient round",
            )
            for name in _STAT_FIELDS
        }
        self._baseline: Dict[str, Dict[Tuple[str, ...], object]] = {}

    # ------------------------------------------------------------------
    # Recording hooks (called from the worker serve loop)
    # ------------------------------------------------------------------
    def observe_phase(self, phase: str, duration: float) -> None:
        self._phase.labels(phase=phase).observe(float(duration))

    def note_command(self, op: str) -> None:
        self._commands.labels(op=str(op)).inc()

    def note_episode(self, result) -> None:
        self._episodes.inc()
        self._intrinsic.set(float(getattr(result, "intrinsic_reward", 0.0)))
        self._extrinsic.set(float(getattr(result, "extrinsic_reward", 0.0)))

    def note_stats(self, stats) -> None:
        for name, gauge in self._stats.items():
            value = getattr(stats, name, None)
            if value is not None:
                gauge.set(float(value))

    # ------------------------------------------------------------------
    def collect(self) -> Optional[Dict[str, object]]:
        """The delta since the previous collect, or ``None`` if quiet."""
        delta = collect_delta(self.registry, self._baseline)
        return delta


def _diff_scalar(
    current: Mapping[Tuple[str, ...], float],
    base: Mapping[Tuple[str, ...], object],
    kind: str,
) -> Dict[Tuple[str, ...], float]:
    out: Dict[Tuple[str, ...], float] = {}
    for key, value in current.items():
        previous = base.get(key)
        if kind == "counter":
            inc = value - (float(previous) if previous is not None else 0.0)
            if inc != 0.0:
                out[key] = inc
        else:  # gauge ships its current value whenever it changed
            if previous is None or float(previous) != value:
                out[key] = value
    return out


def _diff_histogram(
    current: Mapping[Tuple[str, ...], Dict[str, object]],
    base: Mapping[Tuple[str, ...], object],
) -> Dict[Tuple[str, ...], Dict[str, object]]:
    out: Dict[Tuple[str, ...], Dict[str, object]] = {}
    for key, state in current.items():
        previous = base.get(key)
        if previous is None:
            previous = {"counts": [0] * len(state["counts"]), "sum": 0.0, "count": 0}
        counts = [
            int(now) - int(then)
            for now, then in zip(state["counts"], previous["counts"])
        ]
        count = int(state["count"]) - int(previous["count"])
        if count > 0 or any(counts):
            out[key] = {
                "counts": counts,
                "sum": float(state["sum"]) - float(previous["sum"]),
                "count": count,
            }
    return out


def collect_delta(
    registry: MetricsRegistry,
    baseline: Dict[str, Dict[Tuple[str, ...], object]],
) -> Optional[Dict[str, object]]:
    """Diff ``registry`` against ``baseline`` (updated in place).

    Returns ``{"schema": 1, "metrics": {name: {kind, help, labelnames,
    buckets?, series: {key: payload}}}}`` or ``None`` when nothing
    changed.  Payloads are counter increments, current gauge values, or
    histogram ``{counts, sum, count}`` deltas.
    """
    raw = registry.raw_series()
    metrics: Dict[str, object] = {}
    for name, spec in raw.items():
        kind = spec["kind"]
        base = baseline.get(name, {})
        if kind == "histogram":
            series = _diff_histogram(spec["series"], base)
        else:
            series = _diff_scalar(spec["series"], base, kind)
        baseline[name] = spec["series"]
        if not series:
            continue
        entry: Dict[str, object] = {
            "kind": kind,
            "help": spec["help"],
            "labelnames": tuple(spec["labelnames"]),
            "series": series,
        }
        if "buckets" in spec:
            entry["buckets"] = tuple(spec["buckets"])
        metrics[name] = entry
    if not metrics:
        return None
    return {"schema": FEDERATION_SCHEMA_VERSION, "metrics": metrics}


def _check_foldable(metric, labelnames: Tuple[str, ...]) -> None:
    """Reject a fold target whose label layout cannot carry fleet labels.

    ``_get_or_create`` returns an existing metric ignoring the requested
    labels, so a name the chief registered *without* the fleet extras
    would silently truncate the worker/host values at render time —
    raise instead so :func:`fold_into` logs and skips the metric.
    """
    if tuple(metric.labelnames) != labelnames or not (
        set(FLEET_LABELS) <= set(metric.extra_labelnames)
    ):
        raise ValueError(
            f"label layout {metric.labelnames}/{metric.extra_labelnames} "
            f"cannot carry a worker series labelled {labelnames}"
        )


def fold_into(
    registry: MetricsRegistry,
    delta: Mapping[str, object],
    *,
    worker: object,
    host: object = "",
) -> int:
    """Fold one shipped worker delta into ``registry``.

    Every folded series gains ``worker``/``host`` extra labels.  A
    malformed or incompatible metric (kind collision with a chief
    metric, bucket mismatch) is logged and skipped — federation must
    never take down the training loop.  Returns the number of series
    folded.
    """
    if not isinstance(delta, Mapping) or delta.get("schema") != FEDERATION_SCHEMA_VERSION:
        _LOG.warning("dropping federation delta with unknown schema: %r", delta)
        return 0
    suffix = (str(worker), str(host))
    folded = 0
    for name, spec in sorted(delta.get("metrics", {}).items()):
        try:
            kind = spec["kind"]
            labelnames = tuple(spec.get("labelnames", ()))
            help_text = str(spec.get("help", ""))
            if kind == "counter":
                metric = registry.counter(
                    name, help_text, labelnames=labelnames,
                    extra_labelnames=FLEET_LABELS,
                )
                _check_foldable(metric, labelnames)
                for key, amount in spec["series"].items():
                    metric._inc(tuple(key) + suffix, float(amount))
                    folded += 1
            elif kind == "gauge":
                metric = registry.gauge(
                    name, help_text, labelnames=labelnames,
                    extra_labelnames=FLEET_LABELS,
                )
                _check_foldable(metric, labelnames)
                for key, value in spec["series"].items():
                    metric._set(tuple(key) + suffix, float(value))
                    folded += 1
            elif kind == "histogram":
                metric = registry.histogram(
                    name, help_text, labelnames=labelnames,
                    buckets=tuple(spec.get("buckets", DEFAULT_BUCKETS)),
                    extra_labelnames=FLEET_LABELS,
                )
                _check_foldable(metric, labelnames)
                for key, state in spec["series"].items():
                    metric._fold(
                        tuple(key) + suffix,
                        state["counts"],
                        state["sum"],
                        state["count"],
                    )
                    folded += 1
            else:
                _LOG.warning("unknown federated metric kind %r for %s", kind, name)
        except (KeyError, TypeError, ValueError) as error:
            # e.g. the chief registered the same name without fleet labels,
            # or a bucket layout changed across versions.
            _LOG.warning("cannot fold federated metric %s: %s", name, error)
    return folded


def update_employee_lag(
    durations: Mapping[int, float],
    registry: Optional[MetricsRegistry] = None,
    k: float = 2.0,
) -> List[int]:
    """Refresh ``repro_employee_lag_seconds`` and flag stragglers.

    ``durations`` maps employee index to its last explore latency.  The
    gauge records each employee's latency minus the fleet median (so a
    healthy fleet hovers around zero); employees slower than
    ``k * median`` are returned as stragglers for the dashboard.
    """
    if registry is None:
        registry = get_registry()
    gauge = registry.gauge(
        "repro_employee_lag_seconds",
        "Last explore latency minus the fleet median (stragglers > k*median)",
        labelnames=("employee",),
    )
    if not durations:
        return []
    values = sorted(float(v) for v in durations.values())
    mid = len(values) // 2
    if len(values) % 2:
        median = values[mid]
    else:
        median = (values[mid - 1] + values[mid]) / 2.0
    stragglers: List[int] = []
    for index, duration in sorted(durations.items()):
        gauge.labels(employee=index).set(float(duration) - median)
        if median > 0.0 and float(duration) > k * median:
            stragglers.append(int(index))
    return stragglers
