"""ASCII live training dashboard (``--dashboard`` on ``repro train``).

Renders, every ``every`` episodes, a terminal snapshot built from the
per-episode logs the trainer hands to its ``on_episode_end`` callback
plus the process-local metrics registry:

* κ / ρ learning curves (:func:`repro.utils.ascii_plot.ascii_line_chart`);
* a one-line extrinsic-reward :func:`~repro.utils.ascii_plot.sparkline`;
* the latest episode's scalars (reward, intrinsic, κ, ξ, ρ, losses);
* per-phase wall time drawn from the ``repro_phase_seconds`` histogram
  the instrumented trainer keeps hot in the registry;
* a fleet table (socket backend only) from the ``repro_fleet_connected``
  / ``repro_fleet_generation`` / ``repro_transport_heartbeat_age_seconds``
  gauges the :class:`~repro.distributed.transport.SocketTransport`
  maintains per employee, plus the metrics federation's
  ``repro_employee_lag_seconds`` straggler gauge (last explore latency
  minus the fleet median).

The dashboard only *reads* — episode logs and registry snapshots — and
writes to its stream; it never touches the model, the env or the RNGs,
so training trajectories are unchanged whether it is on or off.  Output
goes through ``stream.write`` (reporting module, RPL009-whitelisted via
the CLI caller would not apply here, hence no ``print``).
"""

from __future__ import annotations

import re
import sys
from typing import IO, List, Optional

from ..utils.ascii_plot import ascii_line_chart, sparkline
from .metrics import MetricsRegistry, get_registry

__all__ = ["Dashboard"]

#: Extracts the employee index from a labelled series name like
#: ``repro_fleet_connected{employee="2"}``.
_EMPLOYEE_LABEL = re.compile(r'employee="([^"]*)"')


class Dashboard:
    """Periodic ASCII snapshot of a running training loop."""

    def __init__(
        self,
        every: int = 1,
        width: int = 60,
        height: int = 10,
        stream: Optional[IO[str]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self.width = int(width)
        self.height = int(height)
        self._stream = stream
        self._registry = registry
        self._logs: List[object] = []

    # ------------------------------------------------------------------
    @property
    def stream(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stdout

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # ------------------------------------------------------------------
    def on_episode_end(self, log) -> None:
        """Trainer callback: record the log, render every ``every`` eps."""
        self._logs.append(log)
        if len(self._logs) % self.every == 0:
            self.stream.write(self.render() + "\n")
            flush = getattr(self.stream, "flush", None)
            if flush is not None:
                flush()

    # ------------------------------------------------------------------
    def _curve(self, key: str) -> List[float]:
        return [float(getattr(log, key)) for log in self._logs]

    def _phase_lines(self) -> List[str]:
        histogram = self.registry.get("repro_phase_seconds")
        if histogram is None:
            return []
        snapshot = histogram.snapshot()
        series = snapshot.get("series", {})
        if not series:
            return []
        lines = ["phase wall time:"]
        for name in sorted(series):
            state = series[name]
            count = int(state["count"])
            total = float(state["sum"])
            mean = total / count if count else 0.0
            lines.append(
                f"  {name:<44s} {count:>5d} call(s)  "
                f"total {total:8.3f}s  mean {mean:8.4f}s"
            )
        return lines

    def _gauge_by_employee(self, name: str) -> dict:
        """``employee label -> value`` for one transport gauge."""
        gauge = self.registry.get(name)
        if gauge is None:
            return {}
        series = gauge.snapshot().get("series", {})
        out = {}
        for labelled, value in series.items():
            match = _EMPLOYEE_LABEL.search(labelled)
            if match is not None:
                out[match.group(1)] = value
        return out

    def _fleet_lines(self) -> List[str]:
        connected = self._gauge_by_employee("repro_fleet_connected")
        if not connected:
            return []
        generation = self._gauge_by_employee("repro_fleet_generation")
        heartbeat = self._gauge_by_employee(
            "repro_transport_heartbeat_age_seconds"
        )
        lag = self._gauge_by_employee("repro_employee_lag_seconds")
        lines = ["fleet:"]
        for name in sorted(connected, key=lambda k: (len(k), k)):
            up = float(connected[name]) >= 1.0
            gen = generation.get(name)
            age = heartbeat.get(name)
            gen_text = f"gen {int(gen):>3d}" if gen is not None else "gen   ?"
            age_text = f"hb {float(age):6.2f}s ago" if age is not None else "hb      —"
            # Federation straggler gauge: last explore latency minus the
            # fleet median (positive = slower than the median employee).
            delta = lag.get(name)
            lag_text = f"lag {float(delta):+7.3f}s" if delta is not None else "lag       —"
            lines.append(
                f"  employee {name:<4s} {'up  ' if up else 'DOWN'}  "
                f"{gen_text}  {age_text}  {lag_text}"
            )
        return lines

    def render(self) -> str:
        """The full dashboard snapshot as one string."""
        if not self._logs:
            return "dashboard: no episodes yet"
        last = self._logs[-1]
        parts: List[str] = []
        episode = int(getattr(last, "episode", len(self._logs) - 1))
        parts.append(
            f"=== repro dashboard · episode {episode} "
            f"({len(self._logs)} logged) ==="
        )
        parts.append(
            "reward {reward:+.3f}  intrinsic {intr:.4f}  kappa {kappa:.3f}  "
            "xi {xi:.3f}  rho {rho:.4f}".format(
                reward=float(last.extrinsic_reward),
                intr=float(last.intrinsic_reward),
                kappa=float(last.kappa),
                xi=float(last.xi),
                rho=float(last.rho),
            )
        )
        parts.append(
            "policy loss {pl:+.4f}  value loss {vl:.4f}  entropy {ent:.4f}".format(
                pl=float(last.policy_loss),
                vl=float(last.value_loss),
                ent=float(last.entropy),
            )
        )
        spark = sparkline(self._curve("extrinsic_reward"), width=self.width)
        if spark:
            parts.append(f"reward  {spark}")
        if len(self._logs) >= 2:
            parts.append(
                ascii_line_chart(
                    {"kappa": self._curve("kappa"), "rho": self._curve("rho")},
                    width=self.width,
                    height=self.height,
                    title="collection ratio / energy efficiency",
                )
            )
        parts.extend(self._phase_lines())
        parts.extend(self._fleet_lines())
        return "\n".join(parts)
