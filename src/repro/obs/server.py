"""A stdlib HTTP exposition endpoint for the obs layer.

:class:`ObsServer` runs a ``http.server.ThreadingHTTPServer`` on a
daemon thread (``repro obs serve`` or ``python -m repro train
--obs-port``) and exposes:

=================  ====================================================
``/metrics``       Prometheus text exposition format 0.0.4
``/metrics.json``  the registry snapshot as JSON
``/trace/summary`` ``summarize_trace`` of the active tracer's ring
``/healthz``       200 when every connected employee is live, else 503
=================  ====================================================

The server only *reads* registry snapshots and the tracer ring — it
observes the run, it cannot perturb it, so scraping mid-train preserves
bitwise-identical results.  Fleet liveness in ``/healthz`` derives from
the socket transport's ``repro_fleet_connected`` gauge; runs without a
socket transport report ``ok`` with an empty fleet.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry
from .trace import dedupe_synthetic, get_tracer, summarize_trace

__all__ = ["ObsServer", "PROMETHEUS_CONTENT_TYPE"]

#: The content type Prometheus scrapers negotiate for the text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_EMPLOYEE_RE = re.compile(r'employee="([^"]*)"')


def _fleet_health(registry: MetricsRegistry) -> Tuple[bool, Dict[str, object]]:
    """(healthy, report) from the transport's connection gauge."""
    gauge = registry.get("repro_fleet_connected")
    down: List[str] = []
    fleet = 0
    if gauge is not None:
        for series, value in gauge.snapshot()["series"].items():
            fleet += 1
            if not value:
                match = _EMPLOYEE_RE.search(series)
                down.append(match.group(1) if match else series)
    healthy = not down
    return healthy, {
        "status": "ok" if healthy else "degraded",
        "fleet": fleet,
        "down": sorted(down),
    }


class _Handler(BaseHTTPRequestHandler):
    """Routes one obs request; the server instance carries the registry."""

    server_version = "repro-obs/1"

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        registry = self.server.obs_registry  # type: ignore[attr-defined]
        if registry is None:
            registry = get_registry()
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send(200, PROMETHEUS_CONTENT_TYPE, registry.render_prometheus())
        elif path == "/metrics.json":
            self._send(200, "application/json", registry.to_json())
        elif path == "/trace/summary":
            tracer = get_tracer()
            records = list(tracer.ring) if tracer is not None else []
            summary = summarize_trace(dedupe_synthetic(records))
            self._send(200, "application/json", json.dumps(summary, sort_keys=True))
        elif path == "/healthz":
            healthy, report = _fleet_health(registry)
            self._send(
                200 if healthy else 503,
                "application/json",
                json.dumps(report, sort_keys=True),
            )
        else:
            self._send(404, "application/json", json.dumps({"error": "not found"}))

    def log_message(self, format: str, *args) -> None:
        """Silence the default stderr access log (CLI output stays clean)."""
        return None


class ObsServer:
    """The daemon-thread HTTP endpoint; start/stop or use as a context."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
    ):
        self._requested = (host, int(port))
        self._registry = registry
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ObsServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(self._requested, _Handler)
        httpd.daemon_threads = True
        httpd.obs_registry = self._registry  # type: ignore[attr-defined]
        thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._httpd = httpd
        self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = None
        self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    close = stop

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` auto-assignment)."""
        if self._httpd is None:
            return self._requested[1]
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self._requested[0]}:{self.port}"

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def summary(self) -> str:
        """One-line CLI summary."""
        return f"obs server: {self.address}/metrics"
