"""Observability for the chief–employee training stack.

Three pillars, one package:

* **tracing** (:mod:`repro.obs.trace`) — a :class:`Tracer` with nested
  ``span("explore", employee=i)`` context managers that record
  wall-clock durations to an in-memory ring buffer and an append-only,
  schema-versioned JSONL file.  Installed via ``--trace-dir`` /
  ``REPRO_TRACE=1``; the module-level :func:`span`/:func:`event`
  helpers are no-ops when no tracer is installed.  Read back with
  :func:`read_trace` / :func:`summarize_trace` or
  ``python -m repro trace summary``.
* **metrics** (:mod:`repro.obs.metrics`) — a process-local
  :class:`MetricsRegistry` of counters/gauges/histograms with labeled
  series, exported as JSON or Prometheus text.  Always on: increments
  are deterministic locked adds, no clocks are read inside.
* **autograd profiler** (:mod:`repro.obs.profiler`) — per-op wall
  time/calls/FLOPs/bytes via the sanitizer's patch-on-enable /
  restore-on-disable contract; ``python -m repro profile`` renders the
  hot-spot table.  Zero overhead and bitwise-identical results when
  off.

Fleet observability (PR 8) adds three more modules under the same
bitwise install/uninstall contract:

* **federation** (:mod:`repro.obs.federation`) — worker registries ship
  metric *deltas* piggy-backed on replies; the chief folds them into the
  main registry under ``worker``/``host`` labels and maintains the
  ``repro_employee_lag_seconds`` straggler gauge.
* **server** (:mod:`repro.obs.server`) — a stdlib ``http.server``
  daemon-thread endpoint (``--obs-port`` / ``repro obs serve``) exposing
  ``/metrics``, ``/metrics.json``, ``/trace/summary`` and ``/healthz``.
* **flight recorder** (:mod:`repro.obs.flight`) — a bounded ring of
  recent spans + metric snapshots dumped as a post-mortem bundle
  (``repro obs dump``, plus automatic dumps on crash/quarantine paths).

Plus :func:`get_logger`/:func:`configure_logging` (stdlib ``logging``
integration) and the ASCII live :class:`Dashboard` (``--dashboard``).
"""

from .dashboard import Dashboard
from .federation import (
    FEDERATION_SCHEMA_VERSION,
    WorkerTelemetry,
    collect_delta,
    fold_into,
    update_employee_lag,
)
from .flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    auto_dump,
    get_flight_recorder,
    validate_bundle,
)
from .log import JsonFormatter, ROOT_LOGGER_NAME, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profiler import OpProfiler, OpStats, get_profiler, profile_env_enabled
from .server import PROMETHEUS_CONTENT_TYPE, ObsServer
from .trace import (
    TRACE_FILENAME,
    TRACE_SCHEMA_VERSION,
    Span,
    SpanNode,
    TraceError,
    Tracer,
    add_sink,
    build_span_tree,
    current_context,
    dedupe_synthetic,
    event,
    fold_worker_records,
    get_tracer,
    merge_traces,
    read_trace,
    record_span,
    remove_sink,
    render_trace_summary,
    reset_after_fork,
    span,
    summarize_trace,
    trace_env_enabled,
    trace_path_for,
    wall_clock,
)

__all__ = [
    # tracing
    "Tracer",
    "Span",
    "SpanNode",
    "TraceError",
    "TRACE_SCHEMA_VERSION",
    "TRACE_FILENAME",
    "span",
    "event",
    "record_span",
    "reset_after_fork",
    "get_tracer",
    "trace_env_enabled",
    "trace_path_for",
    "read_trace",
    "build_span_tree",
    "summarize_trace",
    "render_trace_summary",
    "wall_clock",
    "current_context",
    "add_sink",
    "remove_sink",
    "fold_worker_records",
    "dedupe_synthetic",
    "merge_traces",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    # federation
    "FEDERATION_SCHEMA_VERSION",
    "WorkerTelemetry",
    "collect_delta",
    "fold_into",
    "update_employee_lag",
    # server
    "ObsServer",
    "PROMETHEUS_CONTENT_TYPE",
    # flight recorder
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "get_flight_recorder",
    "auto_dump",
    "validate_bundle",
    # profiler
    "OpProfiler",
    "OpStats",
    "get_profiler",
    "profile_env_enabled",
    # logging
    "get_logger",
    "configure_logging",
    "JsonFormatter",
    "ROOT_LOGGER_NAME",
    # dashboard
    "Dashboard",
]
