"""Observability for the chief–employee training stack.

Three pillars, one package:

* **tracing** (:mod:`repro.obs.trace`) — a :class:`Tracer` with nested
  ``span("explore", employee=i)`` context managers that record
  wall-clock durations to an in-memory ring buffer and an append-only,
  schema-versioned JSONL file.  Installed via ``--trace-dir`` /
  ``REPRO_TRACE=1``; the module-level :func:`span`/:func:`event`
  helpers are no-ops when no tracer is installed.  Read back with
  :func:`read_trace` / :func:`summarize_trace` or
  ``python -m repro trace summary``.
* **metrics** (:mod:`repro.obs.metrics`) — a process-local
  :class:`MetricsRegistry` of counters/gauges/histograms with labeled
  series, exported as JSON or Prometheus text.  Always on: increments
  are deterministic locked adds, no clocks are read inside.
* **autograd profiler** (:mod:`repro.obs.profiler`) — per-op wall
  time/calls/FLOPs/bytes via the sanitizer's patch-on-enable /
  restore-on-disable contract; ``python -m repro profile`` renders the
  hot-spot table.  Zero overhead and bitwise-identical results when
  off.

Plus :func:`get_logger`/:func:`configure_logging` (stdlib ``logging``
integration) and the ASCII live :class:`Dashboard` (``--dashboard``).
"""

from .dashboard import Dashboard
from .log import JsonFormatter, ROOT_LOGGER_NAME, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profiler import OpProfiler, OpStats, get_profiler, profile_env_enabled
from .trace import (
    TRACE_FILENAME,
    TRACE_SCHEMA_VERSION,
    Span,
    SpanNode,
    TraceError,
    Tracer,
    build_span_tree,
    event,
    get_tracer,
    read_trace,
    record_span,
    render_trace_summary,
    reset_after_fork,
    span,
    summarize_trace,
    trace_env_enabled,
    trace_path_for,
)

__all__ = [
    # tracing
    "Tracer",
    "Span",
    "SpanNode",
    "TraceError",
    "TRACE_SCHEMA_VERSION",
    "TRACE_FILENAME",
    "span",
    "event",
    "record_span",
    "reset_after_fork",
    "get_tracer",
    "trace_env_enabled",
    "trace_path_for",
    "read_trace",
    "build_span_tree",
    "summarize_trace",
    "render_trace_summary",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    # profiler
    "OpProfiler",
    "OpStats",
    "get_profiler",
    "profile_env_enabled",
    # logging
    "get_logger",
    "configure_logging",
    "JsonFormatter",
    "ROOT_LOGGER_NAME",
    # dashboard
    "Dashboard",
]
