"""Structured tracing: nested spans, an in-memory ring buffer, JSONL files.

A :class:`Tracer` records **spans** (named, attributed wall-clock
intervals — ``span("phase.explore", employee=3)``) and **events**
(instant, zero-duration marks — ``event("fault.quarantine", ...)``).
Completed records land in two places:

* an in-memory **ring buffer** (``deque(maxlen=ring_size)``) for live
  consumers such as the ASCII dashboard;
* an append-only **JSONL trace file** — one schema-versioned JSON object
  per line, written and flushed atomically (a single ``write()`` call
  per record under the tracer lock), so a crashed run leaves a readable
  prefix.

Span nesting is tracked per thread: a span opened inside another span on
the same thread records that span as its parent, which is exactly the
chief/employee structure (an ``employee.explore`` span opened inside the
worker thread nests the ``env.step`` spans of that rollout).

Like the sanitizer and the autograd profiler, tracing follows the
*enable/disable* contract: instrumentation points throughout the stack
call the module-level :func:`span` / :func:`event` helpers, which are
cheap no-ops while no tracer is installed — and because span bodies only
*read* clocks, an instrumented run is bitwise-identical to an
uninstrumented one (see DESIGN.md, "Observability").

Toggles: ``python -m repro train --trace-dir DIR`` or ``REPRO_TRACE=1``
(optionally with ``REPRO_TRACE_DIR``).
"""

from __future__ import annotations

import io
import itertools
import json
import logging
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..utils.tables import format_table

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TRACE_FILENAME",
    "TraceError",
    "Span",
    "SpanNode",
    "Tracer",
    "span",
    "event",
    "record_span",
    "reset_after_fork",
    "get_tracer",
    "trace_env_enabled",
    "trace_path_for",
    "read_trace",
    "build_span_tree",
    "summarize_trace",
    "render_trace_summary",
    "wall_clock",
    "current_context",
    "add_sink",
    "remove_sink",
    "fold_worker_records",
    "dedupe_synthetic",
    "merge_traces",
]

_LOG = logging.getLogger("repro.obs.trace")

#: Version stamp written into every record; bump on breaking layout changes.
TRACE_SCHEMA_VERSION = 1

#: File name used inside a ``--trace-dir`` directory.
TRACE_FILENAME = "trace.jsonl"

_RECORD_TYPES = ("header", "span", "event")


class TraceError(ValueError):
    """Raised when a trace file violates the JSONL schema."""


def trace_env_enabled(environ=None) -> bool:
    """True when ``REPRO_TRACE`` requests tracing (1/true/yes/on)."""
    environ = os.environ if environ is None else environ
    return str(environ.get("REPRO_TRACE", "")).strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def trace_path_for(trace_dir: str) -> str:
    """The trace file path inside ``trace_dir`` (created if missing)."""
    os.makedirs(trace_dir, exist_ok=True)
    return os.path.join(trace_dir, TRACE_FILENAME)


class Span:
    """One open span; context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "_start_ts", "_start_pc")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self._start_ts = 0.0
        self._start_pc = 0.0

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._start_ts = time.time()
        self._start_pc = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter() - self._start_pc
        stack = self.tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self.tracer._emit(
            {
                "schema": TRACE_SCHEMA_VERSION,
                "type": "span",
                "name": self.name,
                "ts": self._start_ts,
                "dur": duration,
                "id": self.span_id,
                "parent": self.parent_id,
                "attrs": self.attrs,
            }
        )


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Record spans and events to a ring buffer and an optional JSONL file.

    Parameters
    ----------
    path:
        JSONL trace file (append-only; a header record is written on
        install).  ``None`` keeps records in memory only.
    ring_size:
        Entries retained by the in-memory ring buffer.
    trace_id:
        Fleet-wide run identifier propagated to workers.  ``None`` (the
        default) derives one from the pid and the wall clock at
        :meth:`install` time; worker-side tracers receive the chief's id
        through the command context instead.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        ring_size: int = 4096,
        trace_id: Optional[str] = None,
    ):
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.path = os.fspath(path) if path is not None else None
        self.ring: "deque[Dict[str, object]]" = deque(maxlen=ring_size)
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._handle: Optional[io.TextIOBase] = None
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._installed = False
        self.records_emitted = 0

    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _emit(self, record: Dict[str, object]) -> None:
        with self._lock:
            self.ring.append(record)
            self.records_emitted += 1
            if self._handle is not None:
                # One write() + flush per record: an interrupted run leaves
                # at most one torn trailing line, never interleaved records.
                self._handle.write(json.dumps(record, sort_keys=True) + "\n")
                self._handle.flush()
        # Sinks (e.g. the flight recorder) run outside the lock so a slow
        # sink never serializes unrelated emitters; a broken sink is
        # detached rather than poisoning every subsequent record.
        for sink in list(_SINKS):
            try:
                sink(record)
            except Exception:
                _LOG.warning("trace sink %r raised; removing it", sink, exc_info=True)
                remove_sink(sink)

    def drain_ring(self) -> List[Dict[str, object]]:
        """Pop and return every buffered span/event record (headers dropped).

        Worker processes call this at reply time to piggy-back their
        freshly recorded spans on the result payload; draining (rather
        than copying) keeps each reply's batch disjoint.
        """
        with self._lock:
            records = [r for r in self.ring if r.get("type") != "header"]
            self.ring.clear()
        return records

    # ------------------------------------------------------------------
    # Recording API
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """A context manager timing one named span."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record one instant (zero-duration) event."""
        stack = self._stack()
        self._emit(
            {
                "schema": TRACE_SCHEMA_VERSION,
                "type": "event",
                "name": name,
                "ts": time.time(),
                "dur": 0.0,
                "id": next(self._ids),
                "parent": stack[-1] if stack else None,
                "attrs": attrs,
            }
        )

    # ------------------------------------------------------------------
    # Install / remove (module-level singleton)
    # ------------------------------------------------------------------
    def install(self) -> "Tracer":
        """Make this the process-wide active tracer; opens the trace file."""
        if self._installed:
            return self
        if _ACTIVE is not None:
            raise RuntimeError("another Tracer is already installed")
        if self.path is not None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            handle = open(self.path, "a", encoding="utf-8")
            with self._lock:
                self._handle = handle
        if self.trace_id is None:
            self.trace_id = f"{os.getpid():x}-{int(time.time() * 1e6):x}"
        self._emit(
            {
                "schema": TRACE_SCHEMA_VERSION,
                "type": "header",
                "name": "trace",
                "ts": time.time(),
                "dur": 0.0,
                "id": 0,
                "parent": None,
                "attrs": {"pid": os.getpid(), "trace_id": self.trace_id},
            }
        )
        self._installed = True
        _bind_active_reset_after_fork(self)
        return self

    def uninstall(self) -> "Tracer":
        """Detach and close the trace file (records stay in the ring)."""
        if not self._installed:
            return self
        self._installed = False
        if _ACTIVE is self:
            _bind_active_reset_after_fork(None)
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
        return self

    @property
    def installed(self) -> bool:
        return self._installed

    def __enter__(self) -> "Tracer":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    def summary(self) -> str:
        """One-line CLI summary."""
        where = self.path if self.path is not None else "<memory>"
        with self._lock:
            emitted = self.records_emitted
        return f"tracer: {emitted} record(s) -> {where}"


# ----------------------------------------------------------------------
# Module-level helpers (the instrumentation surface)
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None


def _bind_active_reset_after_fork(tracer: Optional[Tracer]) -> None:
    """(Re)bind the process-local tracer singleton.

    The only place ``_ACTIVE`` is rebound.  Named into the RPL015
    ``reset_after_fork`` re-init family on purpose: installing a tracer
    inside a freshly forked worker *is* fork-side re-initialization of
    per-process trace state (the worker adopts its own tracer after
    :func:`reset_after_fork` dropped the inherited one), not chief state
    leaking through the fork.
    """
    global _ACTIVE
    _ACTIVE = tracer


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, if any."""
    return _ACTIVE


def span(name: str, **attrs):
    """Span context manager on the active tracer (no-op when tracing is off)."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Instant event on the active tracer (no-op when tracing is off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.event(name, **attrs)


def record_span(name: str, duration: float, **attrs) -> None:
    """Record an already-measured span (no-op when tracing is off).

    The process backend's workers measure their explore/minibatch tasks
    with ``perf_counter`` and ship only ``(name, duration)`` back over the
    pipe; the chief merges them into *its* trace with this helper.  The
    record is identical to a :class:`Span` record — same schema, parented
    under the chief's current span stack — with ``ts`` back-dated by
    ``duration`` so timelines remain roughly ordered.
    """
    tracer = _ACTIVE
    if tracer is None:
        return
    stack = tracer._stack()
    tracer._emit(
        {
            "schema": TRACE_SCHEMA_VERSION,
            "type": "span",
            "name": name,
            "ts": time.time() - duration,
            "dur": float(duration),
            "id": next(tracer._ids),
            "parent": stack[-1] if stack else None,
            "attrs": attrs,
        }
    )


def reset_after_fork() -> None:
    """Detach any inherited tracer in a freshly forked worker process.

    A ``fork``-started worker inherits the chief's installed tracer —
    including its *open JSONL handle*, whose writes from two processes
    would interleave arbitrarily (the tracer lock is per-process after
    fork, so it provides no cross-process exclusion).  Workers therefore
    call this first: the active tracer is cleared and the inherited
    handle reference dropped **without closing it** (the underlying file
    descriptor is shared with the chief, and every record was flushed at
    emit time, so there is nothing buffered to lose).
    """
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    if tracer is not None:
        tracer._installed = False
        tracer._handle = None
    # Inherited sinks (e.g. the chief's flight recorder) would otherwise
    # keep buffering into the parent's rings inside the worker.
    del _SINKS[:]


# ----------------------------------------------------------------------
# Fleet helpers: wall clock, trace context, sinks
# ----------------------------------------------------------------------
_SINKS: List[Callable[[Dict[str, object]], None]] = []


def wall_clock() -> float:
    """The wall clock (``time.time()``), exposed for non-obs modules.

    RPL006 confines raw wall-clock reads to the obs/transport layers;
    modules on the hot training path (e.g. ``procpool``) stamp reply
    clocks through this helper so the discipline stays greppable.
    """
    return time.time()


def current_context() -> Optional[Dict[str, object]]:
    """The (trace_id, parent span id) context to propagate to a worker.

    ``None`` while tracing is off — the command payload then omits the
    context field entirely, which old peers never look at.
    """
    tracer = _ACTIVE
    if tracer is None:
        return None
    stack = tracer._stack()
    return {
        "trace_id": tracer.trace_id,
        "parent": stack[-1] if stack else None,
    }


def add_sink(sink: Callable[[Dict[str, object]], None]) -> None:
    """Register a callable invoked with every emitted record (any tracer)."""
    if sink not in _SINKS:
        _SINKS.append(sink)


def remove_sink(sink: Callable[[Dict[str, object]], None]) -> None:
    """Unregister a sink added by :func:`add_sink` (missing sinks are fine)."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        _LOG.debug("remove_sink: %r was not registered", sink)


def fold_worker_records(
    records: Sequence[Dict[str, object]],
    *,
    parent: Optional[int] = None,
    offset: float = 0.0,
    **labels,
) -> int:
    """Merge worker-emitted records into the chief's active tracer.

    Worker span ids live in the worker's own id space; each record is
    re-issued a chief-side id (preserving relative order, so parents keep
    smaller ids than their children), worker-local roots are re-parented
    under ``parent`` (the chief span that issued the command), ``offset``
    — the chief-minus-worker clock estimate — is added to every
    timestamp, and ``labels`` (host/worker/pid) are folded into attrs.
    The raw worker records are never mutated, so per-worker files and
    rings stay unmodified primary sources.  Returns the number of records
    folded (0 while tracing is off).
    """
    tracer = _ACTIVE
    if tracer is None:
        return 0
    clean = [
        record
        for record in records
        if isinstance(record, dict) and record.get("type") in ("span", "event")
    ]
    mapping: Dict[int, int] = {}
    for record in sorted(clean, key=lambda r: int(r.get("id", 0))):
        mapping[int(record.get("id", 0))] = next(tracer._ids)
    folded = 0
    for record in clean:
        attrs = dict(record.get("attrs") or {})
        for key, value in labels.items():
            if value is not None:
                attrs[key] = value
        raw_parent = record.get("parent")
        new_parent = mapping.get(int(raw_parent)) if raw_parent is not None else None
        tracer._emit(
            {
                "schema": TRACE_SCHEMA_VERSION,
                "type": str(record["type"]),
                "name": str(record["name"]),
                "ts": float(record["ts"]) + float(offset),
                "dur": float(record.get("dur", 0.0)),
                "id": mapping[int(record["id"])],
                "parent": parent if new_parent is None else new_parent,
                "attrs": attrs,
            }
        )
        folded += 1
    return folded


def _synthetic_key(record: Dict[str, object]) -> Tuple[object, object, object, object]:
    attrs = record.get("attrs") or {}
    return (
        record.get("name"),
        attrs.get("employee"),
        attrs.get("episode"),
        attrs.get("round"),
    )


def dedupe_synthetic(
    records: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Drop chief re-emitted ``synthetic`` spans shadowed by worker spans.

    Before trace propagation the chief re-emitted each worker task as an
    ``employee.*`` span from the shipped duration; those re-emissions are
    now marked ``attrs.synthetic`` and are dropped whenever a genuine
    worker-propagated span for the same (name, employee, episode, round)
    is present, so mixed traces never double-count a task.  Unshadowed
    synthetic spans (old workers, tracing-only runs) are kept.
    """
    real = set()
    for record in records:
        if record.get("type") != "span":
            continue
        attrs = record.get("attrs") or {}
        if not attrs.get("synthetic") and attrs.get("employee") is not None:
            real.add(_synthetic_key(record))
    kept: List[Dict[str, object]] = []
    for record in records:
        attrs = record.get("attrs") or {}
        if attrs.get("synthetic") and _synthetic_key(record) in real:
            continue
        kept.append(record)
    return kept


def merge_traces(streams: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Merge per-process trace record streams into one corrected stream.

    Each stream is ``{"records": [...], "offset": chief_minus_worker,
    "labels": {...}}``.  Ids are re-issued from one shared counter
    (order-preserving per stream), ``offset`` is added to every
    timestamp, labels land in attrs, headers are dropped, and parents
    torn away by a truncated file degrade to roots.  The merged stream is
    sorted by corrected ``(ts, id)``.
    """
    ids = itertools.count(1)
    merged: List[Dict[str, object]] = []
    for stream in streams:
        records = stream.get("records") or []
        offset = float(stream.get("offset", 0.0))
        labels = dict(stream.get("labels") or {})
        clean = [r for r in records if r.get("type") in ("span", "event")]
        mapping: Dict[int, int] = {}
        for record in sorted(clean, key=lambda r: int(r["id"])):
            mapping[int(record["id"])] = next(ids)
        for record in clean:
            attrs = dict(record.get("attrs") or {})
            attrs.update(labels)
            raw_parent = record.get("parent")
            merged.append(
                {
                    "schema": TRACE_SCHEMA_VERSION,
                    "type": str(record["type"]),
                    "name": str(record["name"]),
                    "ts": float(record["ts"]) + offset,
                    "dur": float(record.get("dur", 0.0)),
                    "id": mapping[int(record["id"])],
                    "parent": (
                        mapping.get(int(raw_parent))
                        if raw_parent is not None
                        else None
                    ),
                    "attrs": attrs,
                }
            )
    merged.sort(key=lambda record: (record["ts"], record["id"]))
    return merged


# ----------------------------------------------------------------------
# Reading trace files back
# ----------------------------------------------------------------------
_REQUIRED_FIELDS = ("schema", "type", "name", "ts", "dur", "id", "attrs")


def _validate(record: object, lineno: int) -> Dict[str, object]:
    if not isinstance(record, dict):
        raise TraceError(f"line {lineno}: record is not a JSON object")
    missing = [key for key in _REQUIRED_FIELDS if key not in record]
    if missing:
        raise TraceError(f"line {lineno}: missing field(s) {missing}")
    if record["schema"] != TRACE_SCHEMA_VERSION:
        raise TraceError(
            f"line {lineno}: schema {record['schema']!r} != {TRACE_SCHEMA_VERSION}"
        )
    if record["type"] not in _RECORD_TYPES:
        raise TraceError(f"line {lineno}: unknown record type {record['type']!r}")
    if not isinstance(record["attrs"], dict):
        raise TraceError(f"line {lineno}: attrs must be an object")
    return record


def read_trace(path: str) -> List[Dict[str, object]]:
    """Parse and validate a JSONL trace file (dir paths resolve to its file).

    A torn trailing line (from a killed process) is tolerated; any other
    malformed line raises :class:`TraceError`.
    """
    if os.path.isdir(path):
        path = os.path.join(path, TRACE_FILENAME)
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                break  # torn trailing line from an interrupted writer
            raise TraceError(f"line {lineno}: invalid JSON") from None
        records.append(_validate(payload, lineno))
    return records


@dataclass
class SpanNode:
    """One span (or event) in a reconstructed trace tree."""

    name: str
    span_id: int
    parent_id: Optional[int]
    ts: float
    dur: float
    kind: str = "span"
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def build_span_tree(records: Sequence[Dict[str, object]]) -> List[SpanNode]:
    """Reconstruct the span forest (roots sorted by start time).

    Spans are emitted at *end* time, so children appear before their
    parents in the file; the tree is linked by ``parent`` id.  Events are
    attached as zero-duration leaves.  Orphans (parent span still open
    when the file stopped) become roots.
    """
    nodes: Dict[int, SpanNode] = {}
    for record in records:
        if record["type"] == "header":
            continue
        node = SpanNode(
            name=str(record["name"]),
            span_id=int(record["id"]),
            parent_id=None if record.get("parent") is None else int(record["parent"]),
            ts=float(record["ts"]),
            dur=float(record["dur"]),
            kind=str(record["type"]),
            attrs=dict(record["attrs"]),
        )
        nodes[node.span_id] = node
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: (child.ts, child.span_id))
    roots.sort(key=lambda node: (node.ts, node.span_id))
    return roots


@dataclass
class _Agg:
    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        self.max = max(self.max, duration)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def summarize_trace(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate a trace: per-name, per-phase and per-employee timings.

    Returns a plain dict so callers can render or JSON-dump it:
    ``{"spans": n, "events": n, "by_name": {...}, "by_employee": {...},
    "by_host_worker": {...}, "event_counts": {...}}``.  The
    ``by_host_worker`` table covers only spans carrying the fleet
    ``worker`` label injected by :func:`fold_worker_records` /
    :func:`merge_traces` — i.e. genuinely worker-emitted spans.
    """
    by_name: Dict[str, _Agg] = {}
    by_employee: Dict[Tuple[str, int], _Agg] = {}
    by_host_worker: Dict[Tuple[str, str, str], _Agg] = {}
    event_counts: Dict[str, int] = {}
    spans = events = 0
    for record in records:
        name = str(record["name"])
        if record["type"] == "span":
            spans += 1
            duration = float(record["dur"])
            by_name.setdefault(name, _Agg()).add(duration)
            employee = record["attrs"].get("employee")
            if employee is not None:
                key = (name, int(employee))
                by_employee.setdefault(key, _Agg()).add(duration)
            worker = record["attrs"].get("worker")
            if worker is not None:
                host = str(record["attrs"].get("host") or "local")
                fleet_key = (host, str(worker), name)
                by_host_worker.setdefault(fleet_key, _Agg()).add(duration)
        elif record["type"] == "event":
            events += 1
            event_counts[name] = event_counts.get(name, 0) + 1
    return {
        "spans": spans,
        "events": events,
        "by_name": {
            name: {
                "count": agg.count,
                "total": agg.total,
                "mean": agg.mean,
                "max": agg.max,
            }
            for name, agg in sorted(by_name.items())
        },
        "by_employee": {
            f"{name}[{employee}]": {
                "count": agg.count,
                "total": agg.total,
                "mean": agg.mean,
                "max": agg.max,
            }
            for (name, employee), agg in sorted(by_employee.items())
        },
        "by_host_worker": {
            f"{name}[{host}/{worker}]": {
                "count": agg.count,
                "total": agg.total,
                "mean": agg.mean,
                "max": agg.max,
            }
            for (host, worker, name), agg in sorted(by_host_worker.items())
        },
        "event_counts": dict(sorted(event_counts.items())),
    }


def render_trace_summary(summary: Dict[str, object]) -> str:
    """Human-readable tables for :func:`summarize_trace` output."""
    lines: List[str] = [
        f"trace: {summary['spans']} span(s), {summary['events']} event(s)"
    ]
    by_name = summary["by_name"]
    if by_name:
        rows = [
            [name, agg["count"], agg["total"], agg["mean"], agg["max"]]
            for name, agg in sorted(
                by_name.items(), key=lambda item: -item[1]["total"]
            )
        ]
        lines.append("")
        lines.append(
            format_table(
                ["span", "count", "total s", "mean s", "max s"],
                rows,
                title="per-span timings",
                precision=4,
            )
        )
    by_employee = summary["by_employee"]
    if by_employee:
        rows = [
            [name, agg["count"], agg["total"], agg["mean"]]
            for name, agg in sorted(by_employee.items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["span[employee]", "count", "total s", "mean s"],
                rows,
                title="per-employee timings",
                precision=4,
            )
        )
    by_host_worker = summary.get("by_host_worker") or {}
    if by_host_worker:
        rows = [
            [name, agg["count"], agg["total"], agg["mean"]]
            for name, agg in sorted(by_host_worker.items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["span[host/worker]", "count", "total s", "mean s"],
                rows,
                title="per-host/per-worker timings",
                precision=4,
            )
        )
    event_counts = summary["event_counts"]
    if event_counts:
        lines.append("")
        lines.append(
            format_table(
                ["event", "count"],
                [[name, count] for name, count in event_counts.items()],
                title="events",
            )
        )
    return "\n".join(lines)
