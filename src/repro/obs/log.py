"""Standard-library ``logging`` integration for the reproduction.

Two entry points:

* :func:`get_logger` returns a child of the ``repro`` logger hierarchy
  (``get_logger("repro.distributed.trainer")`` or simply
  ``get_logger(__name__)``).  Modules call this at import time and log
  freely; until :func:`configure_logging` is called, a
  :class:`logging.NullHandler` swallows everything, so library users
  who never opt in see no output and pay (almost) nothing.
* :func:`configure_logging` is the single opt-in configuration point:
  it attaches one stream handler to the ``repro`` root logger with
  either a plain human-readable formatter or a JSON-lines formatter.
  Calling it again reconfigures (idempotent — never stacks handlers).

The JSON formatter serialises ``record.created`` (a timestamp captured
by the stdlib logging machinery itself), so no code in this module
reads a clock directly — consistent with the lint rules.
"""

from __future__ import annotations

import json
import logging
from typing import IO, Optional, Union

__all__ = [
    "get_logger",
    "configure_logging",
    "JsonFormatter",
    "ROOT_LOGGER_NAME",
]

#: Every repro logger lives under this root.
ROOT_LOGGER_NAME = "repro"

_PLAIN_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg (+ exception)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def _root() -> logging.Logger:
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    if not logger.handlers:
        # Library default: silent unless the app opts in.
        logger.addHandler(logging.NullHandler())
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger inside the ``repro`` hierarchy.

    ``get_logger()`` returns the root ``repro`` logger;
    ``get_logger(__name__)`` keeps names already under ``repro``
    untouched and prefixes anything else with ``repro.``.
    """
    _root()
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    level: Union[int, str] = "INFO",
    json: bool = False,  # noqa: A002 - mirrors the issue's spec
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Opt in to log output on the ``repro`` hierarchy.

    Replaces any handler previously attached by this function (or the
    default NullHandler), so repeated calls reconfigure instead of
    duplicating lines.  Returns the configured root logger.
    """
    logger = _root()
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    handler = logging.StreamHandler(stream) if stream is not None else logging.StreamHandler()
    handler.setFormatter(JsonFormatter() if json else logging.Formatter(_PLAIN_FORMAT))
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
