"""Process-local metrics: counters, gauges and histograms with labels.

A :class:`MetricsRegistry` owns named metrics; each metric owns labeled
series (``counter.labels(employee="3").inc()``).  Snapshots export to a
plain JSON-able dict and to the Prometheus text exposition format, so a
training run can be scraped or archived without any external dependency.

The registry is deliberately *dumb and deterministic*: increments are a
locked float add, no clocks are read, and nothing here can perturb a
training run — the trainer keeps its metrics hot at all times (unlike
tracing/profiling, which follow the enable/disable patching contract).
Durations fed into histograms are measured by the *caller* with
``time.perf_counter`` (the reporting-only clock the lint rules allow).
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-flavoured, Prometheus style).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

LabelValues = Tuple[str, ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared machinery of the three metric kinds.

    ``labelnames`` are *required* on every :meth:`labels` call.
    ``extra_labelnames`` are the federation labels (``worker``/``host``):
    optional, defaulting to the empty string, and **omitted from
    rendering when empty** — so a metric grown extra labels for folded
    worker series exposes its chief-side series byte-identically to a
    metric that never had them.  Both tuples are immutable after
    construction (reads happen lock-free on the hot path).
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        extra_labelnames: Sequence[str] = (),
    ):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self.extra_labelnames = tuple(extra_labelnames)
        for label in self.labelnames + self.extra_labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        overlap = set(self.labelnames) & set(self.extra_labelnames)
        if overlap:
            raise ValueError(
                f"{name}: extra labels {sorted(overlap)} duplicate labelnames"
            )
        self._lock = threading.Lock()
        self._series: Dict[LabelValues, object] = {}

    def _key(self, labels: Dict[str, object]) -> LabelValues:
        required = set(self.labelnames)
        extras = set(self.extra_labelnames)
        provided = set(labels)
        if not (required <= provided and provided <= required | extras):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames) + tuple(
            str(labels.get(name, "")) for name in self.extra_labelnames
        )

    def labels(self, **labels) -> "_Metric":
        """A bound child carrying fixed label values."""
        key = self._key(labels)
        return _Bound(self, key)

    def _pairs(self, key: LabelValues, trailing: Sequence[Tuple[str, str]] = ()) -> str:
        """Rendered ``label="value"`` pairs; empty extras are skipped."""
        names = self.labelnames + self.extra_labelnames
        required = len(self.labelnames)
        parts = [
            f'{label}="{_escape(value)}"'
            for index, (label, value) in enumerate(zip(names, key))
            if index < required or value != ""
        ]
        parts.extend(f'{label}="{_escape(value)}"' for label, value in trailing)
        return ",".join(parts)

    def _labelled_name(self, key: LabelValues, suffix: str = "") -> str:
        pairs = self._pairs(key)
        if not pairs:
            return f"{self.name}{suffix}"
        return f"{self.name}{suffix}{{{pairs}}}"

    # Overridden by subclasses -----------------------------------------
    def _default(self) -> object:
        raise NotImplementedError

    def _get(self, key: LabelValues) -> object:
        with self._lock:
            if key not in self._series:
                self._series[key] = self._default()
            return self._series[key]

    def snapshot(self) -> Dict[str, object]:
        raise NotImplementedError

    def render(self) -> List[str]:
        raise NotImplementedError


class _Bound:
    """A metric bound to one label-value tuple."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: _Metric, key: LabelValues):
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        self._metric._set(self._key, value)  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        self._metric._observe(self._key, value)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        return self._metric._value(self._key)  # type: ignore[attr-defined]


class Counter(_Metric):
    """Monotonically increasing count (``_total`` by convention)."""

    kind = "counter"

    def _default(self) -> float:
        return 0.0

    def _inc(self, key: LabelValues, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease ({amount})")
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def _value(self, key: LabelValues) -> float:
        with self._lock:
            return float(self._series.get(key, 0.0))

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled series."""
        self._inc(self._key({}), amount)

    @property
    def value(self) -> float:
        return self._value(self._key({}))

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "kind": self.kind,
                "help": self.help,
                "series": {
                    self._labelled_name(key): value
                    for key, value in sorted(self._series.items())
                },
            }

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            for key, value in sorted(self._series.items()):
                lines.append(
                    f"{self._labelled_name(key)} {_format_value(float(value))}"
                )
        return lines

    def raw_series(self) -> Dict[LabelValues, float]:
        """Raw per-key values keyed by label tuples (federation deltas)."""
        with self._lock:
            return {key: float(value) for key, value in self._series.items()}


class Gauge(Counter):
    """A value that can go up and down."""

    kind = "gauge"

    def _inc(self, key: LabelValues, amount: float) -> None:
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def _set(self, key: LabelValues, value: float) -> None:
        with self._lock:
            self._series[key] = float(value)

    def set(self, value: float) -> None:
        """Set the unlabelled series."""
        self._set(self._key({}), value)

    def dec(self, amount: float = 1.0) -> None:
        self._inc(self._key({}), -amount)


class _HistogramState:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int):
        self.counts = [0] * num_buckets  # cumulative at render time, raw here
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Bucketed distribution (e.g. ``barrier_wait_seconds``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        extra_labelnames: Sequence[str] = (),
    ):
        super().__init__(
            name,
            help=help,
            labelnames=labelnames,
            extra_labelnames=extra_labelnames,
        )
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be non-empty and increasing: {buckets}")
        self.buckets = bounds

    def _default(self) -> _HistogramState:
        return _HistogramState(len(self.buckets))

    def _observe(self, key: LabelValues, value: float) -> None:
        value = float(value)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._default()
                self._series[key] = state
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state.counts[index] += 1
                    break
            state.sum += value
            state.count += 1

    def observe(self, value: float) -> None:
        """Observe into the unlabelled series."""
        self._observe(self._key({}), value)

    def _value(self, key: LabelValues) -> float:
        with self._lock:
            state = self._series.get(key)
            return float(state.sum) if state is not None else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            series = {}
            for key, state in sorted(self._series.items()):
                series[self._labelled_name(key)] = {
                    "count": state.count,
                    "sum": state.sum,
                    "buckets": {
                        _format_value(bound): count
                        for bound, count in zip(self.buckets, state.counts)
                    },
                }
            return {"kind": self.kind, "help": self.help, "series": series}

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            for key, state in sorted(self._series.items()):
                cumulative = 0
                for bound, count in zip(self.buckets, state.counts):
                    cumulative += count
                    pairs = self._pairs(key, trailing=(("le", _format_value(bound)),))
                    lines.append(f"{self.name}_bucket{{{pairs}}} {cumulative}")
                pairs = self._pairs(key, trailing=(("le", "+Inf"),))
                lines.append(f"{self.name}_bucket{{{pairs}}} {state.count}")
                lines.append(
                    f"{self._labelled_name(key, '_sum')} {_format_value(state.sum)}"
                )
                lines.append(f"{self._labelled_name(key, '_count')} {state.count}")
        return lines

    def raw_series(self) -> Dict[LabelValues, Dict[str, object]]:
        """Raw per-key state (bucket counts, sum, count) for federation."""
        with self._lock:
            return {
                key: {
                    "counts": list(state.counts),
                    "sum": float(state.sum),
                    "count": int(state.count),
                }
                for key, state in self._series.items()
            }

    def _fold(
        self, key: LabelValues, counts: Sequence[int], total: float, count: int
    ) -> None:
        """Add a shipped bucket-count delta into one series (federation)."""
        counts = [int(c) for c in counts]
        if len(counts) != len(self.buckets):
            raise ValueError(
                f"{self.name}: cannot fold {len(counts)} bucket(s) into "
                f"{len(self.buckets)}"
            )
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._default()
                self._series[key] = state
            for index, delta in enumerate(counts):
                state.counts[index] += delta
            state.sum += float(total)
            state.count += int(count)


class MetricsRegistry:
    """Get-or-create registry of named metrics with consistent typing."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        extra_labelnames: Sequence[str] = (),
    ) -> Counter:
        return self._get_or_create(
            Counter,
            name,
            help=help,
            labelnames=labelnames,
            extra_labelnames=extra_labelnames,
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        extra_labelnames: Sequence[str] = (),
    ) -> Gauge:
        return self._get_or_create(
            Gauge,
            name,
            help=help,
            labelnames=labelnames,
            extra_labelnames=extra_labelnames,
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        extra_labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            help=help,
            labelnames=labelnames,
            buckets=buckets,
            extra_labelnames=extra_labelnames,
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """All metrics as one JSON-able dict."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def raw_series(self) -> Dict[str, Dict[str, object]]:
        """Raw label-tuple-keyed series for every metric (federation)."""
        with self._lock:
            metrics = list(self._metrics.items())
        out: Dict[str, Dict[str, object]] = {}
        for name, metric in sorted(metrics):
            spec: Dict[str, object] = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": metric.labelnames,
                "series": metric.raw_series(),
            }
            if isinstance(metric, Histogram):
                spec["buckets"] = metric.buckets
            out[name] = spec
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = [metric for __, metric in sorted(self._metrics.items())]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric (tests and fresh runs)."""
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
# Default process-local registry
# ----------------------------------------------------------------------
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one (tests)."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
