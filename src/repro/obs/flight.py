"""Crash flight recorder: a bounded ring of recent telemetry per process.

A :class:`FlightRecorder` taps the tracer's sink hook for every emitted
span/event and keeps the most recent ``max_spans`` in memory alongside
the last ``max_snapshots`` metric snapshots.  On demand — ``repro obs
dump``, or automatically from the WorkerDied/quarantine/crash paths via
:func:`auto_dump` — it writes a self-contained post-mortem **bundle**:

.. code-block:: json

    {"schema": 1, "reason": "crash", "ts": ..., "pid": ..., "host": ...,
     "spans": [...], "metrics": [...], "extra": {...}}

``spans`` are verbatim trace records (same schema as ``trace.jsonl``),
``metrics`` are registry snapshots (newest last), ``extra`` carries the
dump site's context (employee index, episode, ...).  Bundles validate
with :func:`validate_bundle`, so CI's injected-SIGKILL leg can assert a
usable diagnosis artifact survived the fault.

Like every obs layer the recorder is read-only bookkeeping under the
bitwise contract: installing it registers a trace sink and touches no
RNG; :func:`auto_dump` is a no-op while no recorder is installed.
"""

from __future__ import annotations

import json
import logging
import os
import platform
import threading
from collections import deque
from typing import Dict, Optional, Union

from .metrics import MetricsRegistry, get_registry
from .trace import add_sink, remove_sink, wall_clock

__all__ = [
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "get_flight_recorder",
    "auto_dump",
    "validate_bundle",
    "reset_after_fork",
]

_LOG = logging.getLogger("repro.obs.flight")

#: Version stamp on every bundle; bump on breaking layout changes.
FLIGHT_SCHEMA_VERSION = 1

_BUNDLE_FIELDS = ("schema", "reason", "ts", "pid", "host", "spans", "metrics", "extra")


class FlightRecorder:
    """Buffer recent spans + metric snapshots; dump post-mortem bundles.

    Parameters
    ----------
    directory:
        Where bundles land (created on first dump).
    max_spans:
        Trace records retained (oldest evicted first).
    max_snapshots:
        Registry snapshots retained by :meth:`note_metrics`.
    """

    def __init__(
        self,
        directory: str = os.path.join("runs", "flight"),
        max_spans: int = 2048,
        max_snapshots: int = 8,
    ):
        if max_spans < 1 or max_snapshots < 1:
            raise ValueError(
                f"bounds must be >= 1, got {max_spans}/{max_snapshots}"
            )
        self.directory = os.fspath(directory)
        self._spans: "deque[Dict[str, object]]" = deque(maxlen=max_spans)
        self._snapshots: "deque[Dict[str, object]]" = deque(maxlen=max_snapshots)
        self._lock = threading.Lock()
        self._installed = False
        self._dumps = 0

    # ------------------------------------------------------------------
    def _on_record(self, record: Dict[str, object]) -> None:
        if record.get("type") == "header":
            return
        with self._lock:
            self._spans.append(record)

    def note_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Append a registry snapshot to the bounded snapshot ring."""
        if registry is None:
            registry = get_registry()
        snapshot = {"ts": wall_clock(), "metrics": registry.snapshot()}
        with self._lock:
            self._snapshots.append(snapshot)

    # ------------------------------------------------------------------
    def install(self) -> "FlightRecorder":
        """Register as the process-wide recorder and tap the trace sink."""
        global _ACTIVE
        if self._installed:
            return self
        if _ACTIVE is not None:
            raise RuntimeError("another FlightRecorder is already installed")
        add_sink(self._on_record)
        self._installed = True
        _ACTIVE = self
        return self

    def uninstall(self) -> "FlightRecorder":
        global _ACTIVE
        if not self._installed:
            return self
        self._installed = False
        if _ACTIVE is self:
            _ACTIVE = None
        remove_sink(self._on_record)
        return self

    @property
    def installed(self) -> bool:
        return self._installed

    def __enter__(self) -> "FlightRecorder":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    def dump(self, reason: str, **extra) -> str:
        """Write one bundle (plus a fresh metrics snapshot) and return its path."""
        self.note_metrics()
        with self._lock:
            self._dumps += 1
            bundle = {
                "schema": FLIGHT_SCHEMA_VERSION,
                "reason": str(reason),
                "ts": wall_clock(),
                "pid": os.getpid(),
                "host": platform.node(),
                "spans": list(self._spans),
                "metrics": list(self._snapshots),
                "extra": dict(extra),
            }
            count = self._dumps
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(
            self.directory, f"flight-{os.getpid()}-{count:03d}.json"
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, sort_keys=True)
            handle.write("\n")
        return path

    def summary(self) -> str:
        """One-line CLI summary."""
        with self._lock:
            spans, dumps = len(self._spans), self._dumps
        return (
            f"flight recorder: {spans} span(s) buffered, "
            f"{dumps} bundle(s) -> {self.directory}"
        )


# ----------------------------------------------------------------------
# Module-level singleton (mirrors the tracer's install contract)
# ----------------------------------------------------------------------
_ACTIVE: Optional[FlightRecorder] = None


def get_flight_recorder() -> Optional[FlightRecorder]:
    """The installed recorder, if any."""
    return _ACTIVE


def auto_dump(reason: str, **extra) -> Optional[str]:
    """Dump a bundle from a fault path (no-op while no recorder is installed)."""
    recorder = _ACTIVE
    if recorder is None:
        return None
    try:
        return recorder.dump(reason, **extra)
    except OSError as error:
        # A full disk must not turn a survivable worker fault into a
        # chief crash; the bundle is best-effort by design.
        _LOG.warning("flight recorder dump failed: %s", error)
        return None


def reset_after_fork() -> None:
    """Drop any inherited recorder in a freshly forked worker process."""
    global _ACTIVE
    recorder = _ACTIVE
    _ACTIVE = None
    if recorder is not None:
        recorder._installed = False


def validate_bundle(bundle: Union[str, Dict[str, object]]) -> Dict[str, object]:
    """Validate a bundle (path or parsed dict); returns it or raises ``ValueError``."""
    if isinstance(bundle, str):
        with open(bundle, "r", encoding="utf-8") as handle:
            bundle = json.load(handle)
    if not isinstance(bundle, dict):
        raise ValueError("flight bundle must be a JSON object")
    missing = [key for key in _BUNDLE_FIELDS if key not in bundle]
    if missing:
        raise ValueError(f"flight bundle missing field(s) {missing}")
    if bundle["schema"] != FLIGHT_SCHEMA_VERSION:
        raise ValueError(
            f"flight bundle schema {bundle['schema']!r} != {FLIGHT_SCHEMA_VERSION}"
        )
    if not isinstance(bundle["spans"], list) or not isinstance(
        bundle["metrics"], list
    ):
        raise ValueError("flight bundle spans/metrics must be lists")
    for index, record in enumerate(bundle["spans"]):
        if not isinstance(record, dict) or "name" not in record or "ts" not in record:
            raise ValueError(f"flight bundle span {index} is malformed")
    return bundle
