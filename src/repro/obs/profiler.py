"""Per-op autograd profiling for the :mod:`repro.nn` framework.

Follows the sanitizer's *patch-on-enable / restore-on-disable* contract
(:mod:`repro.analysis.sanitizer`): :meth:`OpProfiler.enable` wraps a
curated set of autograd entry points — the :class:`~repro.nn.tensor.Tensor`
arithmetic/activation methods, the :mod:`repro.nn.functional` ops
(``conv2d``, ``linear``, pooling, losses) and ``Tensor.backward`` — with
timing shims, and :meth:`OpProfiler.disable` restores the original
callables.  When the profiler is off the framework runs the unwrapped
code, so the off-state overhead is exactly zero; because the shims only
*time* the original calls (never touching values), a profiled run is
bitwise-identical to an unprofiled one.

Per op the profiler aggregates:

* ``calls`` and **wall time** — both *inclusive* (``total_s``) and
  **self time** (``self_s``, inclusive minus time spent inside other
  profiled ops, tracked by a per-thread call stack), so composite ops
  like ``linear`` (which calls ``__matmul__`` + ``__add__``) do not
  double-count the leaf work;
* approximate **FLOPs** (2·N·C_in·K²·C_out·H_out·W_out for ``conv2d``,
  2·mnk for matmul, ~output-size for elementwise ops; composites count 0
  and let their leaves count);
* approximate **bytes** moved (input + output array sizes).

``hotspots()`` returns the aggregate sorted by self time and
``render_table()`` renders the hot-spot table shown by
``python -m repro profile`` and ``--profile``.

Ordering note: the profiler and the sanitizer may both be enabled, but
they patch overlapping surfaces (``Tensor.backward``) — enable/disable
them strictly LIFO (enable A, enable B, disable B, disable A) so each
restores what it saw.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn import functional as nn_functional
from ..nn.arena import alloc_stats as arena_alloc_stats
from ..nn.tensor import Tensor
from ..utils.tables import format_table

__all__ = [
    "OpStats",
    "OpProfiler",
    "get_profiler",
    "profile_env_enabled",
    "render_arena_table",
]

#: Tensor methods wrapped for timing (looked up on the class at call
#: time, so patching the class intercepts every call site).
_TENSOR_OPS = (
    "__add__",
    "__sub__",
    "__mul__",
    "__truediv__",
    "__neg__",
    "__pow__",
    "__matmul__",
    "__getitem__",
    "exp",
    "log",
    "sqrt",
    "abs",
    "tanh",
    "sigmoid",
    "relu",
    "clip",
    "maximum",
    "minimum",
    "sum",
    "mean",
    "var",
    "max",
    "reshape",
    "transpose",
    "pad2d",
)

#: repro.nn.functional attributes wrapped for timing.  Every importer
#: binds the *module* (``from .. import functional as F``), so patching
#: the module attribute intercepts every call site.
_FUNCTIONAL_OPS = (
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "linear",
    "softplus",
    "layer_norm",
    "channel_layer_norm",
    "softmax",
    "log_softmax",
    "mse_loss",
    "smooth_l1_loss",
    "cross_entropy",
    "entropy_from_logits",
    "dropout",
)

#: Composite ops built from other profiled ops: their FLOPs are counted
#: by the leaves they call, so they report 0 themselves.  The softmax
#: family is *not* listed — those are now fused primitives (one tape node,
#: raw numpy inside), so their work is no longer visible to any leaf op
#: and must be estimated here directly.
_COMPOSITE_OPS = {
    "linear",
    "layer_norm",
    "mse_loss",
    "smooth_l1_loss",
    "cross_entropy",
}


def profile_env_enabled(environ=None) -> bool:
    """True when ``REPRO_PROFILE`` requests profiling (1/true/yes/on)."""
    environ = os.environ if environ is None else environ
    return str(environ.get("REPRO_PROFILE", "")).strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def _nbytes(value: object) -> int:
    if isinstance(value, Tensor):
        return int(value.data.nbytes)
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    return 0


def _estimate_flops(name: str, args: Tuple, out: object) -> int:
    """Order-of-magnitude FLOP count for one op call."""
    if name in _COMPOSITE_OPS:
        return 0
    out_size = out.size if isinstance(out, Tensor) else 0
    if name == "conv2d":
        x, weight = args[0], args[1]
        out_channels, in_channels, kernel, __ = weight.shape
        if isinstance(out, Tensor) and out.ndim == 4:
            batch, __, out_h, out_w = out.shape
            return 2 * batch * out_h * out_w * out_channels * in_channels * kernel * kernel
        return 0
    if name == "__matmul__":
        # args = (self, other); inner dim is self's last axis.
        self_tensor = args[0]
        inner = self_tensor.shape[-1] if self_tensor.ndim else 1
        return 2 * int(out_size) * int(inner)
    if name in ("max_pool2d", "avg_pool2d"):
        kernel = int(args[1])
        return int(out_size) * kernel * kernel
    if name in ("tanh", "sigmoid", "exp", "log", "sqrt", "softplus"):
        return 4 * int(out_size)  # transcendental ~ a few flops each
    if name in ("softmax", "log_softmax"):
        # Fused primitive: shift + exp + sum + normalize per element.
        return 6 * int(out_size)
    if name == "channel_layer_norm":
        # Fused primitive: mean + variance + normalize + affine per element.
        return 10 * int(out_size)
    if name == "entropy_from_logits":
        # Fused primitive over the (pre-reduction) logits.
        logits = args[0]
        return 8 * int(logits.size) if isinstance(logits, Tensor) else 0
    # Elementwise / reduction default: one flop per output element over
    # the larger of input/output.
    in_size = args[0].size if args and isinstance(args[0], Tensor) else 0
    return int(max(out_size, in_size))


@dataclass
class OpStats:
    """Aggregated profile of one op."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    flops: int = 0
    bytes: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "flops": self.flops,
            "bytes": self.bytes,
        }


class _Frame:
    __slots__ = ("name", "child_s")

    def __init__(self, name: str):
        self.name = name
        self.child_s = 0.0


class OpProfiler:
    """Install/remove the per-op timing shims (usable as a context manager)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._stats: Dict[str, OpStats] = {}
        self._local = threading.local()
        self._enabled = False
        self._saved_tensor: Dict[str, Callable] = {}
        self._saved_functional: Dict[str, Callable] = {}
        self._orig_backward: Optional[Callable] = None

    # ------------------------------------------------------------------
    def _frames(self) -> List[_Frame]:
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = []
            self._local.frames = frames
        return frames

    def _record(
        self, name: str, duration: float, self_s: float, flops: int, moved: int
    ) -> None:
        with self._lock:
            stats = self._stats.get(name)
            if stats is None:
                stats = OpStats(name=name)
                self._stats[name] = stats
            stats.calls += 1
            stats.total_s += duration
            stats.self_s += self_s
            stats.flops += flops
            stats.bytes += moved

    def _wrap(self, name: str, orig: Callable) -> Callable:
        profiler = self

        def profiled(*args, **kwargs):
            frames = profiler._frames()
            frame = _Frame(name)
            frames.append(frame)
            start = time.perf_counter()
            try:
                out = orig(*args, **kwargs)
            finally:
                duration = time.perf_counter() - start
                frames.pop()
                if frames:
                    frames[-1].child_s += duration
            moved = _nbytes(out) + sum(_nbytes(arg) for arg in args)
            profiler._record(
                name,
                duration,
                max(duration - frame.child_s, 0.0),
                _estimate_flops(name, args, out),
                moved,
            )
            return out

        profiled.__name__ = getattr(orig, "__name__", name)
        profiled.__qualname__ = getattr(orig, "__qualname__", name)
        profiled.__doc__ = getattr(orig, "__doc__", None)
        return profiled

    # ------------------------------------------------------------------
    # Install / remove
    # ------------------------------------------------------------------
    def enable(self) -> "OpProfiler":
        """Patch the timing shims into Tensor and repro.nn.functional."""
        global _ACTIVE
        if self._enabled:
            return self
        if _ACTIVE is not None:
            raise RuntimeError("another OpProfiler is already enabled")
        for name in _TENSOR_OPS:
            orig = Tensor.__dict__[name]
            self._saved_tensor[name] = orig
            setattr(Tensor, name, self._wrap(name, orig))
        for name in _FUNCTIONAL_OPS:
            orig = getattr(nn_functional, name)
            self._saved_functional[name] = orig
            setattr(nn_functional, name, self._wrap(name, orig))
        self._orig_backward = Tensor.backward
        setattr(Tensor, "backward", self._wrap("backward", self._orig_backward))
        self._enabled = True
        _ACTIVE = self
        return self

    def disable(self) -> "OpProfiler":
        """Restore every original callable."""
        global _ACTIVE
        if not self._enabled:
            return self
        for name, orig in self._saved_tensor.items():
            setattr(Tensor, name, orig)
        for name, orig in self._saved_functional.items():
            setattr(nn_functional, name, orig)
        if self._orig_backward is not None:
            setattr(Tensor, "backward", self._orig_backward)
        self._saved_tensor.clear()
        self._saved_functional.clear()
        self._orig_backward = None
        self._enabled = False
        if _ACTIVE is self:
            _ACTIVE = None
        return self

    @property
    def enabled(self) -> bool:
        return self._enabled

    def __enter__(self) -> "OpProfiler":
        return self.enable()

    def __exit__(self, *exc) -> None:
        self.disable()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def hotspots(self) -> List[OpStats]:
        """Per-op aggregates sorted by self time (hottest first)."""
        with self._lock:
            stats = list(self._stats.values())
        return sorted(stats, key=lambda s: (-s.self_s, -s.total_s, s.name))

    def total_time(self) -> float:
        """Total self time across all ops (≈ time inside the framework)."""
        return sum(s.self_s for s in self.hotspots())

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()

    def render_table(self, limit: int = 15) -> str:
        """The hot-spot table (top ``limit`` ops by self time).

        When execution plans ran in this process (plan replay forces the
        tape while the profiler itself is installed, but the arena
        counters survive from the fast-path portions of the run), the
        per-op allocation table — bytes requested vs. bytes served from
        arena slabs — is appended so the arena hit rate is visible next
        to the op timings.
        """
        hotspots = self.hotspots()
        if not hotspots:
            return "profiler: no ops recorded"
        total_self = self.total_time() or 1.0
        rows = [
            [
                stats.name,
                stats.calls,
                stats.total_s,
                stats.self_s,
                100.0 * stats.self_s / total_self,
                stats.flops / 1e6,
                stats.bytes / 1e6,
            ]
            for stats in hotspots[:limit]
        ]
        table = format_table(
            ["op", "calls", "total s", "self s", "self %", "MFLOP", "MB"],
            rows,
            title=f"autograd hot spots (top {min(limit, len(hotspots))} of {len(hotspots)} ops)",
            precision=4,
        )
        arena_table = render_arena_table(limit=limit)
        if arena_table:
            table = f"{table}\n\n{arena_table}"
        return table

    def summary(self) -> str:
        """One-line CLI summary."""
        hotspots = self.hotspots()
        calls = sum(s.calls for s in hotspots)
        return (
            f"profiler: {calls} op call(s) across {len(hotspots)} op(s), "
            f"{self.total_time():.3f}s self time"
        )


# ----------------------------------------------------------------------
# Module-level singleton helpers
# ----------------------------------------------------------------------
_ACTIVE: Optional[OpProfiler] = None


def get_profiler() -> Optional[OpProfiler]:
    """The currently enabled profiler, if any."""
    return _ACTIVE


def render_arena_table(limit: int = 15) -> str:
    """Per-op plan-replay allocation table (empty string when no data).

    Rows come from :func:`repro.nn.arena.alloc_stats`: for every plan op,
    how many output bytes the replays requested and how many were served
    from preallocated arena slabs (``out=`` writes into stable buffers)
    rather than freshly allocated.  Ordered by bytes requested so the
    allocation-heaviest ops lead.
    """
    stats = arena_alloc_stats()
    if not stats:
        return ""
    ordered = sorted(stats.items(), key=lambda item: (-item[1][0], item[0]))
    rows = [
        [
            op,
            requested / 1e6,
            served / 1e6,
            100.0 * served / requested if requested else 0.0,
        ]
        for op, (requested, served) in ordered[:limit]
    ]
    total_requested = sum(requested for requested, __ in stats.values())
    total_served = sum(served for __, served in stats.values())
    rows.append(
        [
            "TOTAL",
            total_requested / 1e6,
            total_served / 1e6,
            100.0 * total_served / total_requested if total_requested else 0.0,
        ]
    )
    return format_table(
        ["plan op", "MB requested", "MB from arena", "arena %"],
        rows,
        title=(
            f"execution-plan allocations "
            f"(top {min(limit, len(stats))} of {len(stats)} ops)"
        ),
        precision=4,
    )
