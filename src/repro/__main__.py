"""Top-level CLI: train, evaluate, report, lint, trace and profile.

Usage::

    python -m repro train --method cews --scale smoke --episodes 50 \\
        --checkpoint runs/cews.npz --history runs/cews.csv
    python -m repro train --backend socket --listen 0.0.0.0:5555 \\
        --remote-workers 2           # chief for a multi-host fleet
    python -m repro worker --connect chief-host:5555 --token <token> \\
        --index 6                    # serve one employee over TCP
    python -m repro evaluate --method cews --scale smoke \\
        --checkpoint runs/cews.npz --episodes 5
    python -m repro report          # stitch results/*.txt into REPORT.md
    python -m repro lint            # reprolint static-analysis gate
    python -m repro trace summary runs/trace   # aggregate a JSONL trace
    python -m repro profile --episodes 2       # per-op autograd hot spots

Observability toggles:

* ``--sanitize`` (or ``REPRO_SANITIZE=1``) runs training/evaluation under
  the runtime autograd sanitizer (NaN/dtype checks at every op boundary);
* ``--trace-dir DIR`` (or ``REPRO_TRACE=1`` with optional
  ``REPRO_TRACE_DIR``) records structured spans/events to
  ``DIR/trace.jsonl``;
* ``--profile`` wraps the run in the per-op autograd profiler and prints
  the hot-spot table at the end (also ``REPRO_PROFILE=1``);
* ``--dashboard N`` renders the ASCII live dashboard every N episodes;
* ``--obs-port N`` (or ``REPRO_OBS_PORT``) serves ``/metrics``,
  ``/metrics.json``, ``/trace/summary`` and ``/healthz`` over HTTP for
  the duration of the run (``python -m repro obs serve`` for ad hoc use);
* ``--flight-dir DIR`` (or ``REPRO_FLIGHT_DIR``) arms the crash flight
  recorder: recent spans + metric snapshots are dumped as a post-mortem
  bundle on worker death/quarantine (``python -m repro obs dump`` /
  ``obs validate`` to trigger/check one by hand);
* ``--no-federate`` turns off worker->chief metrics federation (metric
  deltas piggy-backed on replies, folded under worker/host labels).

All of these only *read* clocks and values, so toggling them never
changes training results.  Figure/table regeneration lives under
``python -m repro.experiments``.

The subcommand registry below is the single source of truth for
``python -m repro --help``: every subcommand appears there with a
one-line description, and unknown subcommands exit with status 2.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--method", choices=("cews", "dppo", "edics"), default="cews"
    )
    parser.add_argument("--scale", choices=("smoke", "short", "paper"), default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the runtime autograd sanitizer (NaN/dtype checks at "
        "every op boundary; also enabled by REPRO_SANITIZE=1)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="record structured spans/events to <dir>/trace.jsonl "
        "(also enabled by REPRO_TRACE=1, directory from REPRO_TRACE_DIR)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile per-op autograd wall time/FLOPs and print the "
        "hot-spot table at the end (also enabled by REPRO_PROFILE=1)",
    )
    parser.add_argument(
        "--lockwatch",
        action="store_true",
        help="run under the lock-order sanitizer (SAN004 order-inversion / "
        "SAN005 long-hold findings; also enabled by REPRO_LOCKWATCH=1)",
    )
    parser.add_argument(
        "--obs-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /metrics.json, /trace/summary and /healthz "
        "on 127.0.0.1:PORT for the duration of the run (0 = OS-assigned; "
        "also enabled by REPRO_OBS_PORT)",
    )
    parser.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="arm the crash flight recorder: dump recent spans + metric "
        "snapshots to DIR as a post-mortem bundle on crash/quarantine "
        "(also enabled by REPRO_FLIGHT_DIR)",
    )
    parser.add_argument(
        "--no-federate",
        action="store_true",
        help="disable worker->chief metrics federation (per-worker metric "
        "deltas folded into the chief registry under worker/host labels)",
    )


def _maybe_sanitizer(args):
    """An enabled Sanitizer when requested by flag or env var, else None."""
    from .analysis import sanitizer as sanitizer_mod

    if getattr(args, "sanitize", False) or sanitizer_mod.env_enabled():
        return sanitizer_mod.Sanitizer().enable()
    return None


def _maybe_lockwatch(args):
    """An enabled LockWatch when requested by flag or env var, else None.

    Enabled *before* the trainer is constructed so every lock the run
    allocates goes through the patched factories.
    """
    from .analysis import lockwatch as lockwatch_mod

    if getattr(args, "lockwatch", False) or lockwatch_mod.env_enabled():
        return lockwatch_mod.LockWatch(mode="record").enable()
    return None


def _maybe_tracer(args):
    """An installed Tracer when requested by flag or env var, else None."""
    from .obs import trace as trace_mod

    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir is None and trace_mod.trace_env_enabled():
        trace_dir = os.environ.get("REPRO_TRACE_DIR", "runs/trace")
    if trace_dir is None:
        return None
    return trace_mod.Tracer(trace_mod.trace_path_for(trace_dir)).install()


def _maybe_profiler(args):
    """An enabled OpProfiler when requested by flag or env var, else None."""
    from .obs import profiler as profiler_mod

    if getattr(args, "profile", False) or profiler_mod.profile_env_enabled():
        return profiler_mod.OpProfiler().enable()
    return None


def _maybe_flight(args):
    """An installed FlightRecorder when requested by flag or env, else None."""
    from .obs import flight as flight_mod

    flight_dir = getattr(args, "flight_dir", None)
    if flight_dir is None:
        flight_dir = os.environ.get("REPRO_FLIGHT_DIR") or None
    if flight_dir is None:
        return None
    return flight_mod.FlightRecorder(directory=flight_dir).install()


def _maybe_server(args):
    """A started ObsServer when requested by flag or env var, else None."""
    from .obs import server as server_mod

    port = getattr(args, "obs_port", None)
    if port is None:
        raw = os.environ.get("REPRO_OBS_PORT")
        if raw:
            try:
                port = int(raw)
            except ValueError:
                raise SystemExit(f"REPRO_OBS_PORT must be an integer, got {raw!r}")
    if port is None:
        return None
    server = server_mod.ObsServer(port=port).start()
    print(server.summary())
    return server


class _Observability:
    """Enable/disable the requested observability layers around a command.

    The sanitizer and the profiler both patch ``Tensor.backward``, so
    they are enabled sanitizer-first and disabled strictly LIFO —
    each restores exactly the callable it saw.
    """

    def __init__(self, args):
        self._args = args
        self.lockwatch = None
        self.sanitizer = None
        self.tracer = None
        self.profiler = None
        self.flight = None
        self.server = None

    def __enter__(self) -> "_Observability":
        # Lockwatch first: the trainer's locks are allocated when the
        # command body constructs it, and only factories patched before
        # that point produce watched locks.  The flight recorder taps the
        # tracer's sink chain, so it installs after the tracer; the HTTP
        # server goes last so every layer it reports on is already live.
        self.lockwatch = _maybe_lockwatch(self._args)
        self.sanitizer = _maybe_sanitizer(self._args)
        self.tracer = _maybe_tracer(self._args)
        self.profiler = _maybe_profiler(self._args)
        self.flight = _maybe_flight(self._args)
        self.server = _maybe_server(self._args)
        return self

    def __exit__(self, *exc) -> None:
        if self.server is not None:
            print(self.server.summary())
            self.server.stop()
        if self.flight is not None:
            self.flight.uninstall()
            print(self.flight.summary())
        if self.profiler is not None:
            self.profiler.disable()
            print(self.profiler.render_table())
            print(self.profiler.summary())
        if self.tracer is not None:
            self.tracer.uninstall()
            print(self.tracer.summary())
        if self.sanitizer is not None:
            self.sanitizer.disable()
            print(self.sanitizer.summary())
        if self.lockwatch is not None:
            self.lockwatch.disable()
            print(self.lockwatch.summary())
            for finding in self.lockwatch.findings:
                print(finding.render())


def _parse_hostport(value: str):
    """``host:port`` -> ``(host, port)`` (bare ``:port`` binds all interfaces)."""
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {value!r}")
    return (host or "0.0.0.0", int(port))


def _build_trainer(args, episodes=None):
    import dataclasses

    from .distributed import build_trainer
    from .experiments.scales import get_scale
    from .experiments.training import make_ppo_config, make_train_config

    scale = get_scale(args.scale)
    config = scale.scenario()
    train = make_train_config(
        scale,
        episodes=episodes,
        seed=args.seed,
        mode=getattr(args, "mode", "sequential"),
        backend=getattr(args, "backend", None),
    )
    overrides = {
        name: getattr(args, name)
        for name in (
            "quorum_fraction",
            "employee_timeout",
            "max_retries",
            "quarantine_max_norm",
            "wire_dtype",
            "remote_workers",
        )
        if getattr(args, name, None) is not None
    }
    if getattr(args, "listen", None) is not None:
        overrides["listen"] = _parse_hostport(args.listen)
    if getattr(args, "no_federate", False):
        overrides["federate"] = False
    if overrides:
        train = dataclasses.replace(train, **overrides)
    trainer = build_trainer(
        args.method,
        config,
        train=train,
        ppo=make_ppo_config(scale),
        seed=args.seed,
    )
    return trainer, scale, config


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_train(args) -> int:
    from .analysis import SanitizerError
    from .distributed import save_checkpoint
    from .experiments.training import resume_or_start

    with _Observability(args):
        try:
            return _run_train(args, save_checkpoint, resume_or_start)
        except SanitizerError as error:
            print(f"sanitizer caught: {error}")
            return 1


def _run_train(args, save_checkpoint, resume_or_start) -> int:
    trainer, scale, config = _build_trainer(args, episodes=args.episodes)
    episodes = args.episodes if args.episodes is not None else scale.episodes
    print(
        f"training {args.method} on {config.grid}x{config.grid} "
        f"(P={config.num_pois}, W={config.num_workers}) for {episodes} episodes"
    )
    if trainer.config.backend == "socket":
        transport = trainer._proc_pool.transport
        host, port = transport.address
        print(f"transport: listening on {host}:{port} (token {transport.token})")
        if trainer.config.remote_workers:
            first = trainer.config.num_employees - trainer.config.remote_workers
            for index in range(first, trainer.config.num_employees):
                print(
                    f"  start employee {index} with: python -m repro worker "
                    f"--connect {host}:{port} --token {transport.token} "
                    f"--index {index} --method {args.method} "
                    f"--scale {args.scale} --seed {args.seed}"
                )
    on_end = None
    if getattr(args, "dashboard", None):
        from .obs import Dashboard

        dashboard = Dashboard(every=args.dashboard)

        def on_end(t, episode: int) -> None:
            if t.last_episode_log is not None:
                dashboard.on_episode_end(t.last_episode_log)

    try:
        if args.checkpoint_dir:
            # Crash-safe mode: auto-resume from the newest valid rolling
            # checkpoint and keep checkpointing as we go.
            history = resume_or_start(
                trainer,
                args.checkpoint_dir,
                episodes,
                save_every=args.save_every,
                keep_last=args.keep_last,
                on_episode_end=on_end,
            )
            if not history.logs:
                print(
                    f"checkpoints in {args.checkpoint_dir} already cover "
                    f"{episodes} episodes; nothing to do"
                )
            elif history.logs[0].episode > 0:
                print(f"resumed from episode {history.logs[0].episode}")
        else:
            history = trainer.train(on_episode_end=on_end)
    finally:
        trainer.close()
    if history.logs:
        tail = max(len(history.logs) // 4, 1)
        kappa = float(np.mean(history.curve("kappa")[-tail:]))
        rho = float(np.mean(history.curve("rho")[-tail:]))
        print(
            f"done in {history.total_wall_time:.1f}s; "
            f"tail kappa={kappa:.3f} rho={rho:.3f}"
        )
    if not trainer.health.healthy:
        print(f"health: {trainer.health.summary()}")
    if args.history:
        history.save_csv(args.history)
        print(f"history -> {args.history}")
    if args.checkpoint:
        save_checkpoint(trainer, args.checkpoint)
        print(f"checkpoint -> {args.checkpoint}")
    return 0


def cmd_evaluate(args) -> int:
    from .analysis import SanitizerError
    from .distributed import load_checkpoint
    from .experiments.scales import get_scale
    from .experiments.training import evaluate_agent

    with _Observability(args):
        try:
            return _run_evaluate(args, load_checkpoint, evaluate_agent, get_scale)
        except SanitizerError as error:
            print(f"sanitizer caught: {error}")
            return 1


def _run_evaluate(args, load_checkpoint, evaluate_agent, get_scale) -> int:
    trainer, scale, config = _build_trainer(args)
    if args.checkpoint:
        load_checkpoint(trainer, args.checkpoint)
        print(f"loaded {args.checkpoint}")
    agent = trainer.global_agent
    scale = get_scale(args.scale).with_overrides(eval_episodes=args.episodes)
    metrics = evaluate_agent(
        agent,
        config,
        scale,
        seed=args.seed,
        reward_mode=getattr(agent, "reward_mode", "dense"),
    )
    trainer.close()
    print(
        f"kappa={metrics['kappa']:.3f} xi={metrics['xi']:.3f} "
        f"rho={metrics['rho']:.3f} (mean of {args.episodes} episodes)"
    )
    return 0


def cmd_worker(args) -> int:
    from .distributed.factories import build_worker_factories
    from .distributed.remote import run_remote_worker
    from .distributed.transport import ChannelClosed
    from .experiments.scales import get_scale
    from .experiments.training import make_ppo_config

    scale = get_scale(args.scale)
    config = scale.scenario()
    agent_factory, env_factory = build_worker_factories(
        args.method, config, ppo=make_ppo_config(scale), seed=args.seed
    )
    host, port = _parse_hostport(args.connect)
    print(f"employee {args.index}: dialing chief at {host}:{port}")
    try:
        run_remote_worker(
            index=args.index,
            address=(host, port),
            token=args.token,
            agent_factory=agent_factory,
            env_factory=env_factory,
            connect_timeout=args.connect_timeout,
        )
    except ChannelClosed as error:
        print(f"employee {args.index}: {error}")
        return 1
    print(f"employee {args.index}: session over; exiting")
    return 0


def cmd_report(args) -> int:
    from .experiments.export import write_report

    print(f"wrote {write_report()}")
    return 0


def cmd_lint(args) -> int:
    from .analysis import cli as lint_cli

    return lint_cli.run(args)


def cmd_trace(args) -> int:
    import json

    from .obs import trace as trace_mod

    try:
        records = trace_mod.read_trace(args.path)
    except FileNotFoundError:
        print(f"no trace file at {args.path!r}")
        return 1
    except trace_mod.TraceError as error:
        print(f"invalid trace: {error}")
        return 1
    if args.action == "cat":
        for record in records:
            print(json.dumps(record, sort_keys=True))
        return 0
    # Chief-side synthetic employee.* spans are placeholders for workers
    # whose real spans arrived by a later reply; drop the shadowed ones so
    # the summary never double-counts a phase.
    summary = trace_mod.summarize_trace(trace_mod.dedupe_synthetic(records))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(trace_mod.render_trace_summary(summary))
    return 0


def cmd_obs(args) -> int:
    import json
    import threading

    from .obs import flight as flight_mod
    from .obs import server as server_mod

    if args.obs_action == "serve":
        with server_mod.ObsServer(port=args.port, host=args.host) as server:
            print(server.summary())
            print("serving until Ctrl-C ...")
            try:
                threading.Event().wait()
            except KeyboardInterrupt:
                print("stopping")
        return 0
    if args.obs_action == "dump":
        recorder = flight_mod.get_flight_recorder()
        if recorder is None:
            # No recorder armed in this process: build a detached one so
            # the dump still captures the current metric snapshot.
            recorder = flight_mod.FlightRecorder(directory=args.flight_dir)
        path = recorder.dump(args.reason)
        print(f"flight bundle -> {path}")
        return 0
    # validate
    status = 0
    for path in args.paths:
        try:
            bundle = flight_mod.validate_bundle(path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"{path}: INVALID ({error})")
            status = 1
        else:
            print(
                f"{path}: ok (reason={bundle['reason']!r}, "
                f"{len(bundle['spans'])} spans, "
                f"{len(bundle['metrics'])} metric snapshots)"
            )
    return status


def cmd_serve(args) -> int:
    import asyncio
    import os

    from .serve import InferenceServer, InlinePool, ServeWorkerPool
    from .serve.engine import load_network_state

    path = args.checkpoint
    if os.path.isdir(path):
        from .distributed.checkpoint import CheckpointManager

        resolved = CheckpointManager(path).latest()
        if resolved is None:
            print(f"no checkpoint found under {path}")
            return 1
        path = resolved
    state = load_network_state(path)
    use_plans = not args.no_plan
    if args.workers > 0:
        pool = ServeWorkerPool(
            state, num_workers=args.workers, generation=1, use_plans=use_plans
        )
    else:
        pool = InlinePool(state, generation=1, use_plans=use_plans)
    server = InferenceServer(
        pool,
        host=args.host,
        port=args.port,
        http_port=None if args.no_http else args.http_port,
        http_host=args.host,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
    )

    async def run() -> None:
        await server.start()
        print(f"serving {path} (generation {server.generation})")
        print(f"  tcp://{args.host}:{server.port}")
        if server.http_address:
            print(f"  http://{server.http_address}  (/infer /metrics /-/reload)")
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("stopping")
    return 0


def cmd_profile(args) -> int:
    from .obs import OpProfiler

    profiler = OpProfiler().enable()
    try:
        trainer, scale, config = _build_trainer(args, episodes=args.episodes)
        print(
            f"profiling {args.method} on {config.grid}x{config.grid} "
            f"for {args.episodes} episode(s)"
        )
        try:
            trainer.train()
        finally:
            trainer.close()
    finally:
        profiler.disable()
    print(profiler.render_table(limit=args.limit))
    print(profiler.summary())
    return 0


# ----------------------------------------------------------------------
# Subcommand registry — single source of truth for `--help`
# ----------------------------------------------------------------------
def _configure_train(parser: argparse.ArgumentParser) -> None:
    _add_common(parser)
    parser.add_argument("--episodes", type=int, default=None)
    parser.add_argument("--checkpoint", default=None, help="save .npz here")
    parser.add_argument("--history", default=None, help="save CSV logs here")
    parser.add_argument(
        "--mode",
        choices=("sequential", "thread", "process", "socket"),
        default="sequential",
        help="legacy spelling of --backend (kept for compatibility)",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process", "socket"),
        default=None,
        help=(
            "employee execution backend: serial (one thread, default), "
            "thread (thread pool; GIL-bound), process (one worker process "
            "per employee with shared-memory tensor transport), socket "
            "(worker processes over framed TCP with heartbeats/reconnect; "
            "workers may also dial in from other hosts, see the `worker` "
            "subcommand). Overrides --mode; results are bitwise-identical "
            "across all backends for a given seed (float64 wire encoding)."
        ),
    )
    parser.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="socket backend: chief listen address (default 127.0.0.1:0 = "
        "loopback, OS-assigned port; the chosen port is logged)",
    )
    parser.add_argument(
        "--wire-dtype",
        choices=("float64", "float32"),
        default=None,
        help="socket backend: tensor wire encoding. float64 (default) "
        "round-trips exact bytes and keeps the cross-backend bitwise "
        "guarantee; float32 halves wire bytes at ~2^-24 relative error",
    )
    parser.add_argument(
        "--remote-workers",
        type=int,
        default=None,
        metavar="N",
        help="socket backend: the N highest employee indices are external "
        "workers started via `python -m repro worker` instead of forked",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="rolling crash-safe checkpoints here; auto-resumes if present",
    )
    parser.add_argument(
        "--save-every",
        type=int,
        default=1,
        help="episodes between rolling checkpoints (with --checkpoint-dir)",
    )
    parser.add_argument(
        "--keep-last",
        type=int,
        default=3,
        help="rolling checkpoints retained (with --checkpoint-dir)",
    )
    parser.add_argument(
        "--quorum-fraction",
        type=float,
        default=None,
        help="fraction of employees whose gradients suffice per round "
        "(default 1.0 = strict barrier)",
    )
    parser.add_argument(
        "--employee-timeout",
        type=float,
        default=None,
        help="per-task straggler timeout in seconds (0 disables)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retries per crashed/timed-out employee task",
    )
    parser.add_argument(
        "--quarantine-max-norm",
        type=float,
        default=None,
        help="quarantine gradient contributions above this L2 norm (0 disables)",
    )
    parser.add_argument(
        "--dashboard",
        type=int,
        nargs="?",
        const=1,
        default=None,
        metavar="N",
        help="render the ASCII live dashboard every N episodes (default 1)",
    )
    parser.set_defaults(func=cmd_train)


def _configure_worker(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--method", choices=("cews", "dppo", "edics"), default="cews"
    )
    parser.add_argument("--scale", choices=("smoke", "short", "paper"), default="smoke")
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="must match the chief's --seed (scenario + agent derivation)",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the chief's socket-transport listen address",
    )
    parser.add_argument(
        "--token",
        required=True,
        help="the pool token printed by the chief at startup",
    )
    parser.add_argument(
        "--index",
        type=int,
        required=True,
        help="employee index to serve (one of the chief's --remote-workers slots)",
    )
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to keep redialing an unreachable chief",
    )
    parser.set_defaults(func=cmd_worker)


def _configure_evaluate(parser: argparse.ArgumentParser) -> None:
    _add_common(parser)
    parser.add_argument("--checkpoint", default=None, help="load .npz from here")
    parser.add_argument("--episodes", type=int, default=5)
    parser.set_defaults(func=cmd_evaluate)


def _configure_report(parser: argparse.ArgumentParser) -> None:
    parser.set_defaults(func=cmd_report)


def _configure_lint(parser: argparse.ArgumentParser) -> None:
    from .analysis.cli import build_parser as build_lint_parser

    build_lint_parser(parser)
    parser.set_defaults(func=cmd_lint)


def _configure_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "action",
        choices=("summary", "cat"),
        help="'summary' aggregates per-span/per-employee timings; "
        "'cat' prints the validated records one JSON object per line",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default="runs/trace",
        help="trace file or --trace-dir directory (default: runs/trace)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    parser.set_defaults(func=cmd_trace)


def _configure_obs(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="obs_action", required=True)
    serve = sub.add_parser(
        "serve",
        help="serve /metrics, /metrics.json, /trace/summary and /healthz "
        "until Ctrl-C",
    )
    serve.add_argument(
        "--port", type=int, default=0, help="listen port (default 0 = OS-assigned)"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    dump = sub.add_parser(
        "dump", help="write a flight-recorder bundle for this process now"
    )
    dump.add_argument(
        "--flight-dir",
        default="runs/flight",
        help="bundle directory when no recorder is armed (default runs/flight)",
    )
    dump.add_argument(
        "--reason", default="manual", help="reason recorded in the bundle"
    )
    validate = sub.add_parser(
        "validate", help="validate flight-recorder bundle files"
    )
    validate.add_argument("paths", nargs="+", help="bundle JSON files to check")
    parser.set_defaults(func=cmd_obs)


def _configure_serve(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint",
        required=True,
        help="checkpoint .npz, or a CheckpointManager directory (serves latest)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7355, help="framed-TCP port (0 = auto)")
    parser.add_argument("--http-port", type=int, default=7356, help="JSON/HTTP port (0 = auto)")
    parser.add_argument("--no-http", action="store_true", help="disable the HTTP front door")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="inference worker processes (0 = inline, no forks)",
    )
    parser.add_argument("--max-batch", type=int, default=8, help="micro-batch row bound")
    parser.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="longest a request waits to be coalesced",
    )
    parser.add_argument("--cache-size", type=int, default=1024, help="action-cache entries (0 disables)")
    parser.add_argument("--max-pending", type=int, default=64, help="admission bound before 503 load-shed")
    parser.add_argument("--no-plan", action="store_true", help="serve from the tape (no forward plans)")
    parser.set_defaults(func=cmd_serve)


def _configure_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--method", choices=("cews", "dppo", "edics"), default="cews"
    )
    parser.add_argument("--scale", choices=("smoke", "short", "paper"), default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--episodes", type=int, default=1, help="episodes to run under the profiler"
    )
    parser.add_argument(
        "--limit", type=int, default=15, help="rows in the hot-spot table"
    )
    parser.set_defaults(func=cmd_profile)


#: (name, one-line description, configure) — every subcommand registers
#: here so ``--help`` enumerates them all consistently.
COMMANDS = (
    ("train", "train one method with the chief-employee loop", _configure_train),
    ("worker", "serve one employee over TCP for a socket-backend chief", _configure_worker),
    ("evaluate", "evaluate a trained checkpoint (mean kappa/xi/rho)", _configure_evaluate),
    ("report", "stitch results/*.txt into results/REPORT.md", _configure_report),
    ("lint", "run the reprolint static-analysis gate", _configure_lint),
    ("trace", "summarize or dump a JSONL trace file", _configure_trace),
    ("obs", "serve the fleet HTTP endpoint / manage flight bundles", _configure_obs),
    ("serve", "serve a trained checkpoint as a batched inference service", _configure_serve),
    ("profile", "run a short training under the per-op autograd profiler", _configure_profile),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description="DRL-CEWS reproduction CLI"
    )
    subparsers = parser.add_subparsers(
        dest="command",
        required=True,
        metavar="{" + ",".join(name for name, __, __ in COMMANDS) + "}",
    )
    for name, description, configure in COMMANDS:
        configure(subparsers.add_parser(name, help=description, description=description))

    # argparse raises SystemExit(2) for unknown subcommands; `parse_args`
    # keeps that contract (usage + exit 2, never a traceback).
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
