"""Top-level CLI: train, evaluate and report without writing code.

Usage::

    python -m repro train --method cews --scale smoke --episodes 50 \\
        --checkpoint runs/cews.npz --history runs/cews.csv
    python -m repro evaluate --method cews --scale smoke \\
        --checkpoint runs/cews.npz --episodes 5
    python -m repro report          # stitch results/*.txt into REPORT.md
    python -m repro lint            # reprolint static-analysis gate

``--sanitize`` (or ``REPRO_SANITIZE=1``) runs training/evaluation under
the runtime autograd sanitizer (NaN/dtype checks at every op boundary).
Figure/table regeneration lives under ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--method", choices=("cews", "dppo", "edics"), default="cews"
    )
    parser.add_argument("--scale", choices=("smoke", "short", "paper"), default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the runtime autograd sanitizer (NaN/dtype checks at "
        "every op boundary; also enabled by REPRO_SANITIZE=1)",
    )


def _maybe_sanitizer(args):
    """An enabled Sanitizer when requested by flag or env var, else None."""
    from .analysis import sanitizer as sanitizer_mod

    if getattr(args, "sanitize", False) or sanitizer_mod.env_enabled():
        return sanitizer_mod.Sanitizer().enable()
    return None


def _build_trainer(args, episodes=None):
    import dataclasses

    from .distributed import build_trainer
    from .experiments.scales import get_scale
    from .experiments.training import make_ppo_config, make_train_config

    scale = get_scale(args.scale)
    config = scale.scenario()
    train = make_train_config(
        scale, episodes=episodes, seed=args.seed, mode=getattr(args, "mode", "sequential")
    )
    overrides = {
        name: getattr(args, name)
        for name in (
            "quorum_fraction",
            "employee_timeout",
            "max_retries",
            "quarantine_max_norm",
        )
        if getattr(args, name, None) is not None
    }
    if overrides:
        train = dataclasses.replace(train, **overrides)
    trainer = build_trainer(
        args.method,
        config,
        train=train,
        ppo=make_ppo_config(scale),
        seed=args.seed,
    )
    return trainer, scale, config


def cmd_train(args) -> int:
    from .analysis import SanitizerError
    from .distributed import save_checkpoint
    from .experiments.training import resume_or_start

    sanitizer = _maybe_sanitizer(args)
    try:
        return _run_train(args, save_checkpoint, resume_or_start)
    except SanitizerError as error:
        print(f"sanitizer caught: {error}")
        return 1
    finally:
        if sanitizer is not None:
            sanitizer.disable()
            print(sanitizer.summary())


def _run_train(args, save_checkpoint, resume_or_start) -> int:
    trainer, scale, config = _build_trainer(args, episodes=args.episodes)
    episodes = args.episodes if args.episodes is not None else scale.episodes
    print(
        f"training {args.method} on {config.grid}x{config.grid} "
        f"(P={config.num_pois}, W={config.num_workers}) for {episodes} episodes"
    )
    try:
        if args.checkpoint_dir:
            # Crash-safe mode: auto-resume from the newest valid rolling
            # checkpoint and keep checkpointing as we go.
            history = resume_or_start(
                trainer,
                args.checkpoint_dir,
                episodes,
                save_every=args.save_every,
                keep_last=args.keep_last,
            )
            if not history.logs:
                print(
                    f"checkpoints in {args.checkpoint_dir} already cover "
                    f"{episodes} episodes; nothing to do"
                )
            elif history.logs[0].episode > 0:
                print(f"resumed from episode {history.logs[0].episode}")
        else:
            history = trainer.train()
    finally:
        trainer.close()
    if history.logs:
        tail = max(len(history.logs) // 4, 1)
        kappa = float(np.mean(history.curve("kappa")[-tail:]))
        rho = float(np.mean(history.curve("rho")[-tail:]))
        print(
            f"done in {history.total_wall_time:.1f}s; "
            f"tail kappa={kappa:.3f} rho={rho:.3f}"
        )
    if not trainer.health.healthy:
        print(f"health: {trainer.health.summary()}")
    if args.history:
        history.save_csv(args.history)
        print(f"history -> {args.history}")
    if args.checkpoint:
        save_checkpoint(trainer, args.checkpoint)
        print(f"checkpoint -> {args.checkpoint}")
    return 0


def cmd_evaluate(args) -> int:
    from .analysis import SanitizerError
    from .distributed import load_checkpoint
    from .experiments.training import evaluate_agent
    from .experiments.scales import get_scale

    sanitizer = _maybe_sanitizer(args)
    try:
        return _run_evaluate(args, load_checkpoint, evaluate_agent, get_scale)
    except SanitizerError as error:
        print(f"sanitizer caught: {error}")
        return 1
    finally:
        if sanitizer is not None:
            sanitizer.disable()
            print(sanitizer.summary())


def _run_evaluate(args, load_checkpoint, evaluate_agent, get_scale) -> int:
    trainer, scale, config = _build_trainer(args)
    if args.checkpoint:
        load_checkpoint(trainer, args.checkpoint)
        print(f"loaded {args.checkpoint}")
    agent = trainer.global_agent
    scale = get_scale(args.scale).with_overrides(eval_episodes=args.episodes)
    metrics = evaluate_agent(
        agent,
        config,
        scale,
        seed=args.seed,
        reward_mode=getattr(agent, "reward_mode", "dense"),
    )
    trainer.close()
    print(
        f"kappa={metrics['kappa']:.3f} xi={metrics['xi']:.3f} "
        f"rho={metrics['rho']:.3f} (mean of {args.episodes} episodes)"
    )
    return 0


def cmd_report(args) -> int:
    from .experiments.export import write_report

    print(f"wrote {write_report()}")
    return 0


def cmd_lint(args) -> int:
    from .analysis import cli as lint_cli

    return lint_cli.run(args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description="DRL-CEWS reproduction CLI"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    train_parser = subparsers.add_parser("train", help="train one method")
    _add_common(train_parser)
    train_parser.add_argument("--episodes", type=int, default=None)
    train_parser.add_argument("--checkpoint", default=None, help="save .npz here")
    train_parser.add_argument("--history", default=None, help="save CSV logs here")
    train_parser.add_argument(
        "--mode",
        choices=("sequential", "thread"),
        default="sequential",
        help="employee driver (thread overlaps exploration and gradients)",
    )
    train_parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="rolling crash-safe checkpoints here; auto-resumes if present",
    )
    train_parser.add_argument(
        "--save-every",
        type=int,
        default=1,
        help="episodes between rolling checkpoints (with --checkpoint-dir)",
    )
    train_parser.add_argument(
        "--keep-last",
        type=int,
        default=3,
        help="rolling checkpoints retained (with --checkpoint-dir)",
    )
    train_parser.add_argument(
        "--quorum-fraction",
        type=float,
        default=None,
        help="fraction of employees whose gradients suffice per round "
        "(default 1.0 = strict barrier)",
    )
    train_parser.add_argument(
        "--employee-timeout",
        type=float,
        default=None,
        help="per-task straggler timeout in seconds (0 disables)",
    )
    train_parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retries per crashed/timed-out employee task",
    )
    train_parser.add_argument(
        "--quarantine-max-norm",
        type=float,
        default=None,
        help="quarantine gradient contributions above this L2 norm (0 disables)",
    )
    train_parser.set_defaults(func=cmd_train)

    eval_parser = subparsers.add_parser("evaluate", help="evaluate a checkpoint")
    _add_common(eval_parser)
    eval_parser.add_argument("--checkpoint", default=None, help="load .npz from here")
    eval_parser.add_argument("--episodes", type=int, default=5)
    eval_parser.set_defaults(func=cmd_evaluate)

    report_parser = subparsers.add_parser(
        "report", help="stitch results/*.txt into results/REPORT.md"
    )
    report_parser.set_defaults(func=cmd_report)

    lint_parser = subparsers.add_parser(
        "lint", help="run the reprolint static-analysis gate"
    )
    from .analysis.cli import build_parser as build_lint_parser

    build_lint_parser(lint_parser)
    lint_parser.set_defaults(func=cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
