"""State-matrix encoding (Section V, "State").

The observation is a 3-channel ``grid x grid`` matrix:

* **channel 0** — worker energy: each worker's normalized budget
  ``b_t^w / b0`` written at its current cell (summed if two workers share
  a cell);
* **channel 1** — environment map: remaining PoI data ``δ_t^p`` summed per
  cell, charging stations marked with ``STATION_CODE`` and obstacles with
  ``OBSTACLE_CODE`` (negative codes so they cannot be confused with data);
* **channel 2** — PoI access time ``h_t(p)`` (number of slots the PoI has
  been sensed), normalized by the horizon, so the server "is aware of the
  coverage fairness among all PoIs".
"""

from __future__ import annotations

import numpy as np

from .entities import ChargingStations, PoiField, WorkerFleet
from .space import CrowdsensingSpace

__all__ = [
    "OBSTACLE_CODE",
    "STATION_CODE",
    "encode_state",
    "StateEncoder",
    "STATE_CHANNELS",
]

#: Channel-1 code marking an obstacle cell.
OBSTACLE_CODE = -1.0
#: Channel-1 code marking a charging-station cell.
STATION_CODE = -0.5
#: Number of channels in the state matrix.
STATE_CHANNELS = 3


def encode_state(
    space: CrowdsensingSpace,
    workers: WorkerFleet,
    pois: PoiField,
    stations: ChargingStations,
    horizon: int,
) -> np.ndarray:
    """Build the (3, grid, grid) state matrix ``s_t``."""
    grid = space.grid
    state = np.zeros((STATE_CHANNELS, grid, grid))

    # Channel 0: worker energy at worker cells.
    rows, cols = space.cell_of(workers.positions)
    np.add.at(state[0], (rows, cols), workers.energy / workers.capacity)

    # Channel 1: PoI remaining values, then stations, then obstacles.  The
    # markers are written after the data so a (rare) station or obstacle
    # cell that also holds PoIs reads as the marker — the structural
    # element dominates.
    poi_rows, poi_cols = space.cell_of(pois.positions)
    np.add.at(state[1], (poi_rows, poi_cols), pois.values)
    if len(stations):
        station_rows, station_cols = space.cell_of(stations.positions)
        state[1][station_rows, station_cols] = STATION_CODE
    state[1][space.obstacles] = OBSTACLE_CODE

    # Channel 2: normalized access time, max-pooled per cell.
    normalized_access = pois.access_time / max(horizon, 1)
    np.maximum.at(state[2], (poi_rows, poi_cols), normalized_access)

    return state


class StateEncoder:
    """Amortized :func:`encode_state` for one scenario.

    PoI and station positions never move within a scenario, so their cell
    indices — recomputed by :func:`encode_state` on every call, three
    coordinate conversions per env step — are resolved once here and
    reused.  Only the worker cells (positions change every slot) are
    recomputed per call.  The per-cell accumulation runs the exact ufunc
    sequence of :func:`encode_state` (``add.at`` in the same index order,
    then marker overwrites, then ``maximum.at``), so the emitted state is
    bit-for-bit identical; a parity test asserts this.

    The returned matrix is always freshly allocated: states escape into
    rollout buffers (PPO trains on them after the episode ends), so an
    encoder-owned reusable output buffer would alias every stored
    transition.  What *is* reused is everything static about the scenario:
    the index arrays and the obstacle mask.
    """

    def __init__(
        self,
        space: CrowdsensingSpace,
        pois: PoiField,
        stations: ChargingStations,
        horizon: int,
    ):
        self.space = space
        self.grid = space.grid
        self.horizon_norm = max(horizon, 1)
        self.poi_cells = space.cell_of(pois.positions)
        self.station_cells = (
            space.cell_of(stations.positions) if len(stations) else None
        )
        self.obstacles = space.obstacles

    def encode(self, workers: WorkerFleet, pois: PoiField) -> np.ndarray:
        """Build the (3, grid, grid) state matrix ``s_t``."""
        grid = self.grid
        state = np.zeros((STATE_CHANNELS, grid, grid))

        rows, cols = self.space.cell_of(workers.positions)
        np.add.at(state[0], (rows, cols), workers.energy / workers.capacity)

        poi_rows, poi_cols = self.poi_cells
        np.add.at(state[1], (poi_rows, poi_cols), pois.values)
        if self.station_cells is not None:
            station_rows, station_cols = self.station_cells
            state[1][station_rows, station_cols] = STATION_CODE
        state[1][self.obstacles] = OBSTACLE_CODE

        normalized_access = pois.access_time / self.horizon_norm
        np.maximum.at(state[2], (poi_rows, poi_cols), normalized_access)

        return state
